//! The distance-aware model (Lu, Cao & Jensen, ICDE 2012) — the paper's
//! state-of-the-art indoor competitor `DistAw`, plus `DistAw++` which
//! accelerates object queries with the distance matrix.
//!
//! Every query is answered by Dijkstra-like expansion over the indoor
//! graph from the query point (seeded through the doors of its
//! partition). This is exactly the behaviour the paper criticises: cost
//! grows with the explored area, so long-distance queries and sparse
//! object sets explore large portions of the venue (Fig. 10(b)).

use crate::DistMx;
use indoor_graph::{DijkstraEngine, NO_VERTEX};
use indoor_model::{
    DoorId, IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries, PartitionId, QueryStats,
    Venue,
};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};

/// Expansion-based indoor query processing over the D2D graph.
pub struct DistAw {
    venue: Arc<Venue>,
    engine: Mutex<DijkstraEngine>,
    objects: Vec<IndoorPoint>,
    /// partition → objects inside it (the "distance-aware" object mapping).
    by_partition: HashMap<PartitionId, Vec<ObjectId>>,
}

impl DistAw {
    pub fn new(venue: Arc<Venue>) -> DistAw {
        let engine = DijkstraEngine::new(venue.num_doors());
        DistAw {
            venue,
            engine: Mutex::new(engine),
            objects: Vec::new(),
            by_partition: HashMap::new(),
        }
    }

    pub fn venue(&self) -> &Arc<Venue> {
        &self.venue
    }

    pub fn attach_objects(&mut self, objects: &[IndoorPoint]) {
        self.objects = objects.to_vec();
        self.by_partition.clear();
        for (i, o) in objects.iter().enumerate() {
            self.by_partition
                .entry(o.partition)
                .or_default()
                .push(ObjectId(i as u32));
        }
    }

    pub fn shortest_distance_with_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        stats.queries += 1;
        let venue = &*self.venue;
        let direct = s.direct_distance(venue, t);
        let mut engine = self.engine.lock().expect("engine poisoned");
        let via = engine.point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue));
        stats.settled_vertices += 1; // counted approximately per query
        match (direct, via) {
            (Some(d), Some((vd, _))) => Some(d.min(vd)),
            (Some(d), None) => Some(d),
            (None, Some((vd, _))) => Some(vd),
            (None, None) => None,
        }
    }

    /// kNN by graph expansion: objects become candidates as the doors of
    /// their partitions settle; the search stops when the frontier
    /// distance exceeds the current k-th candidate (no future candidate
    /// can beat it, since exit costs are non-negative).
    fn knn_expansion(&self, q: &IndoorPoint, k: usize, bound: Option<f64>) -> Vec<(ObjectId, f64)> {
        let venue = &*self.venue;
        let mut cand: HashMap<ObjectId, f64> = HashMap::new();

        // Same-partition objects are candidates immediately.
        if let Some(objs) = self.by_partition.get(&q.partition) {
            for &oid in objs {
                let o = &self.objects[oid.index()];
                let d = q.direct_distance(venue, o).expect("same partition");
                cand.insert(oid, d);
            }
        }

        let kth = |cand: &HashMap<ObjectId, f64>| -> f64 {
            if k == 0 {
                return 0.0;
            }
            if cand.len() < k {
                return f64::INFINITY;
            }
            let mut ds: Vec<f64> = cand.values().copied().collect();
            ds.sort_by(f64::total_cmp);
            ds[k - 1]
        };

        let mut engine = self.engine.lock().expect("engine poisoned");
        engine.run_visit(venue.d2d(), &q.door_seeds(venue), |v, d| {
            let stop_at = match bound {
                Some(r) => r,
                None => kth(&cand),
            };
            if d > stop_at {
                return ControlFlow::Break(());
            }
            let door = DoorId(v);
            for p in venue.door(door).partition_ids() {
                let Some(objs) = self.by_partition.get(&p) else {
                    continue;
                };
                for &oid in objs {
                    let o = &self.objects[oid.index()];
                    let od = d + o.distance_to_door(venue, door);
                    let entry = cand.entry(oid).or_insert(f64::INFINITY);
                    if od < *entry {
                        *entry = od;
                    }
                }
            }
            ControlFlow::Continue(())
        });
        drop(engine);

        let mut out: Vec<(ObjectId, f64)> = cand.into_iter().collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match bound {
            Some(r) => out.retain(|(_, d)| *d <= r),
            None => out.truncate(k),
        }
        out
    }

    fn shortest_path_impl(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let venue = &*self.venue;
        let direct = s.direct_distance(venue, t);
        let mut engine = self.engine.lock().expect("engine poisoned");
        let via = engine.point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue));
        let path = match (direct, via) {
            (Some(d), Some((vd, _))) if d <= vd => Some((d, Vec::new())),
            (Some(d), None) => Some((d, Vec::new())),
            (_, Some((vd, exit))) => {
                let mut seq = Vec::new();
                let mut cur = exit;
                loop {
                    seq.push(DoorId(cur));
                    match engine.parent(cur) {
                        Some(p) if p != NO_VERTEX => cur = p,
                        _ => break,
                    }
                }
                seq.reverse();
                Some((vd, seq))
            }
            (None, None) => None,
        };
        path.map(|(length, doors)| IndoorPath {
            source: *s,
            target: *t,
            doors,
            length,
        })
    }
}

impl IndoorIndex for DistAw {
    fn name(&self) -> &'static str {
        "DistAw"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_with_stats(s, t, &mut QueryStats::default())
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path_impl(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        // Only the extended graph (here: the D2D graph) — the paper notes
        // DistAw has the smallest footprint (Fig. 8(b)).
        self.venue.d2d().size_bytes()
    }
}

impl ObjectQueries for DistAw {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        self.knn_expansion(q, k, None)
    }
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        self.knn_expansion(q, usize::MAX, Some(radius))
    }
}

/// DistAw++ — object queries delegated to the distance matrix (§4.1:
/// "DistAw++ ... exploits DistMx, requiring an additional O(D²) space").
pub struct DistAwPlus {
    inner: DistAw,
    mx: Arc<DistMx>,
}

impl DistAwPlus {
    pub fn new(venue: Arc<Venue>, mx: Arc<DistMx>) -> DistAwPlus {
        DistAwPlus {
            inner: DistAw::new(venue),
            mx,
        }
    }

    pub fn attach_objects(&mut self, objects: &[IndoorPoint]) {
        self.inner.attach_objects(objects);
    }

    fn object_distance(&self, q: &IndoorPoint, o: &IndoorPoint) -> f64 {
        let venue = &*self.inner.venue;
        let mut best = q.direct_distance(venue, o).unwrap_or(f64::INFINITY);
        for &u in &venue.partition(q.partition).doors {
            let du = q.distance_to_door(venue, u);
            for &v in &venue.partition(o.partition).doors {
                let cand = du + self.mx.door_distance(u, v) + o.distance_to_door(venue, v);
                if cand < best {
                    best = cand;
                }
            }
        }
        best
    }
}

impl IndoorIndex for DistAwPlus {
    fn name(&self) -> &'static str {
        "DistAw++"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.inner.shortest_distance(s, t)
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.inner.shortest_path(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        self.inner.index_size_bytes() + self.mx.size_bytes()
    }
}

impl ObjectQueries for DistAwPlus {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        let mut all: Vec<(ObjectId, f64)> = self
            .inner
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), self.object_distance(q, o)))
            .filter(|(_, d)| d.is_finite())
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        let mut all: Vec<(ObjectId, f64)> = self
            .inner
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), self.object_distance(q, o)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn distaw_knn_and_range_match_brute_force(seed in 0u64..1_000, k in 1usize..6) {
            let venue = Arc::new(random_venue(seed));
            let objects = workload::place_objects(&venue, 15, seed ^ 0x21);
            let mut aw = DistAw::new(venue.clone());
            aw.attach_objects(&objects);
            let mx = Arc::new(DistMx::build(venue.clone()));
            let mut awp = DistAwPlus::new(venue.clone(), mx);
            awp.attach_objects(&objects);

            for q in workload::query_points(&venue, 5, seed ^ 0x33) {
                // DistAw++ is exact by construction of DistMx; DistAw's
                // expansion must agree with it.
                let a = aw.knn(&q, k);
                let b = awp.knn(&q, k);
                prop_assert_eq!(a.len(), b.len(), "k={} seed={}", k, seed);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!((x.1 - y.1).abs() < 1e-6 * x.1.max(1.0),
                        "knn mismatch: {:?} vs {:?}", a, b);
                }
                let ra = aw.range(&q, 120.0);
                let rb = awp.range(&q, 120.0);
                prop_assert_eq!(ra.len(), rb.len());
                for (x, y) in ra.iter().zip(&rb) {
                    prop_assert!((x.1 - y.1).abs() < 1e-6 * x.1.max(1.0));
                }
            }
        }

        #[test]
        fn distaw_paths_valid(seed in 0u64..800) {
            let venue = Arc::new(random_venue(seed));
            let aw = DistAw::new(venue.clone());
            for (s, t) in workload::query_pairs(&venue, 15, seed ^ 0x44) {
                if let Some(p) = aw.shortest_path(&s, &t) {
                    let len = p.validate(&venue).unwrap();
                    prop_assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
                    let sd = aw.shortest_distance(&s, &t).unwrap();
                    prop_assert!((sd - p.length).abs() < 1e-9 * sd.max(1.0));
                }
            }
        }
    }
}
