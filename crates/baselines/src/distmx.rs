//! The distance-matrix baseline (DistMx / DistMx--).
//!
//! Materialises the full `D × D` matrix of door-to-door shortest distances
//! plus a predecessor matrix for path recovery — "optimal" O(ρ²) queries
//! at the price of quadratic storage and `D` full Dijkstra runs at build
//! time (the paper reports 14 hours for Men-2 and could not build venues
//! beyond it; the benchmark harness enforces the same cut-off).

use indoor_graph::{DijkstraEngine, Termination, NO_VERTEX};
use indoor_model::{
    DoorId, IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries, PartitionId, QueryStats,
    Venue,
};
use std::sync::Arc;

/// Full pairwise door distance matrix (§1.2.2, §4.3.1).
pub struct DistMx {
    venue: Arc<Venue>,
    /// Row-major `D × D` shortest distances.
    dist: Box<[f64]>,
    /// `pred[u * D + v]` = predecessor of `v` on the shortest path from
    /// `u` ([`indoor_graph::NO_VERTEX`] for unreachable/self).
    pred: Box<[u32]>,
    /// §4.3.1 optimisation: skip source/target doors that only lead to
    /// no-through partitions. `false` gives the paper's DistMx--.
    pub no_through_optimisation: bool,
    /// Objects for kNN/range (used by DistAw++, which delegates here).
    objects: Vec<IndoorPoint>,
}

impl DistMx {
    /// Run `D` Dijkstra searches (parallelised over available cores) and
    /// materialise both matrices.
    pub fn build(venue: Arc<Venue>) -> DistMx {
        let d = venue.num_doors();
        let mut dist = vec![f64::INFINITY; d * d].into_boxed_slice();
        let mut pred = vec![NO_VERTEX; d * d].into_boxed_slice();

        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(d.max(1));
        // Split the rows into contiguous chunks, one worker per chunk.
        let rows_per = d.div_ceil(threads.max(1));
        let dist_chunks = dist.chunks_mut(rows_per * d);
        let pred_chunks = pred.chunks_mut(rows_per * d);
        std::thread::scope(|scope| {
            for (ci, (dch, pch)) in dist_chunks.zip(pred_chunks).enumerate() {
                let venue = &venue;
                scope.spawn(move || {
                    let mut engine = DijkstraEngine::new(venue.num_doors());
                    let first_row = ci * rows_per;
                    for (local, (drow, prow)) in
                        dch.chunks_mut(d).zip(pch.chunks_mut(d)).enumerate()
                    {
                        let u = (first_row + local) as u32;
                        engine.run(venue.d2d(), &[(u, 0.0)], Termination::Exhaust);
                        for v in 0..d as u32 {
                            if let Some(dd) = engine.settled_distance(v) {
                                drow[v as usize] = dd;
                                if v != u {
                                    prow[v as usize] = engine.parent(v).unwrap_or(NO_VERTEX);
                                }
                            }
                        }
                    }
                });
            }
        });

        DistMx {
            venue,
            dist,
            pred,
            no_through_optimisation: true,
            objects: Vec::new(),
        }
    }

    /// Toggle into the unoptimised DistMx-- variant (Fig. 9(a)).
    pub fn without_optimisation(mut self) -> DistMx {
        self.no_through_optimisation = false;
        self
    }

    pub fn venue(&self) -> &Arc<Venue> {
        &self.venue
    }

    /// O(1) door-to-door shortest distance.
    #[inline]
    pub fn door_distance(&self, u: DoorId, v: DoorId) -> f64 {
        self.dist[u.index() * self.venue.num_doors() + v.index()]
    }

    /// Attach objects for kNN/range (DistAw++ query path).
    pub fn attach_objects(&mut self, objects: &[IndoorPoint]) {
        self.objects = objects.to_vec();
    }

    /// Candidate doors of partition `p` when routing towards `other`: the
    /// §4.3.1 optimisation skips doors whose far side is a no-through
    /// partition — unless that partition is the destination itself.
    fn candidate_doors<'a>(
        &'a self,
        p: PartitionId,
        other: PartitionId,
    ) -> impl Iterator<Item = DoorId> + 'a {
        let venue = &*self.venue;
        let all = &venue.partition(p).doors;
        let optimise = self.no_through_optimisation;
        all.iter().copied().filter(move |&d| {
            if !optimise {
                return true;
            }
            match venue.door(d).other_side(p) {
                Some(q) => q == other || venue.class(q) != indoor_model::PartitionClass::NoThrough,
                None => false, // exterior dead end can never lead anywhere
            }
        })
    }

    /// Shortest distance with the minimising door pair (for path
    /// recovery) and the number of door pairs inspected (Fig. 9(a)).
    fn best_pair(&self, s: &IndoorPoint, t: &IndoorPoint) -> (f64, Option<(DoorId, DoorId)>, u64) {
        let venue = &*self.venue;
        let mut best = s.direct_distance(venue, t).unwrap_or(f64::INFINITY);
        let mut best_pair = None;
        let mut pairs = 0u64;
        for u in self.candidate_doors(s.partition, t.partition) {
            let du = s.distance_to_door(venue, u);
            for v in self.candidate_doors(t.partition, s.partition) {
                pairs += 1;
                let cand = du + self.door_distance(u, v) + t.distance_to_door(venue, v);
                if cand < best {
                    best = cand;
                    best_pair = Some((u, v));
                }
            }
        }
        (best, best_pair, pairs)
    }

    pub fn shortest_distance_with_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        stats.queries += 1;
        let (best, _, pairs) = self.best_pair(s, t);
        stats.door_pairs += pairs;
        best.is_finite().then_some(best)
    }

    /// Door sequence of the shortest path `u → v` by predecessor-matrix
    /// stepping.
    pub fn door_path(&self, u: DoorId, v: DoorId) -> Option<Vec<DoorId>> {
        if !self.door_distance(u, v).is_finite() {
            return None;
        }
        let d = self.venue.num_doors();
        let mut seq = vec![v];
        let mut cur = v;
        while cur != u {
            let p = self.pred[u.index() * d + cur.index()];
            if p == NO_VERTEX {
                return None;
            }
            cur = DoorId(p);
            seq.push(cur);
        }
        seq.reverse();
        Some(seq)
    }

    /// Exact object distance via the matrix (plus same-partition direct).
    fn object_distance(&self, q: &IndoorPoint, o: &IndoorPoint) -> f64 {
        let (d, _, _) = self.best_pair(q, o);
        d
    }

    pub fn size_bytes(&self) -> usize {
        self.dist.len() * 8 + self.pred.len() * 4
    }
}

impl IndoorIndex for DistMx {
    fn name(&self) -> &'static str {
        if self.no_through_optimisation {
            "DistMx"
        } else {
            "DistMx--"
        }
    }

    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_with_stats(s, t, &mut QueryStats::default())
    }

    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let (best, pair, _) = self.best_pair(s, t);
        if !best.is_finite() {
            return None;
        }
        let doors = match pair {
            None => Vec::new(), // direct same-partition route
            Some((u, v)) => self.door_path(u, v)?,
        };
        Some(IndoorPath {
            source: *s,
            target: *t,
            doors,
            length: best,
        })
    }

    fn index_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl ObjectQueries for DistMx {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        let mut all: Vec<(ObjectId, f64)> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), self.object_distance(q, o)))
            .filter(|(_, d)| d.is_finite())
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        let mut all: Vec<(ObjectId, f64)> = self
            .objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjectId(i as u32), self.object_distance(q, o)))
            .filter(|(_, d)| *d <= radius)
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_graph::DijkstraEngine;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;

    fn oracle(
        venue: &Venue,
        engine: &mut DijkstraEngine,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<f64> {
        let direct = s.direct_distance(venue, t);
        let via = engine
            .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
            .map(|(d, _)| d);
        match (direct, via) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn distmx_matches_oracle(seed in 0u64..1_200) {
            let venue = Arc::new(random_venue(seed));
            let mx = DistMx::build(venue.clone());
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for (s, t) in workload::query_pairs(&venue, 20, seed ^ 0x11) {
                let want = oracle(&venue, &mut engine, &s, &t);
                let got = mx.shortest_distance(&s, &t);
                match (want, got) {
                    (Some(w), Some(g)) => prop_assert!((w - g).abs() < 1e-6 * w.max(1.0),
                        "seed {seed}: got {g} want {w}"),
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability mismatch"),
                }
                // Paths valid + length == distance.
                if let Some(p) = mx.shortest_path(&s, &t) {
                    let len = p.validate(&venue).unwrap();
                    prop_assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
                }
            }
        }

        #[test]
        fn optimisation_preserves_answers(seed in 0u64..800) {
            let venue = Arc::new(random_venue(seed));
            let opt = DistMx::build(venue.clone());
            let unopt = DistMx::build(venue.clone()).without_optimisation();
            let mut st_o = QueryStats::default();
            let mut st_u = QueryStats::default();
            for (s, t) in workload::query_pairs(&venue, 25, seed ^ 0x13) {
                let a = opt.shortest_distance_with_stats(&s, &t, &mut st_o);
                let b = unopt.shortest_distance_with_stats(&s, &t, &mut st_u);
                match (a, b) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9 * x.max(1.0)),
                    (None, None) => {}
                    _ => prop_assert!(false, "optimisation changed reachability"),
                }
            }
            // The optimisation may only reduce the pairs considered.
            prop_assert!(st_o.door_pairs <= st_u.door_pairs);
        }
    }
}
