//! The indoor-technique competitors of the paper's evaluation (§4.1):
//!
//! * [`DistMx`] — the full door-to-door distance matrix (§1.2.2): `O(1)`
//!   door-pair distance retrieval, quadratic storage, very expensive
//!   construction. Its query optimisation from §4.3.1 (skipping doors that
//!   lead to no-through partitions) is toggleable; disabled it becomes the
//!   paper's `DistMx--`.
//! * [`DistAw`] — the distance-aware model of Lu, Cao & Jensen (ICDE'12):
//!   Dijkstra-like expansion over the indoor graph for every query.
//! * [`DistAwPlus`] — DistAw accelerated with the distance matrix for kNN
//!   and range queries (the paper's `DistAw++`).

mod distaw;
mod distmx;

pub use distaw::{DistAw, DistAwPlus};
pub use distmx::DistMx;
