//! Fig. 11: kNN (k=5) and range (r=100 m) query time for every index
//! (Men, 50 objects).

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_bench::{build_suite, SuiteOptions};
use indoor_synth::{presets, workload};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let venue = Arc::new(presets::menzies().build());
    let objects = workload::place_objects(&venue, 50, 11);
    let suite = build_suite(
        &venue,
        &SuiteOptions {
            with_distaw_plus: true,
            objects: Some(objects),
            ..Default::default()
        },
    );
    let points = workload::query_points(&venue, 256, 12);

    let mut g = c.benchmark_group("fig11_knn_men");
    for (ix, _) in &suite {
        g.bench_function(ix.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &points[i % points.len()];
                i += 1;
                std::hint::black_box(ix.knn(q, 5))
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig11_range_men");
    for (ix, _) in &suite {
        g.bench_function(ix.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &points[i % points.len()];
                i += 1;
                std::hint::black_box(ix.range(q, 100.0))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
