//! Fig. 7: effect of the minimum degree `t` on VIP-tree construction and
//! shortest-distance query time (bench-scale venue: MC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use indoor_synth::{presets, workload};
use std::sync::Arc;
use vip_tree::{VipTree, VipTreeConfig};

fn bench(c: &mut Criterion) {
    let venue = Arc::new(presets::melbourne_central().build());
    let pairs = workload::query_pairs(&venue, 256, 7);

    let mut g = c.benchmark_group("fig7_build");
    for t in [2usize, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let cfg = VipTreeConfig {
                min_degree: t,
                ..Default::default()
            };
            b.iter(|| VipTree::build(venue.clone(), &cfg).unwrap());
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig7_sd_query");
    for t in [2usize, 10, 20] {
        let cfg = VipTreeConfig {
            min_degree: t,
            ..Default::default()
        };
        let tree = VipTree::build(venue.clone(), &cfg).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = &pairs[i % pairs.len()];
                i += 1;
                std::hint::black_box(tree.shortest_distance_points(s, t))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
