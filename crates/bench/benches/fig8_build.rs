//! Fig. 8(a): construction time of every index (bench-scale venue: MC).

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_baselines::{DistAw, DistMx};
use indoor_synth::presets;
use std::sync::Arc;
use vip_tree::{IpTree, VipTree, VipTreeConfig};

fn bench(c: &mut Criterion) {
    let venue = Arc::new(presets::melbourne_central().build());
    let cfg = VipTreeConfig::default();

    let mut g = c.benchmark_group("fig8_build_mc");
    g.bench_function("IP-Tree", |b| {
        b.iter(|| IpTree::build(venue.clone(), &cfg).unwrap())
    });
    g.bench_function("VIP-Tree", |b| {
        b.iter(|| VipTree::build(venue.clone(), &cfg).unwrap())
    });
    g.bench_function("G-tree", |b| {
        b.iter(|| gtree::GTree::build(venue.clone(), &gtree::GTreeConfig::default()))
    });
    g.bench_function("ROAD", |b| {
        b.iter(|| road::Road::build(venue.clone(), &road::RoadConfig::default()))
    });
    g.bench_function("DistMx", |b| b.iter(|| DistMx::build(venue.clone())));
    g.bench_function("DistAw", |b| b.iter(|| DistAw::new(venue.clone())));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
