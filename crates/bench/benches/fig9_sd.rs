//! Fig. 9(b): shortest-distance query time for every index (Men).

use criterion::{criterion_group, criterion_main, Criterion};
use indoor_bench::{build_suite, SuiteOptions};
use indoor_synth::{presets, workload};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let venue = Arc::new(presets::menzies().build());
    let suite = build_suite(&venue, &SuiteOptions::default());
    let pairs = workload::query_pairs(&venue, 256, 9);

    let mut g = c.benchmark_group("fig9_sd_men");
    for (ix, _) in &suite {
        g.bench_function(ix.name(), |b| {
            let mut i = 0;
            b.iter(|| {
                let (s, t) = &pairs[i % pairs.len()];
                i += 1;
                std::hint::black_box(ix.shortest_distance(s, t))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
