//! CI perf regression gate over `BENCH_query.json` trajectories.
//!
//! Compares a freshly measured JSON against the committed baseline:
//!
//! ```sh
//! cargo run --release -p indoor-bench --bin bench_check -- \
//!     --baseline BENCH_query.json --fresh /tmp/BENCH_query.json [--threshold 2.5]
//! ```
//!
//! For every (dataset, query, threads, venues) cell present in the
//! baseline, the fresh median latency may be at most `threshold ×` the
//! committed one. Exceeding it **fails (exit 1)** — but only when the two
//! files agree on `host_cores`; CI runners with different core counts (or
//! a laptop checking a CI-generated baseline) produce incomparable
//! thread-scaling numbers, so a mismatch downgrades ratio violations to
//! warnings. A cell that disappeared from the fresh run fails
//! unconditionally with a refresh hint: that is schema drift (a renamed
//! or deleted workload gating nothing), not hardware noise.
//!
//! The inverse direction is graded softer: a fresh cell **absent from the
//! baseline** (a newly added workload, e.g. the `mixed` cells or the
//! `SVC` venue-count axis on their first run) only warns — it cannot be
//! gated before a baseline containing it is committed. Once the refreshed
//! baseline lands, the cell joins the hard-fail set like any other
//! (`venues` defaults to 1 for rows predating the axis, so old baselines
//! stay readable).
//!
//! The matching/grading policy itself lives in [`indoor_bench::gate`],
//! shared with `scenario_check`.

use indoor_bench::gate;
use indoor_model::json::{self, Json};

struct Bench {
    host_cores: usize,
    cells: Vec<gate::Cell>,
    /// `(cell name, prune_rate)` for every row carrying the stat.
    prune_rates: Vec<(String, Option<f64>)>,
    /// `(dataset, query, us)` for the `telemetry_knn_{on,off}` A/B cells.
    telemetry: Vec<(String, String, f64)>,
}

/// Queries whose rows must carry a strictly positive `prune_rate`: the
/// slab-layout kNN paths count every branch-and-bound candidate against
/// the interpolated lower bound, so a zero means the bound layer is dead.
const PRUNE_GATED_QUERIES: [&str; 2] = ["knn", "layout_knn_slab"];

fn load(path: &str) -> Bench {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let host_cores = doc
        .get("host_cores")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{path}: missing host_cores"));
    let mut cells = Vec::new();
    let mut prune_rates = Vec::new();
    let mut telemetry = Vec::new();
    for row in doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing results array"))
    {
        let dataset = row
            .get("dataset")
            .and_then(Json::as_str)
            .expect("row dataset");
        let query = row.get("query").and_then(Json::as_str).expect("row query");
        let threads = row
            .get("threads")
            .and_then(Json::as_usize)
            .expect("row threads");
        let venues = row.get("venues").and_then(Json::as_usize).unwrap_or(1);
        let us = row
            .get("us_per_query")
            .and_then(Json::as_f64)
            .expect("row us_per_query");
        let name = format!("({dataset}, {query}, threads={threads}, venues={venues})");
        if PRUNE_GATED_QUERIES.contains(&query) {
            prune_rates.push((name.clone(), row.get("prune_rate").and_then(Json::as_f64)));
        }
        if query.starts_with("telemetry_knn_") {
            telemetry.push((dataset.to_string(), query.to_string(), us));
        }
        cells.push(gate::Cell::new(name, us));
    }
    Bench {
        host_cores,
        cells,
        prune_rates,
        telemetry,
    }
}

fn main() {
    let mut baseline_path = String::from("BENCH_query.json");
    let mut fresh_path = String::new();
    let mut threshold = 2.5f64;
    let mut telemetry_overhead = 1.10f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("missing baseline path"),
            "--fresh" => fresh_path = it.next().expect("missing fresh path"),
            "--threshold" => {
                threshold = it
                    .next()
                    .expect("missing threshold")
                    .parse()
                    .expect("bad threshold")
            }
            "--telemetry-overhead" => {
                telemetry_overhead = it
                    .next()
                    .expect("missing telemetry overhead")
                    .parse()
                    .expect("bad telemetry overhead")
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_check --baseline PATH --fresh PATH [--threshold X] \
                     [--telemetry-overhead R]"
                );
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!fresh_path.is_empty(), "--fresh PATH is required");

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let comparable = baseline.host_cores == fresh.host_cores;
    if !comparable {
        println!(
            "WARN: host_cores mismatch (baseline {}, fresh {}) — ratio regressions reported as warnings only",
            baseline.host_cores, fresh.host_cores
        );
    }

    let out = gate::compare(
        &baseline.cells,
        &fresh.cells,
        &gate::GateConfig {
            threshold,
            comparable,
            incomparable_reason: format!(
                "host_cores {} in baseline vs {} here — thread scaling incomparable",
                baseline.host_cores, fresh.host_cores
            ),
            refresh_hint:
                "regenerate with `cargo run --release -p indoor-bench --bin query_bench` \
                           and commit the refreshed BENCH_query.json"
                    .to_string(),
            // Above query_bench's 0.01 us/delta clamp: a `persist_replay`
            // baseline that differenced to ~zero cannot ratio-gate.
            noise_floor: 0.05,
        },
    );
    for line in &out.lines {
        println!("{line}");
    }

    // Lower-bound liveness gate: every kNN cell of the fresh run must
    // report prune_rate > 0 — hardware-independent, so it hard-fails even
    // on a host_cores mismatch (a dead bound layer is a code bug, not
    // measurement noise).
    let mut prune_failures = 0usize;
    for (name, pr) in &fresh.prune_rates {
        match pr {
            Some(p) if *p > 0.0 => {}
            Some(p) => {
                println!(
                    "FAIL: {name} prune_rate {p} — the lower bound never rejected a candidate"
                );
                prune_failures += 1;
            }
            None => {
                println!("FAIL: {name} is missing its prune_rate field");
                prune_failures += 1;
            }
        }
    }

    // Telemetry-overhead gate: per dataset, the enabled kNN A/B cell may
    // cost at most `telemetry_overhead ×` its disabled twin. Both cells
    // of a pair come from the *same fresh run on the same host*, so this
    // hard-fails even on a host_cores mismatch — the ratio is the
    // contract (DESIGN.md §15), not a cross-machine comparison.
    let mut telemetry_failures = 0usize;
    let fresh_cell = |dataset: &str, query: &str| -> Option<f64> {
        fresh
            .telemetry
            .iter()
            .find(|(d, q, _)| d == dataset && q == query)
            .map(|(_, _, us)| *us)
    };
    let datasets: Vec<String> = {
        let mut d: Vec<String> = fresh.telemetry.iter().map(|(d, _, _)| d.clone()).collect();
        d.sort();
        d.dedup();
        d
    };
    if datasets.is_empty() {
        println!("WARN: fresh run carries no telemetry_knn_on/off cells — overhead ungated");
    }
    for dataset in &datasets {
        match (
            fresh_cell(dataset, "telemetry_knn_on"),
            fresh_cell(dataset, "telemetry_knn_off"),
        ) {
            (Some(on), Some(off)) if off > 0.0 => {
                let ratio = on / off;
                if ratio > telemetry_overhead {
                    println!(
                        "FAIL: ({dataset}) telemetry on/off ratio {ratio:.3} exceeds {telemetry_overhead} \
                         (on {on:.2} us, off {off:.2} us)"
                    );
                    telemetry_failures += 1;
                } else {
                    println!(
                        "ok:   ({dataset}) telemetry on/off ratio {ratio:.3} within {telemetry_overhead}"
                    );
                }
            }
            _ => {
                println!("FAIL: ({dataset}) telemetry A/B pair incomplete in the fresh run");
                telemetry_failures += 1;
            }
        }
    }

    println!(
        "checked {} cells against {baseline_path} (threshold {threshold}x): {} failures, {} warnings, {} prune-rate failures, {} telemetry-overhead failures",
        baseline.cells.len(),
        out.failures,
        out.warnings,
        prune_failures,
        telemetry_failures
    );
    if telemetry_failures > 0 {
        eprintln!(
            "perf gate failed: telemetry-enabled serving exceeded {telemetry_overhead}x its disabled cost"
        );
        std::process::exit(1);
    }
    if prune_failures > 0 {
        eprintln!("perf gate failed: a kNN cell's interpolated lower bound pruned nothing");
        std::process::exit(1);
    }
    if out.failures > 0 {
        eprintln!(
            "perf gate failed: stale baseline cell or >{threshold}x median-latency regression on matching hardware"
        );
        std::process::exit(1);
    }
}
