//! CI perf regression gate over `BENCH_query.json` trajectories.
//!
//! Compares a freshly measured JSON against the committed baseline:
//!
//! ```sh
//! cargo run --release -p indoor-bench --bin bench_check -- \
//!     --baseline BENCH_query.json --fresh /tmp/BENCH_query.json [--threshold 2.5]
//! ```
//!
//! For every (dataset, query, threads, venues) cell present in the
//! baseline, the fresh median latency may be at most `threshold ×` the
//! committed one. Exceeding it **fails (exit 1)** — but only when the two
//! files agree on `host_cores`; CI runners with different core counts (or
//! a laptop checking a CI-generated baseline) produce incomparable
//! thread-scaling numbers, so a mismatch downgrades every violation to a
//! warning. A cell that disappeared from the fresh run fails
//! unconditionally: that is schema drift, not noise.
//!
//! The inverse direction is graded softer: a fresh cell **absent from the
//! baseline** (a newly added workload, e.g. the `mixed` cells or the
//! `SVC` venue-count axis on their first run) only warns — it cannot be
//! gated before a baseline containing it is committed. Once the refreshed
//! baseline lands, the cell joins the hard-fail set like any other
//! (`venues` defaults to 1 for rows predating the axis, so old baselines
//! stay readable).

use indoor_model::json::{self, Json};

struct Cell {
    dataset: String,
    query: String,
    threads: usize,
    venues: usize,
    us_per_query: f64,
}

impl Cell {
    fn same_key(&self, other: &Cell) -> bool {
        self.dataset == other.dataset
            && self.query == other.query
            && self.threads == other.threads
            && self.venues == other.venues
    }

    fn key(&self) -> String {
        format!(
            "({}, {}, threads={}, venues={})",
            self.dataset, self.query, self.threads, self.venues
        )
    }
}

struct Bench {
    host_cores: usize,
    cells: Vec<Cell>,
}

fn load(path: &str) -> Bench {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"));
    let host_cores = doc
        .get("host_cores")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{path}: missing host_cores"));
    let cells = doc
        .get("results")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing results array"))
        .iter()
        .map(|row| Cell {
            dataset: row
                .get("dataset")
                .and_then(Json::as_str)
                .expect("row dataset")
                .to_string(),
            query: row
                .get("query")
                .and_then(Json::as_str)
                .expect("row query")
                .to_string(),
            threads: row
                .get("threads")
                .and_then(Json::as_usize)
                .expect("row threads"),
            venues: row.get("venues").and_then(Json::as_usize).unwrap_or(1),
            us_per_query: row
                .get("us_per_query")
                .and_then(Json::as_f64)
                .expect("row us_per_query"),
        })
        .collect();
    Bench { host_cores, cells }
}

fn main() {
    let mut baseline_path = String::from("BENCH_query.json");
    let mut fresh_path = String::new();
    let mut threshold = 2.5f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_path = it.next().expect("missing baseline path"),
            "--fresh" => fresh_path = it.next().expect("missing fresh path"),
            "--threshold" => {
                threshold = it
                    .next()
                    .expect("missing threshold")
                    .parse()
                    .expect("bad threshold")
            }
            "--help" | "-h" => {
                println!("usage: bench_check --baseline PATH --fresh PATH [--threshold X]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!fresh_path.is_empty(), "--fresh PATH is required");

    let baseline = load(&baseline_path);
    let fresh = load(&fresh_path);
    let comparable = baseline.host_cores == fresh.host_cores;
    if !comparable {
        println!(
            "WARN: host_cores mismatch (baseline {}, fresh {}) — regressions reported as warnings only",
            baseline.host_cores, fresh.host_cores
        );
    }

    let mut failures = 0usize;
    let mut warnings = 0usize;
    println!(
        "{:<6} {:>14} {:>8} {:>7} {:>12} {:>12} {:>7}",
        "venue", "query", "threads", "venues", "base us", "fresh us", "ratio"
    );
    for base in &baseline.cells {
        let Some(now) = fresh.cells.iter().find(|c| c.same_key(base)) else {
            println!("FAIL: cell {} missing from {fresh_path}", base.key());
            failures += 1;
            continue;
        };
        let ratio = now.us_per_query / base.us_per_query;
        // A warn line says *why* it is not a failure: incomparable
        // thread-scaling hardware is the only downgrade path.
        let mut context = String::new();
        let verdict = if ratio <= threshold {
            "ok"
        } else if comparable {
            failures += 1;
            "FAIL"
        } else {
            warnings += 1;
            context = format!(
                " (not a failure: host_cores {} in baseline vs {} here — thread scaling incomparable)",
                baseline.host_cores, fresh.host_cores
            );
            "warn"
        };
        println!(
            "{:<6} {:>14} {:>8} {:>7} {:>12.2} {:>12.2} {:>6.2}x {}{}",
            base.dataset,
            base.query,
            base.threads,
            base.venues,
            base.us_per_query,
            now.us_per_query,
            ratio,
            verdict,
            context
        );
    }

    // New workload cells are warn-only until a baseline containing them
    // is committed; from then on the loop above hard-fails if they vanish.
    for now in &fresh.cells {
        if !baseline.cells.iter().any(|c| c.same_key(now)) {
            println!(
                "WARN: new cell {} not in {baseline_path} — ungated until the refreshed baseline is committed",
                now.key()
            );
            warnings += 1;
        }
    }

    println!(
        "checked {} cells against {baseline_path} (threshold {threshold}x): {failures} failures, {warnings} warnings",
        baseline.cells.len()
    );
    if failures > 0 {
        eprintln!(
            "perf gate failed: median latency regressed more than {threshold}x on matching hardware"
        );
        std::process::exit(1);
    }
}
