//! Build-throughput benchmark: venue preset × thread count → build time.
//!
//! Writes `BENCH_build.json` at the workspace root so successive PRs have
//! a machine-readable perf trajectory for index construction (the paper's
//! Fig. 8(a) axis). Run with:
//!
//! ```sh
//! cargo run --release -p indoor-bench --bin build_bench -- [--reps N] [--out PATH]
//! ```
//!
//! Reported time per configuration is the best of `reps` runs (build time
//! is deterministic work; min is the least noisy estimator on shared
//! hardware). `doors_per_sec` counts venue doors processed per second of
//! VIP-tree construction (IP-tree + per-door ancestor tables).

use indoor_synth::presets;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use vip_tree::{VipTree, VipTreeConfig};

struct Row {
    dataset: &'static str,
    doors: usize,
    partitions: usize,
    threads: usize,
    best_ms: f64,
    doors_per_sec: f64,
}

fn main() {
    let mut reps = 3usize;
    let mut out_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => reps = it.next().expect("missing reps").parse().expect("bad reps"),
            "--out" => out_path = Some(it.next().expect("missing path")),
            "--help" | "-h" => {
                println!("usage: build_bench [--reps N] [--out PATH]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let reps = reps.max(1);
    let out_path = out_path
        .unwrap_or_else(|| format!("{}/../../BENCH_build.json", env!("CARGO_MANIFEST_DIR")));

    let datasets = [
        ("MC", presets::melbourne_central()),
        ("MC-2", presets::melbourne_central_2()),
        ("Men", presets::menzies()),
    ];
    let thread_counts = [1usize, 2, 4];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows: Vec<Row> = Vec::new();
    for (name, spec) in datasets {
        let venue = Arc::new(spec.build());
        let stats = venue.stats();
        println!(
            "== {name}: {} doors, {} partitions",
            stats.doors, stats.partitions
        );
        for &threads in &thread_counts {
            let cfg = VipTreeConfig::default().with_threads(threads);
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let tree = VipTree::build(venue.clone(), &cfg).expect("build");
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(&tree);
                best = best.min(ms);
            }
            let doors_per_sec = stats.doors as f64 / (best / 1e3);
            println!("   threads={threads}: {best:8.2} ms  ({doors_per_sec:10.0} doors/s)");
            rows.push(Row {
                dataset: name,
                doors: stats.doors,
                partitions: stats.partitions,
                threads,
                best_ms: best,
                doors_per_sec,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"vip_tree_build\",\n");
    let _ = writeln!(json, "  \"unit\": \"ms (best of {reps})\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        let _ = writeln!(json, "  \"generated_unix\": {},", t.as_secs());
    }
    json.push_str("  \"note\": \"build is bit-identical across thread counts (see tests/parallel_equivalence.rs); speedup saturates at host_cores\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let serial_ms = rows
            .iter()
            .find(|x| x.dataset == r.dataset && x.threads == 1)
            .map(|x| x.best_ms)
            .unwrap_or(r.best_ms);
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"doors\": {}, \"partitions\": {}, \"threads\": {}, \"build_ms\": {:.3}, \"doors_per_sec\": {:.0}, \"speedup_vs_serial\": {:.3}}}",
            r.dataset,
            r.doors,
            r.partitions,
            r.threads,
            r.best_ms,
            r.doors_per_sec,
            serial_ms / r.best_ms,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("write BENCH_build.json");
    println!("wrote {out_path}");
}
