//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```text
//! experiments --experiment <id> [--scale small|paper] [--pairs N] [--queries N]
//!   ids: table1 table2 fig7 fig8 fig9a fig9b fig10a fig10b
//!        fig11a fig11b fig11c fig11d all
//! ```
//!
//! `--scale small` (default) runs MC, MC-2, Men, Men-2 and the reduced
//! CL-lite campuses; `--scale paper` swaps in the full 71-building Clayton
//! venues. Absolute numbers differ from the paper's 2016 C++/PC testbed —
//! the *shape* (orderings, gaps, crossovers) is what EXPERIMENTS.md
//! compares.

use indoor_bench::{
    build_suite, datasets, fmt_bytes, fmt_us, time_queries, AnyIndex, Scale, SuiteOptions,
};
use indoor_model::{IndoorPoint, QueryStats};
use indoor_synth::{presets, workload};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vip_tree::{IpTree, TreeStats, VipTree, VipTreeConfig};

struct Args {
    experiment: String,
    scale: Scale,
    pairs: usize,
    queries: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        experiment: "all".to_string(),
        scale: Scale::Small,
        pairs: 2_000,
        queries: 500,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => args.experiment = it.next().expect("missing experiment id"),
            "--scale" => {
                args.scale = match it.next().expect("missing scale").as_str() {
                    "paper" => Scale::Paper,
                    _ => Scale::Small,
                }
            }
            "--pairs" => args.pairs = it.next().unwrap().parse().expect("bad --pairs"),
            "--queries" => args.queries = it.next().unwrap().parse().expect("bad --queries"),
            "--help" | "-h" => {
                println!(
                    "usage: experiments --experiment <table1|table2|fig7|fig8|fig9a|fig9b|\
                     fig10a|fig10b|fig11a|fig11b|fig11c|fig11d|all> [--scale small|paper] \
                     [--pairs N] [--queries N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

const BUDGET: Duration = Duration::from_secs(5);

fn main() {
    let args = parse_args();
    let run = |id: &str| args.experiment == id || args.experiment == "all";

    if run("table2") {
        table2(args.scale);
    }
    if run("table1") {
        table1(args.scale);
    }
    if run("fig7") {
        fig7(&args);
    }
    if run("fig8") {
        fig8(&args);
    }
    if run("fig9a") {
        fig9a(&args);
    }
    if run("fig9b") {
        figure_query_times(
            &args,
            Kind::Distance,
            "Fig 9(b): shortest distance query time",
        );
    }
    if run("fig10a") {
        figure_query_times(&args, Kind::Path, "Fig 10(a): shortest path query time");
    }
    if run("fig10b") {
        fig10b(&args);
    }
    if run("fig11a") {
        fig11a(&args);
    }
    if run("fig11b") {
        fig11b(&args);
    }
    if run("fig11c") {
        fig11_venues(&args, ObjKind::Knn, "Fig 11(c): kNN query time per venue");
    }
    if run("fig11d") {
        fig11_venues(
            &args,
            ObjKind::Range,
            "Fig 11(d): range query time per venue",
        );
    }
}

// ---------------------------------------------------------------- Table 2

fn table2(scale: Scale) {
    println!("\n== Table 2: indoor venues (generated; paper values in EXPERIMENTS.md) ==");
    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "dataset", "#doors", "#rooms", "#edges", "maxdeg", "#levels"
    );
    for (name, spec) in datasets(scale) {
        let v = spec.build();
        let s = v.stats();
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>8} {:>8}",
            name, s.doors, s.partitions, s.d2d_edges, s.max_out_degree, s.levels
        );
    }
}

// ---------------------------------------------------------------- Table 1

fn table1(scale: Scale) {
    println!("\n== Table 1: measured complexity parameters (rho, f, M, D, alpha) ==");
    println!(
        "{:<10} {:>6} {:>6} {:>7} {:>8} {:>7} {:>7} {:>8} {:>10} {:>10}",
        "dataset", "rho", "f", "M", "D", "alpha", "height", "max_sup", "IP size", "VIP size"
    );
    for (name, spec) in datasets(scale) {
        let venue = Arc::new(spec.build());
        let cfg = VipTreeConfig::default();
        let ip = IpTree::build(venue.clone(), &cfg).unwrap();
        let vip = VipTree::build(venue.clone(), &cfg).unwrap();
        let s = TreeStats::compute(&ip);
        println!(
            "{:<10} {:>6.2} {:>6.2} {:>7} {:>8} {:>7.2} {:>7} {:>8} {} {}",
            name,
            s.avg_access_doors,
            s.avg_fanout,
            s.num_leaves,
            s.num_doors,
            s.avg_superior_doors,
            s.height,
            s.max_superior_doors,
            fmt_bytes(ip.size_bytes()),
            fmt_bytes(vip.size_bytes()),
        );
    }
}

// ---------------------------------------------------------------- Fig 7

fn fig7(args: &Args) {
    println!("\n== Fig 7: effect of minimum degree t on VIP-tree (CL campus) ==");
    let spec = match args.scale {
        Scale::Paper => presets::clayton(),
        Scale::Small => presets::clayton_lite(),
    };
    let venue = Arc::new(spec.build());
    let pairs = workload::query_pairs(&venue, args.pairs, 11);
    let objects = workload::place_objects(&venue, 50, 12);
    let points = workload::query_points(&venue, args.queries, 13);
    println!(
        "{:<6} {:>12} {:>12} {:>14} {:>12}",
        "t", "memory", "build time", "SD query", "kNN query"
    );
    for t in [2usize, 10, 20, 60, 100] {
        let cfg = VipTreeConfig {
            min_degree: t,
            ..Default::default()
        };
        let t0 = Instant::now();
        let vip = VipTree::build(venue.clone(), &cfg).unwrap();
        let build = t0.elapsed();
        vip.attach_objects(&objects);
        let (sd_us, _) = time_queries(&pairs, args.pairs, BUDGET, |(s, t)| {
            std::hint::black_box(vip.shortest_distance_points(s, t));
        });
        let (knn_us, _) = time_queries(&points, args.queries, BUDGET, |q| {
            std::hint::black_box(vip.knn(q, 5));
        });
        println!(
            "{:<6} {:>12} {:>12} {:>14} {:>12}",
            t,
            fmt_bytes(vip.size_bytes()),
            format!("{:.1?}", build),
            fmt_us(sd_us),
            fmt_us(knn_us)
        );
    }
}

// ---------------------------------------------------------------- Fig 8

fn fig8(args: &Args) {
    println!("\n== Fig 8: indexing cost (construction time / index size) ==");
    for (name, spec) in datasets(args.scale) {
        let venue = Arc::new(spec.build());
        let suite = build_suite(&venue, &SuiteOptions::default());
        println!("-- {name} ({} doors)", venue.num_doors());
        println!("{:<10} {:>14} {:>12}", "index", "build time", "size");
        for (ix, build) in &suite {
            println!(
                "{:<10} {:>14} {:>12}",
                ix.name(),
                format!("{:.1?}", build),
                fmt_bytes(ix.index_size_bytes())
            );
        }
    }
}

// ---------------------------------------------------------------- Fig 9(a)

fn fig9a(args: &Args) {
    println!("\n== Fig 9(a): mean door pairs considered per SD query ==");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "dataset", "DistMx", "DistMx--", "VIP-Tree"
    );
    for (name, spec) in datasets(args.scale) {
        let venue = Arc::new(spec.build());
        if venue.num_doors() > indoor_bench::DISTMX_MAX_DOORS {
            // Matrix not buildable (paper behaviour); VIP numbers alone.
            let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let pairs = workload::query_pairs(&venue, args.pairs, 17);
            let mut st = QueryStats::default();
            for (s, t) in &pairs {
                vip.shortest_distance_with_stats(s, t, &mut st);
            }
            println!(
                "{:<10} {:>10} {:>10} {:>10.2}",
                name,
                "-",
                "-",
                st.mean_door_pairs()
            );
            continue;
        }
        let suite = build_suite(
            &venue,
            &SuiteOptions {
                with_unoptimised_mx: true,
                ..Default::default()
            },
        );
        let pairs = workload::query_pairs(&venue, args.pairs, 17);
        let (mut mx, mut mxu, mut vip) = (0.0, 0.0, 0.0);
        for (ix, _) in &suite {
            let mut st = QueryStats::default();
            match ix {
                AnyIndex::Mx(m) => {
                    for (s, t) in &pairs {
                        m.shortest_distance_with_stats(s, t, &mut st);
                    }
                    mx = st.mean_door_pairs();
                }
                AnyIndex::MxUnopt(m) => {
                    for (s, t) in &pairs {
                        m.shortest_distance_with_stats(s, t, &mut st);
                    }
                    mxu = st.mean_door_pairs();
                }
                AnyIndex::Vip(v) => {
                    for (s, t) in &pairs {
                        v.shortest_distance_with_stats(s, t, &mut st);
                    }
                    vip = st.mean_door_pairs();
                }
                _ => {}
            }
        }
        println!("{name:<10} {mx:>10.2} {mxu:>10.2} {vip:>10.2}");
    }
}

// ------------------------------------------------- Fig 9(b) / Fig 10(a)

#[derive(Clone, Copy)]
enum Kind {
    Distance,
    Path,
}

fn figure_query_times(args: &Args, kind: Kind, title: &str) {
    println!("\n== {title} ==");
    for (name, spec) in datasets(args.scale) {
        let venue = Arc::new(spec.build());
        let suite = build_suite(&venue, &SuiteOptions::default());
        let pairs = workload::query_pairs(&venue, args.pairs, 19);
        print!("{name:<10}");
        let mut cols = String::new();
        for (ix, _) in &suite {
            let (us, ran) = match kind {
                Kind::Distance => time_queries(&pairs, args.pairs, BUDGET, |(s, t)| {
                    std::hint::black_box(ix.shortest_distance(s, t));
                }),
                Kind::Path => time_queries(&pairs, args.pairs, BUDGET, |(s, t)| {
                    std::hint::black_box(ix.shortest_path(s, t));
                }),
            };
            cols.push_str(&format!(" {}={} (n={})", ix.name(), fmt_us(us).trim(), ran));
        }
        println!("{cols}");
    }
}

// ---------------------------------------------------------------- Fig 10(b)

fn fig10b(args: &Args) {
    println!("\n== Fig 10(b): SP query time vs distance quintile (Men-2) ==");
    let venue = Arc::new(presets::menzies_2().build());
    let oracle = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let buckets = workload::distance_quintile_pairs(&venue, args.pairs / 5 + 1, 23, |s, t| {
        oracle.shortest_distance_points(s, t)
    });
    let suite = build_suite(&venue, &SuiteOptions::default());
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "index", "Q1", "Q2", "Q3", "Q4", "Q5"
    );
    for (ix, _) in &suite {
        let mut row = format!("{:<10}", ix.name());
        for bucket in &buckets {
            if bucket.is_empty() {
                row.push_str(&format!("{:>12}", "-"));
                continue;
            }
            let (us, _) = time_queries(bucket, bucket.len(), BUDGET, |(s, t)| {
                std::hint::black_box(ix.shortest_path(s, t));
            });
            row.push_str(&format!("{:>12}", fmt_us(us).trim()));
        }
        println!("{row}");
    }
}

// ---------------------------------------------------------------- Fig 11

fn object_suite(
    venue: &Arc<indoor_model::Venue>,
    objects: Vec<IndoorPoint>,
) -> Vec<(AnyIndex, Duration)> {
    build_suite(
        venue,
        &SuiteOptions {
            with_distaw_plus: true,
            objects: Some(objects),
            ..Default::default()
        },
    )
}

fn fig11a(args: &Args) {
    println!("\n== Fig 11(a): kNN query time vs k (Men-2, 50 objects) ==");
    let venue = Arc::new(presets::menzies_2().build());
    let suite = object_suite(&venue, workload::place_objects(&venue, 50, 29));
    let points = workload::query_points(&venue, args.queries, 31);
    println!("{:<10} {:>12} {:>12} {:>12}", "index", "k=1", "k=5", "k=10");
    for (ix, _) in &suite {
        let mut row = format!("{:<10}", ix.name());
        for k in [1usize, 5, 10] {
            let (us, _) = time_queries(&points, args.queries, BUDGET, |q| {
                std::hint::black_box(ix.knn(q, k));
            });
            row.push_str(&format!("{:>12}", fmt_us(us).trim()));
        }
        println!("{row}");
    }
}

fn fig11b(args: &Args) {
    println!("\n== Fig 11(b): kNN query time vs object count (Men-2, k=5) ==");
    let venue = Arc::new(presets::menzies_2().build());
    let points = workload::query_points(&venue, args.queries, 37);
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "index", "|O|=10", "|O|=50", "|O|=100", "|O|=500"
    );
    let mut rows: std::collections::BTreeMap<&'static str, String> = Default::default();
    for n_obj in [10usize, 50, 100, 500] {
        let suite = object_suite(&venue, workload::place_objects(&venue, n_obj, 41));
        for (ix, _) in &suite {
            let (us, _) = time_queries(&points, args.queries, BUDGET, |q| {
                std::hint::black_box(ix.knn(q, 5));
            });
            rows.entry(ix.name())
                .or_default()
                .push_str(&format!("{:>12}", fmt_us(us).trim()));
        }
    }
    for (name, cols) in rows {
        println!("{name:<10} {cols}");
    }
}

#[derive(Clone, Copy)]
enum ObjKind {
    Knn,
    Range,
}

fn fig11_venues(args: &Args, kind: ObjKind, title: &str) {
    println!("\n== {title} (k=5 / r=100m, 50 objects) ==");
    for (name, spec) in datasets(args.scale) {
        let venue = Arc::new(spec.build());
        let suite = object_suite(&venue, workload::place_objects(&venue, 50, 43));
        let points = workload::query_points(&venue, args.queries, 47);
        let mut cols = String::new();
        for (ix, _) in &suite {
            let (us, _) = match kind {
                ObjKind::Knn => time_queries(&points, args.queries, BUDGET, |q| {
                    std::hint::black_box(ix.knn(q, 5));
                }),
                ObjKind::Range => time_queries(&points, args.queries, BUDGET, |q| {
                    std::hint::black_box(ix.range(q, 100.0));
                }),
            };
            cols.push_str(&format!(" {}={}", ix.name(), fmt_us(us).trim()));
        }
        println!("{name:<10}{cols}");
    }
}
