//! Query-throughput benchmark: venue preset × query type × thread count.
//!
//! Writes `BENCH_query.json` at the workspace root so successive PRs have
//! a machine-readable latency/throughput trajectory for the serving path
//! (the paper's §4.3 query-cost axis, extended with multi-threaded batch
//! execution). Run with:
//!
//! ```sh
//! cargo run --release -p indoor-bench --bin query_bench -- [--reps N] [--out PATH]
//! ```
//!
//! Each cell batches the whole workload through a `QueryEngine` and
//! reports the **median over reps** of per-query latency (batch wall time
//! divided by batch size). Batches are slot-indexed and deterministic, so
//! every (venue, query) cell measures identical work at every thread
//! count; `host_cores` is recorded because speedup saturates there, and
//! the CI gate (`bench_check`) only hard-fails when it matches the
//! committed baseline's.
//!
//! Two workload axes beyond the per-kind cells:
//!
//! * `mixed` — a shuffled heterogeneous `QueryRequest` batch per venue
//!   preset through `QueryEngine::execute_batch` (uncached);
//! * `SVC` rows — the same total mixed workload split over `venues`
//!   shards of an `IndoorService`, measuring steady-state serving with a
//!   warm version-stamped result cache (the repeated-batch loop is exactly a
//!   hot-spot workload, so after the warm-up every request is a hit);
//! * `persist_*` rows — the durability subsystem: `persist_save` (µs per
//!   whole-service snapshot), `persist_open` (µs per warm restart from a
//!   snapshot, tree rebuild included), and `persist_replay` (µs per
//!   `ObjectDelta` of WAL-suffix replay, isolated by differencing a
//!   suffix-laden open against a snapshot-only open);
//! * the `admission` row — p99 latency of queries **admitted** through a
//!   shed-policy in-flight gate while a saturator floods the same shard
//!   past its budget, asserting a non-zero shed rate along the way.

use indoor_model::{IndoorPoint, ObjectDelta, ObjectId, QueryRequest, VenueId};
use indoor_synth::{presets, workload};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vip_tree::{
    AdmissionConfig, IndoorService, KeywordObjects, OverloadPolicy, QueryEngine, ServiceError,
    ShardConfig, VipTree, VipTreeConfig,
};

const KNN_K: usize = 5;
const RANGE_RADIUS: f64 = 150.0;
const KEYWORD: &str = "cafe";
const N_OBJECTS: usize = 200;
const N_QUERIES: usize = 300;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
/// `IndoorService` sharding axis: the same total mixed workload split
/// over this many venue shards.
const VENUE_COUNTS: [usize; 3] = [1, 2, 4];
/// Object deltas per `update_objects` batch in the churn cells.
const DELTAS_PER_BATCH: usize = 64;
/// WAL batches appended for the `persist_replay` cell; sized so replay
/// work dominates the (differenced-away) tree rebuild.
const REPLAY_BATCHES: usize = 256;

struct Row {
    dataset: String,
    doors: usize,
    query: &'static str,
    threads: usize,
    venues: usize,
    n_queries: usize,
    us_per_query: f64,
    /// kNN cells only: fraction of branch-and-bound candidates rejected
    /// by the interpolated lower bound without touching a matrix row.
    prune_rate: Option<f64>,
}

/// Median over reps of (batch wall micros / batch size).
///
/// A batch of 300 cheap queries finishes in well under a millisecond, so
/// one raw timing would be scheduler noise; each sample instead loops the
/// batch until it covers ≥ [`MIN_SAMPLE_MS`] of wall time — keeping even
/// `--reps 1` CI smoke runs stable enough for the 2.5x regression gate.
/// The iteration count is calibrated from the **second** run: the first
/// run is untimed warm-up, which matters for cells with warm-up-dependent
/// cost (the SVC rows fill their result cache on the first run; timing
/// must be calibrated against the all-hits steady state, or every timed
/// sample would cover a fraction of the target window).
const MIN_SAMPLE_MS: f64 = 20.0;

fn median_us(reps: usize, n: usize, mut run: impl FnMut()) -> f64 {
    run(); // warm-up (pools, caches)
    let t0 = Instant::now();
    run(); // calibration at steady state
    let once_ms = (t0.elapsed().as_secs_f64() * 1e3).max(1e-6);
    let iters = ((MIN_SAMPLE_MS / once_ms).ceil() as usize).clamp(1, 100_000);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                run();
            }
            t0.elapsed().as_secs_f64() * 1e6 / (n * iters) as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut reps = 5usize;
    let mut out_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => reps = it.next().expect("missing reps").parse().expect("bad reps"),
            "--out" => out_path = Some(it.next().expect("missing path")),
            "--help" | "-h" => {
                println!("usage: query_bench [--reps N] [--out PATH]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let reps = reps.max(1);
    let out_path = out_path
        .unwrap_or_else(|| format!("{}/../../BENCH_query.json", env!("CARGO_MANIFEST_DIR")));

    let datasets = [
        ("MC", presets::melbourne_central()),
        ("MC-2", presets::melbourne_central_2()),
        ("Men", presets::menzies()),
    ];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows: Vec<Row> = Vec::new();
    for (name, spec) in datasets {
        let venue = Arc::new(spec.build());
        let doors = venue.stats().doors;
        let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
        let labelled = workload::cycling_labels(&objects, KEYWORD);
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");
        tree.attach_objects(&objects);
        let kw = Arc::new(KeywordObjects::build(tree.ip_tree(), &labelled));
        let tree = Arc::new(tree);

        let points = workload::query_points(&venue, N_QUERIES, 0x9E);
        let pairs = workload::query_pairs(&venue, N_QUERIES, 0x9F);
        let mixed =
            workload::mixed_requests(&venue, N_QUERIES / 5, KNN_K, RANGE_RADIUS, KEYWORD, 0xA0);
        println!("== {name}: {doors} doors, {N_QUERIES} queries per type");

        // Lower-bound effectiveness over this preset's kNN workload:
        // counters accumulate across the whole point set, so the rate is
        // a workload aggregate, not a per-query sample.
        let prune_rate = {
            let mut stats = indoor_model::QueryStats::default();
            for q in &points {
                std::hint::black_box(tree.knn_with_stats(q, KNN_K, &mut stats));
            }
            stats.prune_rate()
        };
        println!("   lower-bound prune_rate: {prune_rate:.3}");

        for &threads in &THREAD_COUNTS {
            let engine = QueryEngine::for_vip(tree.clone())
                .with_threads(threads)
                .with_keywords(kw.clone());
            // Warm-up pass: pool scratches/engines allocate outside the
            // timed region, like a long-running server's steady state.
            std::hint::black_box(engine.batch_knn(&points[..8.min(points.len())], KNN_K));

            type Cell<'a> = (&'static str, Box<dyn FnMut() + 'a>);
            let cells: [Cell; 5] = [
                (
                    "knn",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_knn(&points, KNN_K));
                    }),
                ),
                (
                    "range",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_range(&points, RANGE_RADIUS));
                    }),
                ),
                (
                    "keyword",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_knn_keyword(&points, KNN_K, KEYWORD));
                    }),
                ),
                (
                    "shortest_path",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_shortest_path(&pairs));
                    }),
                ),
                (
                    "mixed",
                    Box::new(|| {
                        std::hint::black_box(engine.execute_batch(&mixed));
                    }),
                ),
            ];
            for (query, mut run) in cells {
                let n = if query == "mixed" {
                    mixed.len()
                } else {
                    N_QUERIES
                };
                let us = median_us(reps, n, &mut *run);
                println!(
                    "   {query:>13} threads={threads}: {us:9.2} us/query  ({:9.0} q/s)",
                    1e6 / us
                );
                rows.push(Row {
                    dataset: name.to_string(),
                    doors,
                    query,
                    threads,
                    venues: 1,
                    n_queries: n,
                    us_per_query: us,
                    prune_rate: (query == "knn").then_some(prune_rate),
                });
            }
        }

        // Layout A/B cells: the same kNN/range/shortest-path workloads at
        // threads=1 with the implicit slab layout on (`slab`, the default
        // hot path) vs off (`ptr`, the original pointer walk). Both live
        // in the trajectory so a layout regression gates like any other
        // cell, and the pair documents the tentpole's before/after on
        // every refresh.
        {
            let engine = QueryEngine::for_vip(tree.clone()).with_threads(1);
            std::hint::black_box(engine.batch_knn(&points[..8.min(points.len())], KNN_K));
            let layout_cells: [(&'static str, &'static str, bool); 6] = [
                ("layout_knn_slab", "knn", true),
                ("layout_knn_ptr", "knn", false),
                ("layout_range_slab", "range", true),
                ("layout_range_ptr", "range", false),
                ("layout_path_slab", "path", true),
                ("layout_path_ptr", "path", false),
            ];
            for (query, kind, slab) in layout_cells {
                tree.set_hot_layout(slab);
                let us = match kind {
                    "knn" => median_us(reps, N_QUERIES, || {
                        std::hint::black_box(engine.batch_knn(&points, KNN_K));
                    }),
                    "range" => median_us(reps, N_QUERIES, || {
                        std::hint::black_box(engine.batch_range(&points, RANGE_RADIUS));
                    }),
                    _ => median_us(reps, N_QUERIES, || {
                        std::hint::black_box(engine.batch_shortest_path(&pairs));
                    }),
                };
                println!(
                    "   {query:>17} threads=1: {us:9.2} us/query  ({:9.0} q/s)",
                    1e6 / us
                );
                rows.push(Row {
                    dataset: name.to_string(),
                    doors,
                    query,
                    threads: 1,
                    venues: 1,
                    n_queries: N_QUERIES,
                    us_per_query: us,
                    prune_rate: (query == "layout_knn_slab").then_some(prune_rate),
                });
            }
            tree.set_hot_layout(true);
        }

        // Telemetry A/B cells: the same kNN workload served through an
        // `IndoorService` shard (so the whole instrumented path runs —
        // admission, cache probe, per-query trace, histogram folds) with
        // the sampling gate open (`on`, the shipped default) vs closed
        // (`off`). The pair is the zero-cost-when-off contract's
        // evidence, and `bench_check` hard-fails when `on/off` exceeds
        // its overhead budget. A 1-entry cache keeps repeats from
        // collapsing into cache hits: the cells measure query work.
        {
            let t_service = IndoorService::new();
            let tid = t_service
                .add_venue(
                    venue.clone(),
                    ShardConfig {
                        threads: 1,
                        objects: objects.clone(),
                        cache_capacity: 1,
                        ..ShardConfig::default()
                    },
                )
                .expect("telemetry shard");
            let knn_reqs: Vec<(VenueId, QueryRequest)> = points
                .iter()
                .map(|q| (tid, QueryRequest::Knn { q: *q, k: KNN_K }))
                .collect();
            // The two cells are sampled *interleaved* (on, off, on, off,
            // …) rather than as two back-to-back `median_us` blocks: the
            // gate reads the on/off ratio, and on a shared host a load
            // burst or frequency step lasting longer than one cell would
            // otherwise land entirely on whichever cell ran second and
            // fake a 20–30% "overhead". Interleaving puts both cells'
            // samples in the same wall-clock span so drift hits both
            // medians equally; the pair also gets a rep floor of its own
            // so the `--reps 1` CI smoke still takes enough samples for
            // the median to shed outliers.
            vip_tree::telemetry::set_sampling(true);
            std::hint::black_box(t_service.execute_batch(&knn_reqs)); // warm-up (lazy grids, pools)
            let t0 = Instant::now();
            std::hint::black_box(t_service.execute_batch(&knn_reqs)); // calibrate at steady state
            let once_ms = (t0.elapsed().as_secs_f64() * 1e3).max(1e-6);
            let iters = ((MIN_SAMPLE_MS / once_ms).ceil() as usize).clamp(1, 100_000);
            let mut samples = [Vec::new(), Vec::new()];
            for _ in 0..reps.max(5) {
                for (slot, on) in [(0usize, true), (1, false)] {
                    vip_tree::telemetry::set_sampling(on);
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(t_service.execute_batch(&knn_reqs));
                    }
                    samples[slot]
                        .push(t0.elapsed().as_secs_f64() * 1e6 / (knn_reqs.len() * iters) as f64);
                }
            }
            for (slot, query) in [(0usize, "telemetry_knn_on"), (1, "telemetry_knn_off")] {
                let s = &mut samples[slot];
                s.sort_by(f64::total_cmp);
                let us = s[s.len() / 2];
                println!(
                    "   {query:>17} threads=1: {us:9.2} us/query  ({:9.0} q/s)",
                    1e6 / us
                );
                rows.push(Row {
                    dataset: name.to_string(),
                    doors,
                    query,
                    threads: 1,
                    venues: 1,
                    n_queries: knn_reqs.len(),
                    us_per_query: us,
                    prune_rate: None,
                });
            }
            vip_tree::telemetry::set_sampling(true);
        }
    }

    // Multi-venue serving axis: the same total mixed workload split over
    // `venue_count` IndoorService shards (presets cycled), measuring the
    // steady state of a hot-spot workload — after the untimed warm-up
    // run, every request is answered from the version-stamped cache.
    for &venue_count in &VENUE_COUNTS {
        let service = IndoorService::new();
        let mut reqs: Vec<(VenueId, QueryRequest)> = Vec::new();
        let mut doors = 0usize;
        let per_venue_per_kind = (N_QUERIES / (5 * venue_count)).max(1);
        let specs = [
            presets::melbourne_central(),
            presets::melbourne_central_2(),
            presets::menzies(),
        ];
        for v in 0..venue_count {
            let venue = Arc::new(specs[v % specs.len()].build());
            doors += venue.stats().doors;
            let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
            let labelled = workload::cycling_labels(&objects, KEYWORD);
            let id = service
                .add_venue(
                    venue.clone(),
                    ShardConfig {
                        threads: 1,
                        objects,
                        keywords: labelled,
                        ..ShardConfig::default()
                    },
                )
                .expect("build shard");
            for req in workload::mixed_requests(
                &venue,
                per_venue_per_kind,
                KNN_K,
                RANGE_RADIUS,
                KEYWORD,
                0xA1 + v as u64,
            ) {
                reqs.push((id, req));
            }
        }
        workload::shuffle(&mut reqs, 0xA7);
        let n = reqs.len();
        let us = median_us(reps, n, &mut || {
            std::hint::black_box(service.execute_batch(&reqs));
        });
        println!("== SVC venues={venue_count}: {doors} doors, {n} mixed requests (warm cache)");
        println!(
            "   {:>13} venues={venue_count}: {us:9.2} us/query  ({:9.0} q/s)",
            "mixed",
            1e6 / us
        );
        rows.push(Row {
            dataset: "SVC".to_string(),
            doors,
            query: "mixed",
            // execute_batch runs one worker per shard (each shard itself
            // single-threaded here), so the actual concurrency of an SVC
            // cell is its venue count — record it honestly.
            threads: venue_count,
            venues: venue_count,
            n_queries: n,
            us_per_query: us,
            prune_rate: None,
        });
    }

    // Churn axis: µs per object delta absorbed by one venue while a
    // mixed query load hammers a *second* venue of the same preset on a
    // concurrent thread — the live-service update workload
    // (`IndoorService::update_objects`). `qps` for these rows reads as
    // updates/sec.
    for (name, spec) in [
        ("MC", presets::melbourne_central()),
        ("MC-2", presets::melbourne_central_2()),
        ("Men", presets::menzies()),
    ] {
        let venue = Arc::new(spec.build());
        let doors = venue.stats().doors * 2; // two shards of this preset
        let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
        let service = IndoorService::new();
        let churn_id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: objects.clone(),
                    ..ShardConfig::default()
                },
            )
            .expect("churn shard");
        let query_id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: workload::place_objects(&venue, N_OBJECTS, 0xB0C),
                    ..ShardConfig::default()
                },
            )
            .expect("query shard");
        let reqs: Vec<(VenueId, QueryRequest)> =
            workload::mixed_requests(&venue, N_QUERIES / 5, KNN_K, RANGE_RADIUS, KEYWORD, 0xA9)
                .into_iter()
                .map(|r| (query_id, r))
                .collect();
        // Two alternating all-moves batches (always valid, any order).
        let alt = workload::place_objects(&venue, N_OBJECTS, 0xB0D);
        let batch_for = |pool: &[IndoorPoint]| -> Vec<ObjectDelta> {
            (0..DELTAS_PER_BATCH)
                .map(|i| ObjectDelta::Move {
                    id: ObjectId(i as u32),
                    to: pool[i % pool.len()],
                })
                .collect()
        };
        let batches = [batch_for(&alt), batch_for(&objects)];
        let stop = AtomicBool::new(false);
        let us = std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(service.execute_batch(&reqs));
                }
            });
            let mut flip = 0usize;
            let us = median_us(reps, DELTAS_PER_BATCH, || {
                std::hint::black_box(
                    service
                        .update_objects(churn_id, &batches[flip % 2])
                        .expect("churn deltas"),
                );
                flip += 1;
            });
            stop.store(true, Ordering::Relaxed);
            us
        });
        println!(
            "== {name} churn: {:9.2} us/delta ({:9.0} updates/s) under mixed load on a second venue",
            us,
            1e6 / us
        );
        rows.push(Row {
            dataset: name.to_string(),
            doors,
            query: "churn",
            threads: 1,
            venues: 2,
            n_queries: DELTAS_PER_BATCH,
            us_per_query: us,
            prune_rate: None,
        });
    }

    // Admission-control axis: p99 latency of *admitted* queries while a
    // saturator floods the same bounded shard far past its in-flight
    // budget, plus the shed rate — the overload behaviour a production
    // deployment sees (typed `Overloaded` rejections instead of unbounded
    // queue growth). The saturator claims the whole budget in one
    // batch-weight admission per pass (oversized batches admit on an idle
    // gate), so the foreground faces genuine contention even on one core.
    {
        const ADMIT_LIMIT: usize = 8;
        const ATTEMPTS: usize = 4_000;
        let venue = Arc::new(presets::melbourne_central().build());
        let doors = venue.stats().doors;
        let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
        let labelled = workload::cycling_labels(&objects, KEYWORD);
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects,
                    keywords: labelled,
                    // Tiny cache: admitted requests measure query work,
                    // not cache hits.
                    cache_capacity: 1,
                    admission: AdmissionConfig {
                        max_in_flight: ADMIT_LIMIT,
                        policy: OverloadPolicy::Shed,
                    },
                    ..ShardConfig::default()
                },
            )
            .expect("admission shard");
        let reqs =
            workload::mixed_requests(&venue, N_QUERIES / 5, KNN_K, RANGE_RADIUS, KEYWORD, 0xAD);
        let batch: Vec<(VenueId, QueryRequest)> = reqs.iter().map(|r| (id, r.clone())).collect();
        let stop = AtomicBool::new(false);
        let mut p99s: Vec<f64> = Vec::new();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(service.execute_batch(&batch));
                    // Brief idle window per pass, so the foreground is
                    // contended rather than starved outright.
                    std::thread::sleep(Duration::from_micros(200));
                }
            });
            for _ in 0..reps {
                let mut lat: Vec<f64> = Vec::new();
                for i in 0..ATTEMPTS {
                    let t0 = Instant::now();
                    match service.execute(id, &reqs[i % reqs.len()]) {
                        Ok(resp) => {
                            std::hint::black_box(resp);
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        // Client-style backoff: without it every attempt
                        // lands (and sheds) inside one saturator pass.
                        Err(ServiceError::Overloaded { .. }) => {
                            std::thread::sleep(Duration::from_micros(20));
                        }
                        Err(e) => panic!("unexpected admission error: {e}"),
                    }
                }
                if !lat.is_empty() {
                    lat.sort_by(f64::total_cmp);
                    p99s.push(lat[(lat.len() - 1) * 99 / 100]);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        let stats = service.stats();
        assert!(
            stats.shed > 0,
            "saturation produced no sheds — admission gate not engaged"
        );
        assert!(!p99s.is_empty(), "every foreground attempt was shed");
        p99s.sort_by(f64::total_cmp);
        let us = p99s[p99s.len() / 2];
        println!(
            "== MC admission: p99 {us:9.2} us for admitted queries at budget {ADMIT_LIMIT} ({} shed)",
            stats.shed
        );
        rows.push(Row {
            dataset: "MC".to_string(),
            doors,
            query: "admission",
            // Two OS threads drive this cell: the saturator and the
            // foreground prober.
            threads: 2,
            venues: 1,
            n_queries: ATTEMPTS,
            us_per_query: us,
            prune_rate: None,
        });
    }

    // Durability axis: snapshot save, warm open, and WAL-suffix replay
    // per preset — the restart path a production service leans on
    // (`persist_open` ms vs a cold rebuild is the point of snapshots).
    for (name, spec) in [
        ("MC", presets::melbourne_central()),
        ("MC-2", presets::melbourne_central_2()),
        ("Men", presets::menzies()),
    ] {
        let venue = Arc::new(spec.build());
        let doors = venue.stats().doors;
        let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
        let labelled = workload::cycling_labels(&objects, KEYWORD);
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: objects.clone(),
                    keywords: labelled,
                    ..ShardConfig::default()
                },
            )
            .expect("persist shard");
        // Some churn first, so the snapshot captures a delta-maintained
        // live set (gapped stable ids), not a pristine attach.
        let alt = workload::place_objects(&venue, N_OBJECTS, 0xB0D);
        let churn: Vec<ObjectDelta> = (0..DELTAS_PER_BATCH)
            .map(|i| ObjectDelta::Move {
                id: ObjectId(i as u32),
                to: alt[i % alt.len()],
            })
            .collect();
        service
            .update_objects(id, &churn)
            .expect("pre-persist churn");

        let base =
            std::env::temp_dir().join(format!("vip-bench-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);

        // Save: a volatile service exports (no WAL rotation in the loop).
        let save_dir = base.join("save");
        let us_save = median_us(reps, 1, || {
            std::hint::black_box(service.save_snapshot(&save_dir).expect("save"));
        });

        // Open: warm restart from a snapshot with an empty WAL.
        let open_dir = base.join("open");
        service.save_snapshot(&open_dir).expect("seed open dir");
        let us_open = median_us(reps, 1, || {
            std::hint::black_box(IndoorService::open(&open_dir).expect("open"));
        });

        // Replay: the same snapshot plus a WAL suffix of pure move
        // deltas; per-delta cost is the differenced open time.
        let replay_dir = base.join("replay");
        service.save_snapshot(&replay_dir).expect("seed replay dir");
        {
            let durable = IndoorService::open(&replay_dir).expect("open for suffix");
            for b in 0..REPLAY_BATCHES {
                let deltas: Vec<ObjectDelta> = (0..DELTAS_PER_BATCH)
                    .map(|i| ObjectDelta::Move {
                        id: ObjectId(i as u32),
                        to: alt[(b + i) % alt.len()],
                    })
                    .collect();
                durable.update_objects(id, &deltas).expect("suffix batch");
            }
        }
        let n_deltas = REPLAY_BATCHES * DELTAS_PER_BATCH;
        let us_suffix_open = median_us(reps, 1, || {
            std::hint::black_box(IndoorService::open(&replay_dir).expect("replay open"));
        });
        // Floor at 10ns/delta: the difference of two medians can jitter
        // below zero when replay is nearly free.
        let us_replay = ((us_suffix_open - us_open) / n_deltas as f64).max(0.01);
        let _ = std::fs::remove_dir_all(&base);

        println!(
            "== {name} persist: save {:9.2} us, open {:9.2} us, replay {:6.3} us/delta ({} deltas)",
            us_save, us_open, us_replay, n_deltas
        );
        for (query, n, us) in [
            ("persist_save", 1usize, us_save),
            ("persist_open", 1, us_open),
            ("persist_replay", n_deltas, us_replay),
        ] {
            rows.push(Row {
                dataset: name.to_string(),
                doors,
                query,
                threads: 1,
                venues: 1,
                n_queries: n,
                us_per_query: us,
                prune_rate: None,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"vip_tree_query\",\n");
    let _ = writeln!(
        json,
        "  \"unit\": \"us/query (median of {reps} batch reps)\","
    );
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        let _ = writeln!(json, "  \"generated_unix\": {},", t.as_secs());
    }
    json.push_str("  \"note\": \"batch results are slot-indexed and bit-identical to the serial loop (tests/concurrent_queries.rs); multi-thread speedup saturates at host_cores; mixed cells run shuffled heterogeneous QueryRequest batches; SVC rows measure IndoorService steady-state serving with a warm version-stamped cache over `venues` shards (venue sets differ per count, so their speedup_vs_serial is fixed at 1.0); churn rows are us per ObjectDelta absorbed by update_objects on one venue while a mixed load hammers a second venue concurrently (qps = updates/sec, speedup fixed at 1.0); persist_save/persist_open are us per whole-service snapshot write / warm restart, persist_replay is us per ObjectDelta of WAL-suffix replay (differenced against a snapshot-only open, floored at 0.01); the admission row is the p99 latency (median over reps) of queries ADMITTED through a shed-policy gate of 8 in-flight while a batch saturator floods the same shard — its qps reads as 1e6/p99, not throughput; layout_* cells A/B the implicit slab layout (slab, the default) against the original pointer walk (ptr) at threads=1 — answers are byte-identical across the pair, only layout and walk order differ; prune_rate on kNN cells is the fraction of branch-and-bound candidates rejected by the interpolated lower bound without touching a matrix row\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        // SVC rows serve a *different* venue set per venue count, so no
        // cross-venue-count speedup is comparable; they report 1.0.
        let serial_us = if r.dataset == "SVC" {
            r.us_per_query
        } else {
            rows.iter()
                .find(|x| {
                    x.dataset == r.dataset && x.query == r.query && x.threads == 1 && x.venues == 1
                })
                .map(|x| x.us_per_query)
                .unwrap_or(r.us_per_query)
        };
        let prune = r
            .prune_rate
            .map(|p| format!(", \"prune_rate\": {p:.4}"))
            .unwrap_or_default();
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"doors\": {}, \"query\": \"{}\", \"threads\": {}, \"venues\": {}, \"n_queries\": {}, \"us_per_query\": {:.3}, \"qps\": {:.0}, \"speedup_vs_serial\": {:.3}{}}}",
            r.dataset,
            r.doors,
            r.query,
            r.threads,
            r.venues,
            r.n_queries,
            r.us_per_query,
            1e6 / r.us_per_query,
            serial_us / r.us_per_query,
            prune,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("write BENCH_query.json");
    println!("wrote {out_path}");
}
