//! Query-throughput benchmark: venue preset × query type × thread count.
//!
//! Writes `BENCH_query.json` at the workspace root so successive PRs have
//! a machine-readable latency/throughput trajectory for the serving path
//! (the paper's §4.3 query-cost axis, extended with multi-threaded batch
//! execution). Run with:
//!
//! ```sh
//! cargo run --release -p indoor-bench --bin query_bench -- [--reps N] [--out PATH]
//! ```
//!
//! Each cell batches the whole workload through a `QueryEngine` and
//! reports the **median over reps** of per-query latency (batch wall time
//! divided by batch size). Batches are slot-indexed and deterministic, so
//! every (venue, query) cell measures identical work at every thread
//! count; `host_cores` is recorded because speedup saturates there, and
//! the CI gate (`bench_check`) only hard-fails when it matches the
//! committed baseline's.

use indoor_synth::{presets, workload};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use vip_tree::{KeywordObjects, QueryEngine, VipTree, VipTreeConfig};

const KNN_K: usize = 5;
const RANGE_RADIUS: f64 = 150.0;
const KEYWORD: &str = "cafe";
const N_OBJECTS: usize = 200;
const N_QUERIES: usize = 300;
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Row {
    dataset: &'static str,
    doors: usize,
    query: &'static str,
    threads: usize,
    n_queries: usize,
    us_per_query: f64,
}

fn label_for(i: usize) -> Vec<String> {
    match i % 3 {
        0 => vec![KEYWORD.into()],
        1 => vec!["exit".into(), KEYWORD.into()],
        _ => vec!["exit".into()],
    }
}

/// Median over reps of (batch wall micros / batch size).
///
/// A batch of 300 cheap queries finishes in well under a millisecond, so
/// one raw timing would be scheduler noise; each sample instead loops the
/// batch until it covers ≥ [`MIN_SAMPLE_MS`] of wall time (calibrated
/// from an untimed first run, which doubles as warm-up) — keeping even
/// `--reps 1` CI smoke runs stable enough for the 2.5x regression gate.
const MIN_SAMPLE_MS: f64 = 20.0;

fn median_us(reps: usize, n: usize, mut run: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    run();
    let once_ms = (t0.elapsed().as_secs_f64() * 1e3).max(1e-6);
    let iters = ((MIN_SAMPLE_MS / once_ms).ceil() as usize).clamp(1, 1_000);
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                run();
            }
            t0.elapsed().as_secs_f64() * 1e6 / (n * iters) as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut reps = 5usize;
    let mut out_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => reps = it.next().expect("missing reps").parse().expect("bad reps"),
            "--out" => out_path = Some(it.next().expect("missing path")),
            "--help" | "-h" => {
                println!("usage: query_bench [--reps N] [--out PATH]");
                return;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    let reps = reps.max(1);
    let out_path = out_path
        .unwrap_or_else(|| format!("{}/../../BENCH_query.json", env!("CARGO_MANIFEST_DIR")));

    let datasets = [
        ("MC", presets::melbourne_central()),
        ("MC-2", presets::melbourne_central_2()),
        ("Men", presets::menzies()),
    ];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut rows: Vec<Row> = Vec::new();
    for (name, spec) in datasets {
        let venue = Arc::new(spec.build());
        let doors = venue.stats().doors;
        let objects = workload::place_objects(&venue, N_OBJECTS, 0xB0B);
        let labelled: Vec<_> = objects
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, label_for(i)))
            .collect();
        let mut tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).expect("build");
        tree.attach_objects(&objects);
        let kw = Arc::new(KeywordObjects::build(tree.ip_tree(), &labelled));
        let tree = Arc::new(tree);

        let points = workload::query_points(&venue, N_QUERIES, 0x9E);
        let pairs = workload::query_pairs(&venue, N_QUERIES, 0x9F);
        println!("== {name}: {doors} doors, {N_QUERIES} queries per type");

        for &threads in &THREAD_COUNTS {
            let engine = QueryEngine::for_vip(tree.clone())
                .with_threads(threads)
                .with_keywords(kw.clone());
            // Warm-up pass: pool scratches/engines allocate outside the
            // timed region, like a long-running server's steady state.
            std::hint::black_box(engine.batch_knn(&points[..8.min(points.len())], KNN_K));

            type Cell<'a> = (&'static str, Box<dyn FnMut() + 'a>);
            let cells: [Cell; 4] = [
                (
                    "knn",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_knn(&points, KNN_K));
                    }),
                ),
                (
                    "range",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_range(&points, RANGE_RADIUS));
                    }),
                ),
                (
                    "keyword",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_knn_keyword(&points, KNN_K, KEYWORD));
                    }),
                ),
                (
                    "shortest_path",
                    Box::new(|| {
                        std::hint::black_box(engine.batch_shortest_path(&pairs));
                    }),
                ),
            ];
            for (query, mut run) in cells {
                let us = median_us(reps, N_QUERIES, &mut *run);
                println!(
                    "   {query:>13} threads={threads}: {us:9.2} us/query  ({:9.0} q/s)",
                    1e6 / us
                );
                rows.push(Row {
                    dataset: name,
                    doors,
                    query,
                    threads,
                    n_queries: N_QUERIES,
                    us_per_query: us,
                });
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"vip_tree_query\",\n");
    let _ = writeln!(
        json,
        "  \"unit\": \"us/query (median of {reps} batch reps)\","
    );
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
        let _ = writeln!(json, "  \"generated_unix\": {},", t.as_secs());
    }
    json.push_str("  \"note\": \"batch results are slot-indexed and bit-identical to the serial loop (tests/concurrent_queries.rs); multi-thread speedup saturates at host_cores\",\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let serial_us = rows
            .iter()
            .find(|x| x.dataset == r.dataset && x.query == r.query && x.threads == 1)
            .map(|x| x.us_per_query)
            .unwrap_or(r.us_per_query);
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"doors\": {}, \"query\": \"{}\", \"threads\": {}, \"n_queries\": {}, \"us_per_query\": {:.3}, \"qps\": {:.0}, \"speedup_vs_serial\": {:.3}}}",
            r.dataset,
            r.doors,
            r.query,
            r.threads,
            r.n_queries,
            r.us_per_query,
            1e6 / r.us_per_query,
            serial_us / r.us_per_query,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, json).expect("write BENCH_query.json");
    println!("wrote {out_path}");
}
