//! The shared regression-gate engine behind `bench_check` and
//! `scenario_check`.
//!
//! Both CI gates do the same thing — compare a freshly measured set of
//! keyed metric cells against a committed baseline and grade each cell —
//! with the same policy:
//!
//! * **baseline cell missing from the fresh run** → hard failure with a
//!   refresh hint. A renamed or deleted cell is schema drift; silently
//!   passing it would leave a stale baseline gating nothing.
//! * **ratio above threshold** → hard failure when the two runs are
//!   comparable, a warning (with the stated reason) when they are not
//!   (e.g. different `host_cores` — thread-scaling numbers from
//!   different hardware cannot be compared).
//! * **fresh cell missing from the baseline** → warning only. A new
//!   workload cannot be gated before a baseline containing it is
//!   committed; once it lands, the cell joins the hard-fail set.
//! * **baseline below the noise floor** → warning only. A baseline cell
//!   clamped at its bench's measurement floor (differenced metrics
//!   jitter to ~zero) turns every finite fresh value into an unbounded
//!   ratio; such cells are reported but never ratio-gated.
//!
//! The binaries keep their own JSON schemas and map rows into
//! [`Cell`]s; everything after that — matching, grading, output lines,
//! exit decision — is this module, so a policy fix lands in both gates
//! at once and is unit-testable without spawning processes.

/// One keyed metric cell: `key` identifies the workload cell across
/// runs, `value` is the metric under comparison (lower is better —
/// microseconds of latency in both current gates).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub key: String,
    pub value: f64,
}

impl Cell {
    pub fn new(key: impl Into<String>, value: f64) -> Cell {
        Cell {
            key: key.into(),
            value,
        }
    }
}

/// Gate policy knobs.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Fresh/baseline ratio above which a comparable cell fails.
    pub threshold: f64,
    /// Whether ratio violations are hard failures (`false` downgrades
    /// them to warnings with `incomparable_reason` appended).
    pub comparable: bool,
    /// Why ratio violations are not failures when `comparable` is false.
    pub incomparable_reason: String,
    /// Appended to the missing-cell failure: how to refresh the
    /// committed baseline when a cell was renamed or removed on purpose.
    pub refresh_hint: String,
    /// Baseline values below this are **not ratio-gated** (warn only): a
    /// baseline at or under its bench's clamp floor — e.g. a differenced
    /// metric that jittered to ~zero when the baseline was committed —
    /// makes every finite fresh measurement an unbounded "regression".
    /// `0.0` disables the floor.
    pub noise_floor: f64,
}

/// The graded outcome: printable lines plus the failure/warning tally.
/// The process exit decision is `failures > 0`.
#[derive(Debug, Default)]
pub struct Outcome {
    pub lines: Vec<String>,
    pub failures: usize,
    pub warnings: usize,
}

/// Grade `fresh` against `baseline` under `cfg` (see the module docs for
/// the policy).
pub fn compare(baseline: &[Cell], fresh: &[Cell], cfg: &GateConfig) -> Outcome {
    let mut out = Outcome::default();
    for base in baseline {
        let Some(now) = fresh.iter().find(|c| c.key == base.key) else {
            out.failures += 1;
            out.lines.push(format!(
                "FAIL: baseline cell {} missing from the fresh run — stale baseline; \
                 if the cell was renamed or removed intentionally, {}",
                base.key, cfg.refresh_hint
            ));
            continue;
        };
        if base.value < cfg.noise_floor {
            out.warnings += 1;
            out.lines.push(format!(
                "warn  {} base {:.2} below the {:.2} noise floor — not ratio-gated (fresh {:.2})",
                base.key, base.value, cfg.noise_floor, now.value
            ));
            continue;
        }
        let ratio = now.value / base.value;
        if ratio <= cfg.threshold {
            out.lines.push(format!(
                "ok    {} base {:.2} fresh {:.2} ({ratio:.2}x)",
                base.key, base.value, now.value
            ));
        } else if cfg.comparable {
            out.failures += 1;
            out.lines.push(format!(
                "FAIL  {} base {:.2} fresh {:.2} ({ratio:.2}x > {:.2}x)",
                base.key, base.value, now.value, cfg.threshold
            ));
        } else {
            out.warnings += 1;
            out.lines.push(format!(
                "warn  {} base {:.2} fresh {:.2} ({ratio:.2}x > {:.2}x; not a failure: {})",
                base.key, base.value, now.value, cfg.threshold, cfg.incomparable_reason
            ));
        }
    }
    for now in fresh {
        if !baseline.iter().any(|c| c.key == now.key) {
            out.warnings += 1;
            out.lines.push(format!(
                "WARN: new cell {} not in the baseline — ungated until the refreshed \
                 baseline is committed; {}",
                now.key, cfg.refresh_hint
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(comparable: bool) -> GateConfig {
        GateConfig {
            threshold: 2.0,
            comparable,
            incomparable_reason: "host_cores differ".into(),
            refresh_hint: "rerun the bench and commit the refreshed JSON".into(),
            noise_floor: 0.0,
        }
    }

    #[test]
    fn matching_cells_within_threshold_pass() {
        let base = [Cell::new("a", 10.0), Cell::new("b", 5.0)];
        let fresh = [Cell::new("a", 12.0), Cell::new("b", 9.9)];
        let out = compare(&base, &fresh, &cfg(true));
        assert_eq!((out.failures, out.warnings), (0, 0));
        assert!(out.lines.iter().all(|l| l.starts_with("ok")));
    }

    #[test]
    fn regression_fails_only_when_comparable() {
        let base = [Cell::new("a", 10.0)];
        let fresh = [Cell::new("a", 30.0)];
        let hard = compare(&base, &fresh, &cfg(true));
        assert_eq!((hard.failures, hard.warnings), (1, 0));
        let soft = compare(&base, &fresh, &cfg(false));
        assert_eq!((soft.failures, soft.warnings), (0, 1));
        assert!(soft.lines[0].contains("host_cores differ"));
    }

    #[test]
    fn stale_baseline_cell_is_a_hard_error_with_refresh_hint() {
        let base = [Cell::new("gone", 10.0)];
        let out = compare(&base, &[], &cfg(true));
        assert_eq!(out.failures, 1);
        assert!(out.lines[0].contains("stale baseline"));
        assert!(out.lines[0].contains("rerun the bench"));
        // Incomparable hardware does NOT excuse a missing cell: schema
        // drift is host-independent.
        let out = compare(&base, &[], &cfg(false));
        assert_eq!(out.failures, 1);
    }

    #[test]
    fn floored_baseline_warns_instead_of_ratio_gating() {
        // A baseline clamped at a bench's 0.01 measurement floor must
        // not turn an ordinary fresh measurement into a 900x "failure".
        let base = [Cell::new("diffed", 0.01), Cell::new("real", 10.0)];
        let fresh = [Cell::new("diffed", 9.53), Cell::new("real", 11.0)];
        let mut c = cfg(true);
        c.noise_floor = 0.05;
        let out = compare(&base, &fresh, &c);
        assert_eq!((out.failures, out.warnings), (0, 1));
        assert!(out.lines[0].contains("noise floor"), "{:?}", out.lines);
        // Disabled floor: the same comparison is a hard failure again.
        c.noise_floor = 0.0;
        assert_eq!(compare(&base, &fresh, &c).failures, 1);
    }

    #[test]
    fn fresh_only_cell_warns_until_baseline_refresh() {
        let fresh = [Cell::new("new", 1.0)];
        let out = compare(&[], &fresh, &cfg(true));
        assert_eq!((out.failures, out.warnings), (0, 1));
        assert!(out.lines[0].contains("ungated"));
        // The warn line tells the operator *how* to land the baseline —
        // the same verbatim refresh command the stale-cell failure prints.
        assert!(out.lines[0].contains("rerun the bench and commit the refreshed JSON"));
    }
}
