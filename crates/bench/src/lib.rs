//! Shared harness for regenerating the paper's tables and figures.
//!
//! The binary `experiments` prints paper-style rows; the criterion benches
//! under `benches/` provide statistically robust micro-measurements of the
//! same query paths. Both are driven by the helpers here: dataset
//! selection ([`datasets`]), a uniform handle over all seven competitors
//! ([`AnyIndex`]), and time-budgeted query loops ([`time_queries`]).

pub mod gate;

use indoor_baselines::{DistAw, DistAwPlus, DistMx};
use indoor_model::{
    AnswerRequest, IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries, QueryRequest,
    QueryResponse, Venue,
};
use indoor_synth::presets;
use indoor_synth::CampusSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vip_tree::{IpTree, VipTree, VipTreeConfig};

/// Paper-faithful limit: "The distance matrix used by the state-of-the-art
/// indoor technique cannot be built on the venues larger than Men-2"
/// (§4.1). Men-2 has 2,738 doors; we cut off a little above.
pub const DISTMX_MAX_DOORS: usize = 3_000;

/// Which dataset suite to run (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// MC, MC-2, Men, Men-2 plus the reduced CL-lite campuses — finishes
    /// everywhere in minutes.
    Small,
    /// The full Table 2 list including the 71-building Clayton campus.
    Paper,
}

/// `(name, spec)` pairs for the chosen scale.
pub fn datasets(scale: Scale) -> Vec<(&'static str, CampusSpec)> {
    match scale {
        Scale::Small => presets::small_scale_datasets(),
        Scale::Paper => presets::table2_datasets(),
    }
}

/// A uniform handle over every competitor.
pub enum AnyIndex {
    Vip(VipTree),
    Ip(IpTree),
    Mx(Arc<DistMx>),
    MxUnopt(DistMx),
    Aw(DistAw),
    AwPlus(DistAwPlus),
    G(gtree::GTree),
    R(road::Road),
}

impl AnyIndex {
    pub fn name(&self) -> &'static str {
        match self {
            AnyIndex::Vip(x) => x.name(),
            AnyIndex::Ip(x) => x.name(),
            AnyIndex::Mx(x) => x.name(),
            AnyIndex::MxUnopt(x) => x.name(),
            AnyIndex::Aw(x) => x.name(),
            AnyIndex::AwPlus(x) => x.name(),
            AnyIndex::G(x) => x.name(),
            AnyIndex::R(x) => x.name(),
        }
    }

    pub fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        match self {
            AnyIndex::Vip(x) => x.shortest_distance(s, t),
            AnyIndex::Ip(x) => x.shortest_distance(s, t),
            AnyIndex::Mx(x) => x.shortest_distance(s, t),
            AnyIndex::MxUnopt(x) => x.shortest_distance(s, t),
            AnyIndex::Aw(x) => x.shortest_distance(s, t),
            AnyIndex::AwPlus(x) => x.shortest_distance(s, t),
            AnyIndex::G(x) => x.shortest_distance(s, t),
            AnyIndex::R(x) => x.shortest_distance(s, t),
        }
    }

    pub fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        match self {
            AnyIndex::Vip(x) => x.shortest_path(s, t),
            AnyIndex::Ip(x) => x.shortest_path(s, t),
            AnyIndex::Mx(x) => x.shortest_path(s, t),
            AnyIndex::MxUnopt(x) => x.shortest_path(s, t),
            AnyIndex::Aw(x) => x.shortest_path(s, t),
            AnyIndex::AwPlus(x) => x.shortest_path(s, t),
            AnyIndex::G(x) => x.shortest_path(s, t),
            AnyIndex::R(x) => x.shortest_path(s, t),
        }
    }

    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        match self {
            AnyIndex::Vip(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::Ip(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::Mx(x) => ObjectQueries::knn(&**x, q, k),
            AnyIndex::MxUnopt(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::Aw(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::AwPlus(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::G(x) => ObjectQueries::knn(x, q, k),
            AnyIndex::R(x) => ObjectQueries::knn(x, q, k),
        }
    }

    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        match self {
            AnyIndex::Vip(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::Ip(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::Mx(x) => ObjectQueries::range(&**x, q, radius),
            AnyIndex::MxUnopt(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::Aw(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::AwPlus(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::G(x) => ObjectQueries::range(x, q, radius),
            AnyIndex::R(x) => ObjectQueries::range(x, q, radius),
        }
    }

    /// Answer one typed request through the [`AnswerRequest`] surface —
    /// the uniform entry point the scenario lab replays event streams
    /// through. Plain indexes answer `KnnKeyword` with an empty result
    /// (only the service's keyword shard carries labels).
    pub fn answer(&self, req: &QueryRequest) -> QueryResponse {
        match self {
            AnyIndex::Vip(x) => x.answer(req),
            AnyIndex::Ip(x) => x.answer(req),
            AnyIndex::Mx(x) => (**x).answer(req),
            AnyIndex::MxUnopt(x) => x.answer(req),
            AnyIndex::Aw(x) => x.answer(req),
            AnyIndex::AwPlus(x) => x.answer(req),
            AnyIndex::G(x) => x.answer(req),
            AnyIndex::R(x) => x.answer(req),
        }
    }

    pub fn index_size_bytes(&self) -> usize {
        match self {
            AnyIndex::Vip(x) => x.index_size_bytes(),
            AnyIndex::Ip(x) => x.index_size_bytes(),
            AnyIndex::Mx(x) => x.index_size_bytes(),
            AnyIndex::MxUnopt(x) => x.index_size_bytes(),
            AnyIndex::Aw(x) => x.index_size_bytes(),
            AnyIndex::AwPlus(x) => x.index_size_bytes(),
            AnyIndex::G(x) => x.index_size_bytes(),
            AnyIndex::R(x) => x.index_size_bytes(),
        }
    }
}

/// Options for [`build_suite`]. DistMx (and DistAw++, which depends on it)
/// is skipped beyond [`DISTMX_MAX_DOORS`].
#[derive(Default)]
pub struct SuiteOptions {
    pub with_unoptimised_mx: bool,
    pub with_distaw_plus: bool,
    pub objects: Option<Vec<IndoorPoint>>,
}

/// Build every applicable competitor for `venue`, returning
/// `(index, build_time)` pairs.
pub fn build_suite(venue: &Arc<Venue>, opts: &SuiteOptions) -> Vec<(AnyIndex, Duration)> {
    let mut out: Vec<(AnyIndex, Duration)> = Vec::new();
    let cfg = VipTreeConfig::default();

    let t0 = Instant::now();
    let vip = VipTree::build(venue.clone(), &cfg).expect("vip build");
    let t_vip = t0.elapsed();

    let t0 = Instant::now();
    let ip = IpTree::build(venue.clone(), &cfg).expect("ip build");
    let t_ip = t0.elapsed();

    let t0 = Instant::now();
    let mut aw = DistAw::new(venue.clone());
    let t_aw = t0.elapsed();

    let t0 = Instant::now();
    let mut g = gtree::GTree::build(venue.clone(), &gtree::GTreeConfig::default());
    let t_g = t0.elapsed();

    let t0 = Instant::now();
    let mut r = road::Road::build(venue.clone(), &road::RoadConfig::default());
    let t_r = t0.elapsed();

    let mx = if venue.num_doors() <= DISTMX_MAX_DOORS {
        let t0 = Instant::now();
        let mut mx = DistMx::build(venue.clone());
        if let Some(objs) = &opts.objects {
            mx.attach_objects(objs);
        }
        Some((Arc::new(mx), t0.elapsed()))
    } else {
        None
    };

    if let Some(objs) = &opts.objects {
        vip.attach_objects(objs);
        ip.attach_objects(objs);
        aw.attach_objects(objs);
        g.attach_objects(objs);
        r.attach_objects(objs);
    }

    out.push((AnyIndex::Vip(vip), t_vip));
    out.push((AnyIndex::Ip(ip), t_ip));
    out.push((AnyIndex::Aw(aw), t_aw));
    out.push((AnyIndex::G(g), t_g));
    out.push((AnyIndex::R(r), t_r));
    if let Some((mx, t_mx)) = mx {
        if opts.with_distaw_plus {
            let t0 = Instant::now();
            let mut awp = DistAwPlus::new(venue.clone(), mx.clone());
            if let Some(objs) = &opts.objects {
                awp.attach_objects(objs);
            }
            out.push((AnyIndex::AwPlus(awp), t_mx + t0.elapsed()));
        }
        if opts.with_unoptimised_mx {
            let t0 = Instant::now();
            let mut mxu = DistMx::build(venue.clone()).without_optimisation();
            if let Some(objs) = &opts.objects {
                mxu.attach_objects(objs);
            }
            out.push((AnyIndex::MxUnopt(mxu), t0.elapsed()));
        }
        out.push((AnyIndex::Mx(mx), t_mx));
    }
    out
}

/// Mean microseconds per call of `f` over up to `n` workload items,
/// stopping early after `budget` so slow baselines cannot stall a figure.
/// Returns `(mean_us, executed)`.
pub fn time_queries<T>(
    items: &[T],
    n: usize,
    budget: Duration,
    mut f: impl FnMut(&T),
) -> (f64, usize) {
    let n = n.min(items.len()).max(1);
    let start = Instant::now();
    let mut executed = 0usize;
    for item in items.iter().take(n) {
        f(item);
        executed += 1;
        if start.elapsed() > budget && executed >= 10 {
            break;
        }
    }
    let total = start.elapsed();
    (total.as_micros() as f64 / executed as f64, executed)
}

/// Pretty-print helpers for harness tables.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:>10.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:>9.1}ms", us / 1e3)
    } else {
        format!("{:>9.1}us", us)
    }
}

pub fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:>8.2}GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:>8.1}MB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:>8.1}KB", b as f64 / (1u64 << 10) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_synth::{random_venue, workload};

    #[test]
    fn suite_builds_and_agrees_on_small_venue() {
        let venue = Arc::new(random_venue(77));
        let objects = workload::place_objects(&venue, 10, 3);
        let suite = build_suite(
            &venue,
            &SuiteOptions {
                with_unoptimised_mx: true,
                with_distaw_plus: true,
                objects: Some(objects),
            },
        );
        assert!(
            suite.len() >= 7,
            "expected all competitors, got {}",
            suite.len()
        );
        let pairs = workload::query_pairs(&venue, 10, 5);
        for (s, t) in &pairs {
            let dists: Vec<Option<f64>> = suite
                .iter()
                .map(|(ix, _)| ix.shortest_distance(s, t))
                .collect();
            for w in dists.windows(2) {
                match (w[0], w[1]) {
                    (Some(a), Some(b)) => {
                        assert!((a - b).abs() < 1e-6 * a.max(1.0), "disagreement: {dists:?}")
                    }
                    (None, None) => {}
                    _ => panic!("reachability disagreement: {dists:?}"),
                }
            }
        }
        // kNN agreement across all indexes.
        for q in workload::query_points(&venue, 5, 6) {
            let results: Vec<Vec<(indoor_model::ObjectId, f64)>> =
                suite.iter().map(|(ix, _)| ix.knn(&q, 3)).collect();
            for w in results.windows(2) {
                assert_eq!(w[0].len(), w[1].len());
                for (a, b) in w[0].iter().zip(&w[1]) {
                    assert!((a.1 - b.1).abs() < 1e-6 * a.1.max(1.0));
                }
            }
        }
    }

    #[test]
    fn fmt_helpers() {
        assert!(fmt_us(12.3).contains("us"));
        assert!(fmt_us(12_300.0).contains("ms"));
        assert!(fmt_us(12_300_000.0).contains('s'));
        assert!(fmt_bytes(500).contains("KB"));
        assert!(fmt_bytes(5 << 20).contains("MB"));
    }
}
