//! Algorithm 2 (`getDistances`) and Algorithm 3 (shortest distance) for
//! the IP-tree (§3.1.1).
//!
//! The ascent starts at the source's leaf, computing the distance from the
//! point to every access door of the leaf through the *superior doors* of
//! its partition (Definition 2), then climbs parents: the distance to each
//! access door of the parent is the minimum over the child's access doors
//! of `dist(s, child_door) + matrix(child_door, parent_door)` (Lemma 1).
//! Every step also records which child door achieved the minimum, so the
//! shortest-path algorithm can replay the chain (the "thick arrows" of
//! Fig. 5(b)).

use crate::tree::{IpTree, NodeIdx};
use indoor_graph::NO_VERTEX;
use indoor_model::{DoorId, IndoorPath, IndoorPoint, QueryStats};

/// How an access-door distance was obtained, for path replay.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Provenance {
    /// Leaf level: entered the tree via this door of the source partition
    /// (a superior door, possibly the access door itself).
    Source { via: DoorId },
    /// Minimum over the previous step's access doors; `idx` indexes that
    /// step's access-door list. Covers the paper's "marked" doors too: an
    /// access door inherited from the child is its own argmin with a
    /// zero-cost matrix hop.
    Child { idx: u16 },
}

/// Distances from the query point to the access doors of one node.
#[derive(Debug, Clone)]
pub(crate) struct AscentStep {
    pub node: NodeIdx,
    /// Aligned with `node.access_doors`.
    pub dists: Vec<f64>,
    pub prov: Vec<Provenance>,
}

/// The full ascent from `Leaf(p)` up to (and including) `target`.
///
/// The step buffers — including every step's `dists`/`prov` vectors —
/// survive [`Ascent::clear`], so a pooled [`crate::QueryScratch`] refills
/// an ascent query after query without reallocating.
#[derive(Debug, Clone, Default)]
pub(crate) struct Ascent {
    steps: Vec<AscentStep>,
    /// Number of steps live for the current query; retired entries beyond
    /// it keep their capacity for reuse.
    live: usize,
}

impl Ascent {
    /// Forget the recorded steps, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.live = 0;
    }

    /// The live steps, leaf (level 1) first.
    #[inline]
    pub fn steps(&self) -> &[AscentStep] {
        &self.steps[..self.live]
    }

    /// Start a new step for `node`, reusing a retired slot's buffers when
    /// one is available. Returns the (empty) step to fill.
    pub(crate) fn push_step(&mut self, node: NodeIdx) -> &mut AscentStep {
        if self.live == self.steps.len() {
            self.steps.push(AscentStep {
                node,
                dists: Vec::new(),
                prov: Vec::new(),
            });
        } else {
            let s = &mut self.steps[self.live];
            s.node = node;
            s.dists.clear();
            s.prov.clear();
        }
        self.live += 1;
        &mut self.steps[self.live - 1]
    }

    /// As [`Ascent::push_step`], additionally handing back the previous
    /// step so parent distances can be minimised over the child's without
    /// fighting the borrow checker.
    pub(crate) fn push_step_with_prev(&mut self, node: NodeIdx) -> (&mut AscentStep, &AscentStep) {
        debug_assert!(self.live >= 1, "push_step_with_prev needs a leaf step");
        self.push_step(node);
        let (prev, cur) = self.steps.split_at_mut(self.live - 1);
        (&mut cur[0], &prev[self.live - 2])
    }

    pub fn last(&self) -> &AscentStep {
        self.steps()
            .last()
            .expect("ascent has at least the leaf step")
    }

    /// The step for `node` if it lies on the ascent's root path, in O(1).
    ///
    /// Steps run from the leaf (level 1) upward one level at a time, so
    /// `steps` *is* a level-indexed dense array: the step for a node at
    /// level `l` can only sit at `steps[l - 1]`. This replaces the
    /// `HashMap<NodeIdx, &AscentStep>` the branch-and-bound queries used
    /// to build per query.
    #[inline]
    pub fn step_for(&self, tree: &IpTree, node: NodeIdx) -> Option<&AscentStep> {
        let level = tree.node(node).level as usize;
        debug_assert!(level >= 1);
        self.steps().get(level - 1).filter(|s| s.node == node)
    }

    /// Whether `node` lies on the ascent's root path, in O(1).
    #[inline]
    pub fn on_path(&self, tree: &IpTree, node: NodeIdx) -> bool {
        self.step_for(tree, node).is_some()
    }
}

impl IpTree {
    /// Distance from a point to every door of its own partition's doors is
    /// direct; to the leaf's access doors it goes through superior doors
    /// (Eq. 1 restricted per Definition 2). Appends the step to `asc`.
    fn leaf_step_into(&self, p: &IndoorPoint, leaf: NodeIdx, asc: &mut Ascent, slab: bool) {
        let venue = &*self.venue;
        let node = self.node(leaf);
        let part_doors = &venue.partition(p.partition).doors;
        let sup = self.superior_doors(p.partition);

        if slab {
            // Slab walk: one contiguous leaf-matrix row per superior door
            // (leaf columns *are* the access doors, so the column ordinal
            // is the access-door index), with `p`'s distance to that door
            // hoisted out of the column sweep. Visiting superior doors in
            // the same order as the pointer walk's inner loop keeps the
            // first-strict-minimum provenance — and therefore the answer
            // bytes — identical; local access doors are overwritten with
            // their direct distance afterwards, exactly as the pointer
            // walk never routes them through a superior door.
            let step = asc.push_step(leaf);
            let n_ads = node.access_doors.len();
            step.dists.resize(n_ads, f64::INFINITY);
            step.prov
                .resize(n_ads, Provenance::Source { via: DoorId(0) });
            for &u in sup {
                let row_u = self.slabs.leaf_row_of(&self.door_leaves, leaf, u.0);
                let du = p.distance_to_door(venue, u);
                let row = self.slabs.row(leaf, row_u as usize);
                for (ai, d) in step.dists.iter_mut().enumerate() {
                    let cand = du + row[ai];
                    if cand < *d {
                        *d = cand;
                        step.prov[ai] = Provenance::Source { via: u };
                    }
                }
            }
            for (ai, &a) in node.access_doors.iter().enumerate() {
                if part_doors.binary_search(&a).is_ok() {
                    step.dists[ai] = p.distance_to_door(venue, a);
                    step.prov[ai] = Provenance::Source { via: a };
                }
            }
            return;
        }

        let step = asc.push_step(leaf);
        for &a in &node.access_doors {
            if part_doors.binary_search(&a).is_ok() {
                // Local access door: trivially direct.
                step.dists.push(p.distance_to_door(venue, a));
                step.prov.push(Provenance::Source { via: a });
                continue;
            }
            let col_a = node
                .matrix
                .col_index(a)
                .expect("access door must be a matrix column");
            let mut best = f64::INFINITY;
            let mut best_via = DoorId(0);
            for &u in sup {
                let Some(row_u) = node.matrix.row_index(u) else {
                    continue;
                };
                let cand = p.distance_to_door(venue, u) + node.matrix.at(row_u, col_a);
                if cand < best {
                    best = cand;
                    best_via = u;
                }
            }
            step.dists.push(best);
            step.prov.push(Provenance::Source { via: best_via });
        }
    }

    /// Algorithm 2: distances from `p` to all access doors of every node
    /// on the path from `Leaf(p)` up to `target` (inclusive), written into
    /// a reusable [`Ascent`] buffer.
    pub(crate) fn ascend_into(&self, p: &IndoorPoint, target: NodeIdx, asc: &mut Ascent) {
        asc.clear();
        let slab = self.uses_hot_layout();
        let leaf = self.leaf_of(p.partition);
        self.leaf_step_into(p, leaf, asc, slab);
        let mut cur = leaf;
        while cur != target {
            let parent = self.node(cur).parent;
            debug_assert_ne!(parent, crate::NO_NODE, "target not an ancestor");

            if slab {
                // Row-major sweep over the parent slab: one contiguous row
                // per child access door (precomputed kid-column run; rows
                // double as columns for inner matrices), reading the
                // parent's own access-door columns through the `own_cols`
                // run instead of binary-searching door ids. Same
                // candidates, same visit order per column, so the
                // first-strict-minimum argmin — and every f64 — matches
                // the pointer walk bit for bit.
                let (step, prev) = asc.push_step_with_prev(parent);
                let own = self.slabs.own_cols_of(parent);
                let kid = self.slabs.kid_cols_of(cur);
                step.dists.resize(own.len(), f64::INFINITY);
                step.prov.resize(own.len(), Provenance::Child { idx: 0 });
                for (bi, &krow) in kid.iter().enumerate() {
                    let pd = prev.dists[bi];
                    let row = self.slabs.row(parent, krow as usize);
                    for (ai, out) in step.dists.iter_mut().enumerate() {
                        let cand = pd + row[own[ai] as usize];
                        if cand < *out {
                            *out = cand;
                            step.prov[ai] = Provenance::Child { idx: bi as u16 };
                        }
                    }
                }
                cur = parent;
                continue;
            }

            let pnode = self.node(parent);
            let child_ads = &self.node(cur).access_doors;

            let (step, prev) = asc.push_step_with_prev(parent);
            for &a in &pnode.access_doors {
                // a ∈ B(parent) always; each child access door too.
                let col = pnode
                    .matrix
                    .col_index(a)
                    .expect("parent access door in parent matrix");
                let mut best = f64::INFINITY;
                let mut best_idx = 0u16;
                for (bi, &b) in child_ads.iter().enumerate() {
                    let row = pnode
                        .matrix
                        .row_index(b)
                        .expect("child access door in parent matrix");
                    let cand = prev.dists[bi] + pnode.matrix.at(row, col);
                    if cand < best {
                        best = cand;
                        best_idx = bi as u16;
                    }
                }
                step.dists.push(best);
                step.prov.push(Provenance::Child { idx: best_idx });
            }
            cur = parent;
        }
    }

    /// As [`IpTree::ascend_into`] with a freshly allocated ascent.
    #[cfg(test)]
    pub(crate) fn ascend(&self, p: &IndoorPoint, target: NodeIdx) -> Ascent {
        let mut asc = Ascent::default();
        self.ascend_into(p, target, &mut asc);
        asc
    }

    /// Same-leaf (or same-partition) query: D2D expansion with virtual
    /// endpoints, plus the direct in-partition candidate (§3.1.1).
    /// Returns `(distance, door_sequence)`.
    pub(crate) fn same_leaf_route(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<(f64, Vec<DoorId>)> {
        let venue = &*self.venue;
        let direct = s.direct_distance(venue, t);
        let s_seeds = s.door_seeds(venue);
        let t_seeds: Vec<(u32, f64)> = t.door_seeds(venue);

        let mut engine = self.engines.checkout();
        let via = engine.point_to_point(venue.d2d(), &s_seeds, &t_seeds);

        match (direct, via) {
            (Some(d), Some((vd, _))) if d <= vd => Some((d, Vec::new())),
            (Some(d), None) => Some((d, Vec::new())),
            (_, Some((vd, exit_door))) => {
                // Reconstruct s's door .. t's door from parent pointers.
                let mut seq: Vec<DoorId> = Vec::new();
                let mut cur = exit_door;
                loop {
                    seq.push(DoorId(cur));
                    match engine.parent(cur) {
                        Some(p) if p != NO_VERTEX => cur = p,
                        _ => break,
                    }
                }
                seq.reverse();
                Some((vd, seq))
            }
            (None, None) => None,
        }
    }

    /// Algorithm 3 / §3.1: indoor shortest distance between two points.
    pub fn shortest_distance_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_with_stats(s, t, &mut QueryStats::default())
    }

    /// As [`Self::shortest_distance_points`], accumulating workload
    /// counters (door pairs considered; Fig. 9(a)).
    pub fn shortest_distance_with_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        let mut scratch = self.scratch.checkout();
        self.shortest_distance_stats(s, t, &mut scratch, stats)
    }

    /// As [`Self::shortest_distance_points`] with caller-owned scratch
    /// state — the zero-allocation path batch serving uses.
    pub fn shortest_distance_in(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
    ) -> Option<f64> {
        self.shortest_distance_stats(s, t, scratch, &mut QueryStats::default())
    }

    pub(crate) fn shortest_distance_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        stats.queries += 1;
        let leaf_s = self.leaf_of(s.partition);
        let leaf_t = self.leaf_of(t.partition);
        if leaf_s == leaf_t {
            return self.same_leaf_route(s, t).map(|(d, _)| d);
        }
        stats.door_pairs += (self.superior_doors(s.partition).len()
            * self.superior_doors(t.partition).len()) as u64;

        let crate::QueryScratch { asc_s, asc_t, .. } = scratch;
        let (d, _) = self.cross_leaf_distance_into(s, t, leaf_s, leaf_t, asc_s, asc_t)?;
        Some(d)
    }

    /// Cross-leaf distance plus the minimising access-door pair; the two
    /// ascents are left in the caller's buffers for path recovery. `None`
    /// when unreachable.
    pub(crate) fn cross_leaf_distance_into(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        leaf_s: NodeIdx,
        leaf_t: NodeIdx,
        asc_s: &mut Ascent,
        asc_t: &mut Ascent,
    ) -> Option<(f64, (usize, usize))> {
        let lca = self.lca(leaf_s, leaf_t);
        let ns = self.child_towards(lca, leaf_s);
        let nt = self.child_towards(lca, leaf_t);
        self.ascend_into(s, ns, asc_s);
        self.ascend_into(t, nt, asc_t);
        let (asc_s, asc_t) = (&*asc_s, &*asc_t);
        let lca_node = self.node(lca);

        let ads = &self.node(ns).access_doors;
        let adt = &self.node(nt).access_doors;
        let ds = &asc_s.last().dists;
        let dt = &asc_t.last().dists;

        let mut best = f64::INFINITY;
        let mut best_pair = (usize::MAX, usize::MAX);

        if self.uses_hot_layout() {
            // Slab walk with the envelope early-exit: any pairing through
            // row `i` costs at least `ds[i] + env_min(lca) + min(dt)`, so a
            // row whose floor already reaches the incumbent is skipped
            // without touching the matrix. The floor is admissible and the
            // skip condition is `>=` while updates require strictly `<`,
            // so the surviving minimum and argmin pair are exactly the
            // pointer walk's.
            let kid_s = self.slabs.kid_cols_of(ns);
            let kid_t = self.slabs.kid_cols_of(nt);
            let (env_min, _) = self.slabs.envelope(lca);
            let dt_min = dt
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(f64::INFINITY, f64::min);
            for (i, &dsi) in ds.iter().enumerate() {
                if !dsi.is_finite() || dsi + env_min + dt_min >= best {
                    continue;
                }
                let row = self.slabs.row(lca, kid_s[i] as usize);
                for (j, &dtj) in dt.iter().enumerate() {
                    if !dtj.is_finite() {
                        continue;
                    }
                    let cand = dsi + row[kid_t[j] as usize] + dtj;
                    if cand < best {
                        best = cand;
                        best_pair = (i, j);
                    }
                }
            }
            if !best.is_finite() {
                return None;
            }
            return Some((best, best_pair));
        }

        for (i, &di) in ads.iter().enumerate() {
            if !ds[i].is_finite() {
                continue;
            }
            let row = lca_node
                .matrix
                .row_index(di)
                .expect("child AD in LCA matrix");
            for (j, &dj) in adt.iter().enumerate() {
                if !dt[j].is_finite() {
                    continue;
                }
                let col = lca_node
                    .matrix
                    .col_index(dj)
                    .expect("child AD in LCA matrix");
                let cand = ds[i] + lca_node.matrix.at(row, col) + dt[j];
                if cand < best {
                    best = cand;
                    best_pair = (i, j);
                }
            }
        }
        if !best.is_finite() {
            return None;
        }
        Some((best, best_pair))
    }

    /// §3.2: shortest path between two points.
    pub fn shortest_path_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let mut scratch = self.scratch.checkout();
        self.shortest_path_in(s, t, &mut scratch)
    }

    /// As [`Self::shortest_path_points`] with caller-owned scratch state.
    pub fn shortest_path_in(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
    ) -> Option<IndoorPath> {
        let leaf_s = self.leaf_of(s.partition);
        let leaf_t = self.leaf_of(t.partition);
        if leaf_s == leaf_t {
            let (length, doors) = self.same_leaf_route(s, t)?;
            return Some(IndoorPath {
                source: *s,
                target: *t,
                doors,
                length,
            });
        }
        let crate::QueryScratch { asc_s, asc_t, .. } = scratch;
        let (length, (i, j)) = self.cross_leaf_distance_into(s, t, leaf_s, leaf_t, asc_s, asc_t)?;
        let doors = self.recover_cross_leaf_path(asc_s, i, asc_t, j);
        Some(IndoorPath {
            source: *s,
            target: *t,
            doors,
            length,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::tree::VipTreeConfig;
    use indoor_graph::DijkstraEngine;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Ground truth: D2D Dijkstra with virtual endpoints + direct
    /// same-partition candidate.
    pub(crate) fn oracle_distance(
        venue: &indoor_model::Venue,
        engine: &mut DijkstraEngine,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<f64> {
        let direct = s.direct_distance(venue, t);
        let via = engine
            .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
            .map(|(d, _)| d);
        match (direct, via) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    #[test]
    fn ascent_reaches_root_with_finite_distances() {
        let venue = Arc::new(random_venue(5));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let pts = workload::query_points(&venue, 5, 1);
        for p in &pts {
            let asc = tree.ascend(p, tree.root());
            assert_eq!(asc.last().node, tree.root());
            // Connected venue: every access door reachable.
            for (k, d) in asc.last().dists.iter().enumerate() {
                assert!(
                    d.is_finite() || tree.node(tree.root()).access_doors.is_empty(),
                    "unreachable access door idx {k}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn shortest_distance_matches_dijkstra(seed in 0u64..3_000) {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let mut engine = DijkstraEngine::new(venue.num_doors());
            let pairs = workload::query_pairs(&venue, 25, seed ^ 0xA5);
            for (s, t) in &pairs {
                let want = oracle_distance(&venue, &mut engine, s, t);
                let got = tree.shortest_distance_points(s, t);
                match (want, got) {
                    (Some(w), Some(g)) => prop_assert!(
                        (w - g).abs() < 1e-6 * w.max(1.0),
                        "seed {seed}: got {g}, want {w} for {s:?} -> {t:?}"
                    ),
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability mismatch {want:?} vs {got:?}"),
                }
            }
        }
    }
}
