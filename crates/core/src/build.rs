//! IP-tree construction (§2.1.2): leaves → merged levels → matrices.
//!
//! The matrix phases (steps 3–4) fan out over worker threads — one
//! checkout-pooled [`indoor_graph::DijkstraEngine`] per worker — while the
//! structural phases (leaf assignment, merging) stay serial. Every
//! parallel unit writes into a pre-assigned slot, so the built tree is
//! bit-identical for any `VipTreeConfig::threads` (see DESIGN.md).

use crate::leaf::assign_leaves;
use crate::matrices::{build_inner_matrix, build_leaf_matrix, LevelGraph};
use crate::merge::{create_next_level, ProtoNode};
use crate::tree::{BuildError, DistMatrix, IpTree, Node, NodeIdx, VipTreeConfig, NO_NODE};
use indoor_graph::parallel::par_map_init;
use indoor_graph::EnginePool;
use indoor_model::{DoorId, Venue};
use std::sync::Arc;

/// Level-1 protos (one per leaf), the door → leaf-proto map, and the leaf
/// partition lists. Shared with `merge` tests.
pub(crate) fn leaf_protos(
    venue: &Venue,
) -> (
    Vec<ProtoNode>,
    Vec<[u32; 2]>,
    Vec<Vec<indoor_model::PartitionId>>,
) {
    let assignment = assign_leaves(venue);
    let n_leaves = assignment.leaf_partitions.len();

    // door -> (<= 2) leaves.
    let mut door_nodes = vec![[NO_NODE; 2]; venue.num_doors()];
    for door in venue.doors() {
        let mut slot = [NO_NODE; 2];
        let mut k = 0;
        for p in door.partition_ids() {
            let leaf = assignment.leaf_of_partition[p.index()];
            if !slot.contains(&leaf) {
                slot[k] = leaf;
                k += 1;
            }
        }
        door_nodes[door.id.index()] = slot;
    }

    let mut protos = Vec::with_capacity(n_leaves);
    for (leaf_idx, parts) in assignment.leaf_partitions.iter().enumerate() {
        let mut doors: Vec<DoorId> = parts
            .iter()
            .flat_map(|p| venue.partition(*p).doors.iter().copied())
            .collect();
        doors.sort_unstable();
        doors.dedup();
        // A door of this leaf is an access door iff it is exterior or its
        // two partitions lie in different leaves (`door_nodes` slots are
        // deduplicated, so a second entry implies two distinct leaves).
        let access: Vec<DoorId> = doors
            .iter()
            .copied()
            .filter(|&d| {
                let [_, b] = door_nodes[d.index()];
                venue.door(d).is_exterior() || b != NO_NODE
            })
            .collect();
        protos.push(ProtoNode {
            access_doors: access,
            members: vec![leaf_idx as u32],
        });
    }

    (protos, door_nodes, assignment.leaf_partitions)
}

impl IpTree {
    /// Build an IP-tree over a venue (§2.1.2).
    pub fn build(venue: Arc<Venue>, config: &VipTreeConfig) -> Result<IpTree, BuildError> {
        if config.min_degree < 2 {
            return Err(BuildError::BadMinDegree(config.min_degree));
        }
        let t = config.min_degree;

        // --- Steps 1 & 2: leaves, then merge until <= t nodes remain. ---
        // The leaf-level door → leaves map is stored in the tree as-is, and
        // the merge loop borrows it for its first pass: no wholesale
        // snapshot clones of the leaf protos or the door map are taken.
        let (mut protos, door_leaves, leaf_partitions) = leaf_protos(&venue);

        // levels[0] = leaves; each entry records, per node of that level,
        // the member indices into the previous level.
        let mut level_members: Vec<Vec<Vec<u32>>> = Vec::new();
        let mut level_access: Vec<Vec<Vec<DoorId>>> = Vec::new();
        level_members.push((0..protos.len()).map(|i| vec![i as u32]).collect());
        level_access.push(protos.iter().map(|p| p.access_doors.clone()).collect());

        let mut door_nodes: Option<Vec<[NodeIdx; 2]>> = None;
        while protos.len() > t {
            let current_map = door_nodes.as_deref().unwrap_or(&door_leaves);
            let out = create_next_level(&venue, &protos, current_map, t);
            if out.next.len() >= protos.len() {
                break; // no progress possible (disconnected pathologies)
            }
            level_members.push(out.next.iter().map(|p| p.members.clone()).collect());
            level_access.push(out.next.iter().map(|p| p.access_doors.clone()).collect());
            protos = out.next;
            door_nodes = Some(out.door_nodes);
        }
        if protos.len() > 1 {
            // Merge the <= t survivors into the root (§2.1.2: "all these
            // nodes are merged to form the root node").
            let members: Vec<u32> = (0..protos.len() as u32).collect();
            let mut access: Vec<DoorId> = protos
                .iter()
                .flat_map(|p| p.access_doors.iter().copied())
                .filter(|&d| venue.door(d).is_exterior())
                .collect();
            access.sort_unstable();
            access.dedup();
            level_members.push(vec![members]);
            level_access.push(vec![access]);
        }

        // --- Materialise the node array, leaves first, level by level. ---
        let n_leaves = leaf_partitions.len();
        let mut nodes: Vec<Node> = Vec::new();
        let mut level_first: Vec<usize> = Vec::new(); // node idx of first node per level
        for (li, members_at_level) in level_members.iter().enumerate() {
            level_first.push(nodes.len());
            for (ni, members) in members_at_level.iter().enumerate() {
                let (partitions, doors) = if li == 0 {
                    let parts = leaf_partitions[ni].clone();
                    let mut doors: Vec<DoorId> = parts
                        .iter()
                        .flat_map(|p| venue.partition(*p).doors.iter().copied())
                        .collect();
                    doors.sort_unstable();
                    doors.dedup();
                    (parts, doors)
                } else {
                    (Vec::new(), Vec::new())
                };
                let children: Vec<NodeIdx> = if li == 0 {
                    Vec::new()
                } else {
                    members
                        .iter()
                        .map(|&m| (level_first[li - 1] + m as usize) as NodeIdx)
                        .collect()
                };
                nodes.push(Node {
                    parent: NO_NODE,
                    children,
                    level: (li + 1) as u32,
                    access_doors: level_access[li][ni].clone(),
                    partitions,
                    doors,
                    matrix: DistMatrix {
                        rows: Vec::new(),
                        cols: Vec::new(),
                        dist: Box::new([]),
                        next_hop: Box::new([]),
                    },
                });
            }
        }
        let root = (nodes.len() - 1) as NodeIdx;
        for idx in 0..nodes.len() {
            for c in nodes[idx].children.clone() {
                nodes[c as usize].parent = idx as NodeIdx;
            }
        }

        // --- Per-door boundary flag: access door of at least one leaf. ---
        let mut boundary = vec![false; venue.num_doors()];
        for node in nodes.iter().take(n_leaves) {
            for &d in &node.access_doors {
                boundary[d.index()] = true;
            }
        }

        // --- Step 3: leaf matrices (+ superior doors), in parallel. ---
        // Each leaf's Dijkstra fan-out is independent (it reads only the
        // venue, the boundary flags, and its own door lists), so leaves map
        // over the worker pool; the superior-door evidence is carried back
        // per leaf and folded in leaf order afterwards, which keeps the
        // result identical to the serial build.
        let threads = config.threads;
        let pool = EnginePool::new(venue.num_doors());
        let leaf_indices: Vec<usize> = (0..n_leaves).collect();
        let leaf_results: Vec<(DistMatrix, Vec<Vec<bool>>)> = par_map_init(
            &leaf_indices,
            threads,
            || pool.checkout(),
            |engine, _, &li| {
                let node = &nodes[li];
                let mut hits: Vec<Vec<bool>> = node
                    .partitions
                    .iter()
                    .map(|p| vec![false; venue.partition(*p).doors.len()])
                    .collect();
                let matrix = build_leaf_matrix(
                    &venue,
                    engine,
                    &node.doors,
                    &node.access_doors,
                    &boundary,
                    &node.partitions,
                    &mut hits,
                );
                (matrix, hits)
            },
        );
        let mut superior: Vec<Vec<DoorId>> = vec![Vec::new(); venue.num_partitions()];
        for (li, (matrix, hits)) in leaf_results.into_iter().enumerate() {
            // Local access doors are superior by definition; add the
            // Dijkstra-evidenced ones.
            for (pi, &p) in nodes[li].partitions.iter().enumerate() {
                let access = &nodes[li].access_doors;
                let pdoors = &venue.partition(p).doors;
                let mut sup: Vec<DoorId> = pdoors
                    .iter()
                    .enumerate()
                    .filter(|(i, d)| hits[pi][*i] || access.binary_search(d).is_ok())
                    .map(|(_, d)| *d)
                    .collect();
                sup.sort_unstable();
                sup.dedup();
                // A partition always needs at least one candidate exit.
                if sup.is_empty() {
                    sup = pdoors.clone();
                }
                superior[p.index()] = sup;
            }
            nodes[li].matrix = matrix;
        }

        // --- Step 4: non-leaf matrices, bottom-up via level graphs. ---
        // Levels stay sequential (G_{l+1} is built from level-l matrices),
        // but within one level every node's matrix is independent: compute
        // them in parallel into per-node slots, then write back in order.
        for li in 1..level_first.len() {
            let prev_first = level_first[li - 1];
            let prev_last = level_first[li];
            let parts: Vec<(&Vec<DoorId>, &DistMatrix)> = (prev_first..prev_last)
                .map(|i| (&nodes[i].access_doors, &nodes[i].matrix))
                .collect();
            let lg = LevelGraph::build_from_parts(venue.num_doors(), &parts);
            drop(parts);
            let lg_pool = EnginePool::new(lg.vertex_door.len());

            let this_last = if li + 1 < level_first.len() {
                level_first[li + 1]
            } else {
                nodes.len()
            };
            let borders: Vec<Vec<DoorId>> = (level_first[li]..this_last)
                .map(|i| {
                    let mut border: Vec<DoorId> = nodes[i]
                        .children
                        .iter()
                        .flat_map(|&c| nodes[c as usize].access_doors.iter().copied())
                        .collect();
                    border.sort_unstable();
                    border.dedup();
                    border
                })
                .collect();
            let matrices = par_map_init(
                &borders,
                threads,
                || lg_pool.checkout(),
                |engine, _, border| build_inner_matrix(&lg, engine, border),
            );
            for (offset, matrix) in matrices.into_iter().enumerate() {
                nodes[level_first[li] + offset].matrix = matrix;
            }
        }

        // --- Partition -> leaf map. ---
        let mut leaf_of_partition = vec![NO_NODE; venue.num_partitions()];
        for (li, node) in nodes.iter().enumerate().take(n_leaves) {
            for &p in &node.partitions {
                leaf_of_partition[p.index()] = li as NodeIdx;
            }
        }

        // --- Implicit layout: pack the hot data into SoA slabs and build
        // the admissible lower-bound tables (DESIGN.md §14). Bound
        // extraction fans out over the same worker pool; the arena fill is
        // a serial sequence of row memcpys.
        let slabs = crate::slabs::Slabs::build(&nodes, &door_leaves, threads);

        // --- Per-leaf door-to-door grid: global distances from leaf
        // matrices + leaf-local Dijkstra (no extra full-graph passes),
        // consumed by the own-leaf exact scan (DESIGN.md §14.4). Shapes
        // only — each leaf's slab builds lazily on its first own-leaf
        // scan (`LeafGrid::ensure`), so build time and memory follow the
        // queried leaf set, not the venue size.
        let leaf_grid = crate::leafdist::LeafGrid::new(&nodes, n_leaves);

        Ok(IpTree {
            venue,
            config: config.clone(),
            nodes,
            root,
            leaf_of_partition,
            door_leaves,
            boundary,
            superior,
            decompose_fallbacks: std::sync::atomic::AtomicU64::new(0),
            engines: pool,
            scratch: crate::exec::ScratchPool::new(),
            objects: std::sync::RwLock::new(None),
            objects_update: std::sync::Mutex::new(()),
            objects_gen: std::sync::atomic::AtomicU64::new(0),
            slabs,
            leaf_grid,
            hot_layout: std::sync::atomic::AtomicBool::new(true),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_graph::DijkstraEngine;
    use indoor_synth::random_venue;
    use proptest::prelude::*;

    fn build(seed: u64) -> IpTree {
        let venue = Arc::new(random_venue(seed));
        IpTree::build(venue, &VipTreeConfig::default()).unwrap()
    }

    #[test]
    fn rejects_min_degree_below_two() {
        let venue = Arc::new(random_venue(0));
        let cfg = VipTreeConfig {
            min_degree: 1,
            ..Default::default()
        };
        assert!(IpTree::build(venue, &cfg).is_err());
    }

    #[test]
    fn single_root_and_parent_links() {
        let tree = build(3);
        let root = tree.root();
        assert_eq!(tree.node(root).parent, NO_NODE);
        for idx in 0..tree.num_nodes() as NodeIdx {
            if idx != root {
                let p = tree.node(idx).parent;
                assert_ne!(p, NO_NODE, "non-root node {idx} without parent");
                assert!(tree.node(p).children.contains(&idx));
            }
            for &c in &tree.node(idx).children {
                assert_eq!(tree.node(c).parent, idx);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]
        #[test]
        fn structural_invariants(seed in 0u64..5_000) {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();

            // Access doors really lead outside their node: for each node,
            // collect the partitions under it; an access door must be
            // exterior or have a partition outside the set.
            for idx in 0..tree.num_nodes() as NodeIdx {
                let mut parts = std::collections::HashSet::new();
                let mut stack = vec![idx];
                while let Some(n) = stack.pop() {
                    let node = tree.node(n);
                    parts.extend(node.partitions.iter().copied());
                    stack.extend(node.children.iter().copied());
                }
                let node = tree.node(idx);
                for &d in &node.access_doors {
                    let door = venue.door(d);
                    let inside = door.partition_ids().any(|p| parts.contains(&p));
                    let outside =
                        door.is_exterior() || door.partition_ids().any(|p| !parts.contains(&p));
                    prop_assert!(inside && outside,
                        "door {d} is not a valid access door of node {idx}");
                }
                // Completeness: every door with one side in and one side out
                // is listed.
                if node.is_leaf() {
                    for &d in &node.doors {
                        let door = venue.door(d);
                        let out = door.is_exterior()
                            || door.partition_ids().any(|p| !parts.contains(&p));
                        prop_assert_eq!(out, node.ad_index(d).is_some());
                    }
                }
            }

            // Leaf matrices equal ground-truth Dijkstra distances.
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for idx in 0..tree.num_leaves() {
                let node = tree.node(idx as NodeIdx);
                for (c, &a) in node.matrix.cols.iter().enumerate() {
                    engine.run(
                        venue.d2d(),
                        &[(a.0, 0.0)],
                        indoor_graph::Termination::Exhaust,
                    );
                    for (r, &d) in node.matrix.rows.iter().enumerate() {
                        let want = engine.settled_distance(d.0).unwrap_or(f64::INFINITY);
                        let got = node.matrix.at(r, c);
                        prop_assert!((got - want).abs() < 1e-9 || (got == want),
                            "leaf {idx} dist({d},{a}): got {got} want {want}");
                    }
                }
            }

            // Non-leaf matrices also equal ground truth.
            for idx in tree.num_leaves()..tree.num_nodes() {
                let node = tree.node(idx as NodeIdx);
                for (c, &a) in node.matrix.cols.iter().enumerate() {
                    engine.run(
                        venue.d2d(),
                        &[(a.0, 0.0)],
                        indoor_graph::Termination::Exhaust,
                    );
                    for (r, &d) in node.matrix.rows.iter().enumerate() {
                        let want = engine.settled_distance(d.0).unwrap_or(f64::INFINITY);
                        let got = node.matrix.at(r, c);
                        prop_assert!((got - want).abs() < 1e-9 || (got == want),
                            "node {idx} dist({d},{a}): got {got} want {want}");
                    }
                }
            }

            // Non-root nodes have >= t children (unless their level had no
            // merge partners), root has <= ... at least 1 child when there
            // are multiple leaves.
            if tree.num_leaves() > 1 {
                prop_assert!(!tree.node(tree.root()).children.is_empty());
            }
        }
    }
}
