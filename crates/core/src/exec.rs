//! Query-execution subsystem: reusable per-query scratch state, a
//! checkout pool, and a concurrent batched [`QueryEngine`] facade.
//!
//! Every kNN/range/keyword/shortest-path call needs transient state — a
//! [`DistArena`] of access-door vectors, branch-and-bound heaps, ascent
//! buffers, a candidate-mark set. Allocating that from scratch per query
//! caps single-thread throughput and shreds the allocator under
//! concurrency, so it all lives in one [`QueryScratch`] that is checked
//! out of a [`ScratchPool`] (same pattern as `indoor_graph::EnginePool`
//! for Dijkstra state) and cleared in O(live data) between queries —
//! the mark set clears by bumping an epoch counter, not by touching
//! memory.
//!
//! [`QueryEngine`] fans batches of queries over
//! [`indoor_graph::parallel::par_map_init`] worker threads, one scratch
//! per worker, with slot-indexed output: result `i` of a batch is the
//! answer to query `i`, bit-identical to running the queries serially in
//! input order (see DESIGN.md, "Query scratch reuse and batch
//! determinism").

use crate::ascent::Ascent;
use crate::keywords::KeywordObjects;
use crate::knn::DistArena;
use crate::tree::{IpTree, NodeIdx};
use crate::vip::VipTree;
use geometry::TotalF64;
use indoor_graph::parallel::par_map_init;
use indoor_model::{DoorId, IndoorPath, IndoorPoint, ObjectId, QueryRequest, QueryResponse};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A set over `0..n` that clears in O(1) by bumping an epoch stamp.
///
/// `vec![false; n]` per leaf scan was the last per-query allocation in the
/// kNN hot loop; this replaces it. An index is "marked" iff its stamp
/// equals the current epoch, so `begin` only pays for memory on growth
/// (and on the one-in-4-billion epoch wraparound, where stamps are
/// re-zeroed to keep stale marks from resurfacing).
#[derive(Debug, Clone, Default)]
pub(crate) struct EpochMarks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochMarks {
    /// Start a new (empty) marking round over indices `0..n`.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    pub fn mark(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }

    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }
}

/// The per-query transient state of every tree query, owned and reused.
///
/// A scratch is plain state, not a guard: queries leave no observable
/// residue in it — every query begins by clearing (epoch-bumping, for the
/// marks) exactly the pieces it uses, so interleaving different query
/// kinds through one scratch yields bit-identical answers to using a
/// fresh scratch each time (`tests/scratch_reuse.rs` enforces this).
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Source-side ascent (also the only ascent for kNN/range/keyword).
    pub(crate) asc_s: Ascent,
    /// Target-side ascent for point-to-point queries.
    pub(crate) asc_t: Ascent,
    /// Flat arena of access-door distance vectors.
    pub(crate) arena: DistArena,
    /// Arena handles of the ascent steps, aligned with `asc_s.steps()`.
    pub(crate) step_handles: Vec<u32>,
    /// Buffer for derived child vectors before they enter the arena.
    pub(crate) child_vec: Vec<f64>,
    /// Best-first frontier of Algorithm 5.
    pub(crate) heap: BinaryHeap<Reverse<(TotalF64, NodeIdx, u32)>>,
    /// Current k-best max-heap (`peek()` is `d_k`).
    pub(crate) best: BinaryHeap<(TotalF64, ObjectId)>,
    /// DFS stack of range queries.
    pub(crate) stack: Vec<(NodeIdx, u32)>,
    /// Leaf-scan candidate marks, cleared by epoch.
    pub(crate) marks: EpochMarks,
    /// Own-leaf scan buffer: distance from `q` to every door of its leaf,
    /// folded from the leaf door grid (DESIGN.md §14.4).
    pub(crate) leaf_dq: Vec<f64>,
    /// VIP cross-leaf side buffers: distances/argmin superior doors to the
    /// source- and target-side access doors.
    pub(crate) sd_s: Vec<f64>,
    pub(crate) sd_t: Vec<f64>,
    pub(crate) via_s: Vec<DoorId>,
    pub(crate) via_t: Vec<DoorId>,
    /// Per-query span state (phase timings + hot-path counters). Armed by
    /// [`QueryEngine`]'s dispatch point when the sampling gate is open and
    /// the engine has a telemetry sink; dormant (one cleared bool) on
    /// every other path, and compiled out entirely under `telemetry-off`.
    pub(crate) trace: crate::telemetry::QueryTrace,
}

impl QueryScratch {
    /// An empty scratch; buffers grow to the working-set size of the first
    /// few queries and then stay warm.
    pub fn new() -> QueryScratch {
        QueryScratch::default()
    }
}

/// A checkout pool of [`QueryScratch`]es shared by concurrent callers.
///
/// Checkout pops a free scratch (or creates one — the pool grows to the
/// peak concurrency and no further); drop returns it. Single-query APIs
/// on [`IpTree`]/[`VipTree`] stay allocation-lean by checking out of the
/// tree's embedded pool, so existing callers get the reuse for free.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Mutex<Vec<QueryScratch>>,
}

impl ScratchPool {
    /// An empty pool.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Check a scratch out, creating one if none is free.
    pub fn checkout(&self) -> PooledScratch<'_> {
        let scratch = self
            .free
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }
}

/// RAII checkout from a [`ScratchPool`]; derefs to [`QueryScratch`].
#[derive(Debug)]
pub struct PooledScratch<'a> {
    pool: &'a ScratchPool,
    scratch: Option<QueryScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(scratch);
            }
        }
    }
}

/// Where an armed [`crate::telemetry::QueryTrace`] folds when the query
/// finishes: per-phase latency histograms plus lifetime hot-path counters,
/// shared between the engine (writer) and the service registry (reader).
/// Engines without a sink (standalone benches, tests) skip arming entirely
/// and pay one relaxed load per query.
#[derive(Debug)]
pub(crate) struct EngineTelemetry {
    /// Branch-and-bound walk time: total minus leaf-fold minus heap (µs).
    pub(crate) descent_us: Arc<crate::telemetry::Histogram>,
    /// Own-leaf door-grid fold time, including first-touch lazy grid
    /// builds (µs).
    pub(crate) leaf_fold_us: Arc<crate::telemetry::Histogram>,
    /// Final k-best drain/sort time (µs).
    pub(crate) heap_us: Arc<crate::telemetry::Histogram>,
    pub(crate) nodes_pushed: Arc<crate::telemetry::Counter>,
    pub(crate) nodes_pruned: Arc<crate::telemetry::Counter>,
    pub(crate) slab_rows: Arc<crate::telemetry::Counter>,
    pub(crate) kbest_updates: Arc<crate::telemetry::Counter>,
    /// Queries that ran with an armed trace (the denominator for the
    /// per-query counters above).
    pub(crate) traced_queries: Arc<crate::telemetry::Counter>,
}

impl EngineTelemetry {
    /// Fold one finished trace. `total_ns` is wall time of the whole
    /// dispatch; descent is what's left after the explicitly-timed phases.
    pub(crate) fn fold(&self, trace: &crate::telemetry::QueryTrace, total_ns: u64) {
        let timed = trace.leaf_fold_ns + trace.heap_ns;
        self.descent_us
            .record(total_ns.saturating_sub(timed) / 1_000);
        self.leaf_fold_us.record(trace.leaf_fold_ns / 1_000);
        self.heap_us.record(trace.heap_ns / 1_000);
        self.nodes_pushed.add(trace.nodes_pushed);
        self.nodes_pruned.add(trace.nodes_pruned);
        self.slab_rows.add(trace.slab_rows);
        self.kbest_updates.add(trace.kbest_updates);
        self.traced_queries.inc();
    }
}

/// Which index a [`QueryEngine`] serves.
#[derive(Debug, Clone)]
pub enum TreeHandle {
    /// IP-tree backend (ascents walk matrices).
    Ip(Arc<IpTree>),
    /// VIP-tree backend (ascents are table lookups).
    Vip(Arc<VipTree>),
}

impl TreeHandle {
    /// The underlying IP-tree (the VIP-tree's interior one for `Vip`).
    #[inline]
    pub fn ip(&self) -> &IpTree {
        match self {
            TreeHandle::Ip(t) => t,
            TreeHandle::Vip(t) => t.ip_tree(),
        }
    }
}

/// Concurrent batched query facade over a shared index.
///
/// Owns a [`ScratchPool`] and a thread count. The primitive surface is
/// typed: [`QueryEngine::execute`] answers one
/// [`QueryRequest`], and [`QueryEngine::execute_batch`] fans a
/// *heterogeneous* request slice over `threads` workers (0 = all cores),
/// each holding one scratch for the whole batch, returning responses in
/// input order — slot `i` is exactly what the corresponding single-query
/// call returns, bit for bit. The per-kind `batch_*` methods are thin
/// wrappers that build the requests and unwrap the matching responses.
///
/// ```
/// use indoor_synth::{random_venue, workload};
/// use std::sync::Arc;
/// use vip_tree::{QueryEngine, VipTree, VipTreeConfig};
///
/// let venue = Arc::new(random_venue(9));
/// let mut tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
/// tree.attach_objects(&workload::place_objects(&venue, 12, 1));
/// let engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(2);
/// let queries = workload::query_points(&venue, 8, 3);
/// let answers = engine.batch_knn(&queries, 3);
/// assert_eq!(answers.len(), queries.len());
/// ```
#[derive(Debug)]
pub struct QueryEngine {
    tree: TreeHandle,
    /// Swappable under `&self` so a live service can absorb keyword-object
    /// churn without rebuilding the engine. Snapshotted **once per
    /// `execute`/`execute_batch` call** — a batch answers every slot from
    /// one keyword snapshot, so a mid-batch swap can never mix pre- and
    /// post-swap answers within a batch (and the per-query hot path pays
    /// no lock).
    keywords: std::sync::RwLock<Option<Arc<KeywordObjects>>>,
    /// Keyword-snapshot generation: bumped (after the swap) by every
    /// [`QueryEngine::set_keywords`], whoever calls it — the stamp result
    /// caches key keyword answers by, so out-of-band swaps can never be
    /// mistaken for the cached snapshot.
    keywords_gen: std::sync::atomic::AtomicU64,
    threads: usize,
    pool: ScratchPool,
    /// Set once by the serving layer ([`crate::IndoorService`]); engines
    /// without a sink never arm traces, so the standalone hot path keeps
    /// exactly one relaxed load of overhead.
    tel: std::sync::OnceLock<Arc<EngineTelemetry>>,
}

impl QueryEngine {
    /// Serve queries from an IP-tree.
    pub fn for_ip(tree: Arc<IpTree>) -> QueryEngine {
        QueryEngine::new(TreeHandle::Ip(tree))
    }

    /// Serve queries from a VIP-tree.
    pub fn for_vip(tree: Arc<VipTree>) -> QueryEngine {
        QueryEngine::new(TreeHandle::Vip(tree))
    }

    /// Serve queries from either backend.
    pub fn new(tree: TreeHandle) -> QueryEngine {
        QueryEngine {
            tree,
            keywords: std::sync::RwLock::new(None),
            keywords_gen: std::sync::atomic::AtomicU64::new(0),
            threads: 0,
            pool: ScratchPool::new(),
            tel: std::sync::OnceLock::new(),
        }
    }

    /// Attach the telemetry sink (first caller wins; later calls are
    /// no-ops, matching the one-service-owns-one-engine lifecycle).
    pub(crate) fn set_telemetry(&self, tel: Arc<EngineTelemetry>) {
        let _ = self.tel.set(tel);
    }

    /// Worker threads for `batch_*` calls (0 = all available cores).
    ///
    /// Also pre-warms the tree's Dijkstra engine pool to that
    /// concurrency, so the first batch's same-leaf queries find engines
    /// ready instead of allocating them in-band.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self.tree
            .ip()
            .warm_engines(indoor_graph::parallel::effective_threads(threads));
        self
    }

    /// Attach a keyword index for keyword-kNN requests
    /// ([`QueryEngine::batch_knn_keyword`], `KnnKeyword` requests).
    pub fn with_keywords(self, keywords: Arc<KeywordObjects>) -> Self {
        self.set_keywords(Some(keywords));
        self
    }

    /// Swap (or detach) the keyword index on a live engine. In-flight
    /// calls finish on the snapshot they captured at entry; the keyword
    /// generation bumps *after* the swap, so a caller observing the new
    /// generation is guaranteed to see the new index.
    pub fn set_keywords(&self, keywords: Option<Arc<KeywordObjects>>) {
        *self.keywords.write().expect("keywords lock") = keywords;
        self.keywords_gen
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// The keyword-snapshot generation (see [`QueryEngine::set_keywords`]).
    pub fn keywords_generation(&self) -> u64 {
        self.keywords_gen.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The backend handle.
    #[inline]
    pub fn tree(&self) -> &TreeHandle {
        &self.tree
    }

    /// The attached keyword index snapshot, if any.
    #[inline]
    pub fn keywords(&self) -> Option<Arc<KeywordObjects>> {
        self.keywords.read().expect("keywords lock").clone()
    }

    /// Deconstruct into the backend handle, releasing this engine's clone
    /// of the tree `Arc`. (Object churn no longer needs this — attach and
    /// delta application swap under `&self` — but callers that want to
    /// retire an engine and keep its tree still do.)
    pub fn into_tree(self) -> TreeHandle {
        self.tree
    }

    /// The effective worker count a batch call will use.
    pub fn threads(&self) -> usize {
        indoor_graph::parallel::effective_threads(self.threads)
    }

    /// The raw configured thread count (0 = all cores at call time) — what
    /// a snapshot persists, so a restored service keeps "use every core"
    /// semantics instead of pinning the saving machine's core count.
    pub(crate) fn configured_threads(&self) -> usize {
        self.threads
    }

    fn knn_one(
        &self,
        scratch: &mut QueryScratch,
        q: &IndoorPoint,
        k: usize,
    ) -> Vec<(ObjectId, f64)> {
        match &self.tree {
            TreeHandle::Ip(t) => t.knn_in(q, k, scratch),
            TreeHandle::Vip(t) => t.knn_in(q, k, scratch),
        }
    }

    fn range_one(
        &self,
        scratch: &mut QueryScratch,
        q: &IndoorPoint,
        radius: f64,
    ) -> Vec<(ObjectId, f64)> {
        match &self.tree {
            TreeHandle::Ip(t) => t.range_in(q, radius, scratch),
            TreeHandle::Vip(t) => t.range_in(q, radius, scratch),
        }
    }

    fn distance_one(
        &self,
        scratch: &mut QueryScratch,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<f64> {
        match &self.tree {
            TreeHandle::Ip(tr) => tr.shortest_distance_in(s, t, scratch),
            TreeHandle::Vip(tr) => tr.shortest_distance_in(s, t, scratch),
        }
    }

    fn path_one(
        &self,
        scratch: &mut QueryScratch,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<IndoorPath> {
        match &self.tree {
            TreeHandle::Ip(tr) => tr.shortest_path_in(s, t, scratch),
            TreeHandle::Vip(tr) => tr.shortest_path_in(s, t, scratch),
        }
    }

    fn keyword_one(
        &self,
        scratch: &mut QueryScratch,
        keywords: Option<&Arc<KeywordObjects>>,
        q: &IndoorPoint,
        k: usize,
        label: &str,
    ) -> Vec<(ObjectId, f64)> {
        match keywords {
            Some(kw) => kw.knn_keyword_in(self.tree.ip(), q, k, label, scratch),
            // Mirror `KeywordObjects::knn_keyword` on an unknown term: no
            // keyword index means no object carries the keyword.
            None => Vec::new(),
        }
    }

    /// Answer one typed request on caller-owned scratch — the single
    /// dispatch point every batch and per-kind call funnels through.
    /// `keywords` is the caller's per-call snapshot (captured once, even
    /// for a whole batch).
    fn execute_in(
        &self,
        scratch: &mut QueryScratch,
        keywords: Option<&Arc<KeywordObjects>>,
        req: &QueryRequest,
    ) -> QueryResponse {
        let tel = self.tel.get();
        scratch
            .trace
            .begin(tel.is_some() && crate::telemetry::should_trace());
        let t0 = scratch.trace.start();
        let resp = match req {
            QueryRequest::Knn { q, k } => QueryResponse::Knn(self.knn_one(scratch, q, *k)),
            QueryRequest::Range { q, radius } => {
                QueryResponse::Range(self.range_one(scratch, q, *radius))
            }
            QueryRequest::KnnKeyword { q, k, keyword } => {
                QueryResponse::KnnKeyword(self.keyword_one(scratch, keywords, q, *k, keyword))
            }
            QueryRequest::ShortestDistance { s, t } => {
                QueryResponse::ShortestDistance(self.distance_one(scratch, s, t))
            }
            QueryRequest::ShortestPath { s, t } => {
                QueryResponse::ShortestPath(self.path_one(scratch, s, t))
            }
        };
        if let (Some(t0), Some(tel)) = (t0, tel) {
            tel.fold(&scratch.trace, t0.elapsed().as_nanos() as u64);
        }
        resp
    }

    /// Answer one typed request through the pool.
    pub fn execute(&self, req: &QueryRequest) -> QueryResponse {
        let keywords = self.keywords();
        self.execute_in(&mut self.pool.checkout(), keywords.as_ref(), req)
    }

    /// Answer a heterogeneous batch of typed requests; slot `i` answers
    /// `reqs[i]`, bit-identical to the corresponding per-kind call (and to
    /// a serial loop of [`QueryEngine::execute`]), for any thread count.
    ///
    /// This is the primitive the per-kind `batch_*` methods wrap: a mixed
    /// workload — kNN directory lookups interleaved with evacuation-route
    /// path queries — is one batch, fanned over `threads` workers with one
    /// pooled scratch per worker.
    pub fn execute_batch(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
        // One keyword snapshot for the whole batch: every slot answers
        // from the same index even if `set_keywords` swaps mid-batch.
        let keywords = self.keywords();
        par_map_init(
            reqs,
            self.threads,
            || self.pool.checkout(),
            |scratch, _, req| self.execute_in(scratch, keywords.as_ref(), req),
        )
    }

    /// Single kNN through the pool.
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        self.knn_one(&mut self.pool.checkout(), q, k)
    }

    /// Single range query through the pool.
    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        self.range_one(&mut self.pool.checkout(), q, radius)
    }

    /// Single shortest distance through the pool.
    pub fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.distance_one(&mut self.pool.checkout(), s, t)
    }

    /// Single shortest path through the pool.
    pub fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.path_one(&mut self.pool.checkout(), s, t)
    }

    /// k nearest neighbours of every query point; slot `i` answers
    /// `queries[i]`, identical to the serial loop. Thin wrapper over
    /// [`QueryEngine::execute_batch`], as are all `batch_*` methods.
    pub fn batch_knn(&self, queries: &[IndoorPoint], k: usize) -> Vec<Vec<(ObjectId, f64)>> {
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::Knn { q, k })
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| r.into_objects().expect("kNN request yields objects"))
            .collect()
    }

    /// Range query for every query point, in input order.
    pub fn batch_range(&self, queries: &[IndoorPoint], radius: f64) -> Vec<Vec<(ObjectId, f64)>> {
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::Range { q, radius })
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| r.into_objects().expect("range request yields objects"))
            .collect()
    }

    /// Keyword-constrained kNN for every query point, in input order.
    /// Every slot is empty when no keyword index is attached (mirroring
    /// the unknown-term behaviour of `KeywordObjects::knn_keyword`).
    pub fn batch_knn_keyword(
        &self,
        queries: &[IndoorPoint],
        k: usize,
        label: &str,
    ) -> Vec<Vec<(ObjectId, f64)>> {
        if self.keywords().is_none() {
            return vec![Vec::new(); queries.len()];
        }
        // One shared allocation for the label; request clones are free.
        let keyword: Arc<str> = Arc::from(label);
        let reqs: Vec<QueryRequest> = queries
            .iter()
            .map(|&q| QueryRequest::KnnKeyword {
                q,
                k,
                keyword: keyword.clone(),
            })
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| r.into_objects().expect("keyword request yields objects"))
            .collect()
    }

    /// Shortest distance for every pair, in input order.
    pub fn batch_shortest_distance(
        &self,
        pairs: &[(IndoorPoint, IndoorPoint)],
    ) -> Vec<Option<f64>> {
        let reqs: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(s, t)| QueryRequest::ShortestDistance { s, t })
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| {
                r.distance()
                    .expect("shortest-distance request yields a distance")
            })
            .collect()
    }

    /// Shortest path for every pair, in input order.
    pub fn batch_shortest_path(
        &self,
        pairs: &[(IndoorPoint, IndoorPoint)],
    ) -> Vec<Option<IndoorPath>> {
        let reqs: Vec<QueryRequest> = pairs
            .iter()
            .map(|&(s, t)| QueryRequest::ShortestPath { s, t })
            .collect();
        self.execute_batch(&reqs)
            .into_iter()
            .map(|r| r.into_path().expect("shortest-path request yields a path"))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// `Shed` policy: the in-flight budget was full at arrival.
    Overloaded { in_flight: usize, limit: usize },
    /// `Block` policy: the budget stayed full for the whole timeout.
    Timeout { in_flight: usize, limit: usize },
}

/// A bounded in-flight budget: queries take weighted permits, overload
/// either sheds (fail fast) or blocks until capacity frees or a timeout
/// expires. Purely a counter + condvar — admitted queries run with no
/// further coordination, so the un-contended fast path is one mutex
/// lock/unlock on each side.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    limit: usize,
    in_flight: Mutex<usize>,
    freed: Condvar,
}

impl AdmissionGate {
    pub(crate) fn new(limit: usize) -> AdmissionGate {
        AdmissionGate {
            limit: limit.max(1),
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    pub(crate) fn limit(&self) -> usize {
        self.limit
    }

    pub(crate) fn in_flight(&self) -> usize {
        *self.in_flight.lock().expect("admission lock")
    }

    /// A weight heavier than the whole budget must still be admissible,
    /// or an oversized batch would deadlock: it fits exactly when the
    /// gate is idle.
    fn admits(&self, cur: usize, weight: usize) -> bool {
        cur == 0 || cur + weight <= self.limit
    }

    /// `Shed` policy: admit now or fail with the observed load.
    pub(crate) fn try_admit(&self, weight: usize) -> Result<AdmissionPermit<'_>, AdmitError> {
        let mut cur = self.in_flight.lock().expect("admission lock");
        if self.admits(*cur, weight) {
            *cur += weight;
            Ok(AdmissionPermit { gate: self, weight })
        } else {
            Err(AdmitError::Overloaded {
                in_flight: *cur,
                limit: self.limit,
            })
        }
    }

    /// `Block` policy: wait up to `timeout` for capacity.
    pub(crate) fn admit_within(
        &self,
        weight: usize,
        timeout: Duration,
    ) -> Result<AdmissionPermit<'_>, AdmitError> {
        let deadline = Instant::now() + timeout;
        let mut cur = self.in_flight.lock().expect("admission lock");
        loop {
            if self.admits(*cur, weight) {
                *cur += weight;
                return Ok(AdmissionPermit { gate: self, weight });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(AdmitError::Timeout {
                    in_flight: *cur,
                    limit: self.limit,
                });
            }
            let (next, _timed_out) = self
                .freed
                .wait_timeout(cur, deadline - now)
                .expect("admission lock");
            cur = next;
        }
    }
}

/// RAII admission slot: frees its weight (and wakes blocked waiters) on
/// drop, so every exit path of a query — success, panic unwind, early
/// return — releases capacity.
#[derive(Debug)]
pub(crate) struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
    weight: usize,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut cur = self.gate.in_flight.lock().expect("admission lock");
        *cur = cur.saturating_sub(self.weight);
        drop(cur);
        self.gate.freed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VipTreeConfig;
    use indoor_synth::{random_venue, workload};

    #[test]
    fn epoch_marks_reset_without_touching_memory() {
        let mut m = EpochMarks::default();
        m.begin(4);
        m.mark(1);
        m.mark(3);
        assert!(m.is_marked(1) && m.is_marked(3));
        assert!(!m.is_marked(0) && !m.is_marked(2));
        m.begin(2);
        assert!(!m.is_marked(1), "stale mark survived epoch bump");
        // Growth keeps old stamps unmarked.
        m.begin(8);
        assert!((0..8).all(|i| !m.is_marked(i)));
    }

    #[test]
    fn epoch_marks_survive_wraparound() {
        let mut m = EpochMarks {
            stamp: vec![0; 3],
            epoch: u32::MAX - 1,
        };
        m.begin(3); // epoch -> MAX
        m.mark(0);
        m.begin(3); // wraps: stamps re-zeroed, epoch 1
        assert!(!m.is_marked(0), "mark leaked across wraparound");
        m.mark(2);
        assert!(m.is_marked(2));
    }

    #[test]
    fn scratch_pool_reuses_returned_scratches() {
        let pool = ScratchPool::new();
        {
            let mut s = pool.checkout();
            s.child_vec.reserve(1024);
        }
        let s = pool.checkout();
        assert!(
            s.child_vec.capacity() >= 1024,
            "checkout did not reuse the returned scratch"
        );
        assert!(pool.free.lock().unwrap().is_empty());
    }

    #[test]
    fn engine_single_queries_match_tree_apis() {
        let venue = std::sync::Arc::new(random_venue(17));
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        tree.attach_objects(&workload::place_objects(&venue, 14, 2));
        let tree = Arc::new(tree);
        let engine = QueryEngine::for_vip(tree.clone()).with_threads(1);
        for q in workload::query_points(&venue, 5, 11) {
            assert_eq!(engine.knn(&q, 4), tree.knn(&q, 4));
            assert_eq!(engine.range(&q, 80.0), tree.range(&q, 80.0));
        }
        for (s, t) in workload::query_pairs(&venue, 5, 12) {
            assert_eq!(
                engine.shortest_distance(&s, &t),
                tree.shortest_distance_points(&s, &t)
            );
        }
    }

    #[test]
    fn admission_gate_sheds_at_the_limit_and_frees_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_admit(1).unwrap();
        let b = gate.try_admit(1).unwrap();
        assert_eq!(
            gate.try_admit(1).unwrap_err(),
            AdmitError::Overloaded {
                in_flight: 2,
                limit: 2
            }
        );
        drop(a);
        let c = gate.try_admit(1).unwrap();
        assert_eq!(gate.in_flight(), 2);
        drop((b, c));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn oversized_batch_admits_only_on_an_idle_gate() {
        let gate = AdmissionGate::new(2);
        // Heavier than the whole budget: fits exactly when idle.
        let big = gate.try_admit(5).unwrap();
        assert!(gate.try_admit(1).is_err());
        drop(big);
        let _one = gate.try_admit(1).unwrap();
        // Now a 5-weight batch must wait (and here, time out).
        assert_eq!(
            gate.admit_within(5, Duration::from_millis(10)).unwrap_err(),
            AdmitError::Timeout {
                in_flight: 1,
                limit: 2
            }
        );
    }

    #[test]
    fn blocked_admission_wakes_when_capacity_frees() {
        let gate = Arc::new(AdmissionGate::new(1));
        let held = gate.try_admit(1).unwrap();
        std::thread::scope(|scope| {
            let waiter = {
                let gate = Arc::clone(&gate);
                scope.spawn(move || gate.admit_within(1, Duration::from_secs(30)).map(drop))
            };
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            assert!(waiter.join().unwrap().is_ok());
        });
        assert_eq!(gate.in_flight(), 0);
    }
}
