//! Spatial-keyword queries — the §1.3 "high adaptability" claim made
//! concrete: "the proposed indexes can be used to answer spatial keyword
//! queries in indoor space by integrating the inverted lists with the
//! nodes of the tree, e.g., in a way similar to how R-tree is extended to
//! IR-tree".
//!
//! [`KeywordObjects`] embeds labelled objects into an [`IpTree`]: each
//! tree node carries the set of terms present in its subtree (the inverted
//! list), so a keyword-constrained kNN prunes both by distance (Algorithm
//! 5) and by term containment.

use crate::ascent::Ascent;
use crate::exec::{EpochMarks, QueryScratch};
use crate::objects::{DeltaReport, ObjectIndex};
use crate::tree::{IpTree, NodeIdx, NO_NODE};
use geometry::TotalF64;
use indoor_model::{DeltaError, IndoorPoint, ObjectDelta, ObjectId, ObjectUpdate};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Interned term identifier.
pub type TermId = u32;

/// Labelled objects embedded in the tree with per-node inverted lists.
///
/// The per-node lists are **counted** (term → number of live objects in
/// the subtree carrying it) rather than plain sets, so a removal can
/// decrement its terms along one ancestor chain instead of recounting the
/// subtree — [`KeywordObjects::apply_delta`] re-threads the inverted
/// lists for the touched objects only.
#[derive(Debug, Clone)]
pub struct KeywordObjects {
    objects: ObjectIndex,
    terms: HashMap<String, TermId>,
    /// Sorted term ids per object slot (stale in tombstoned slots).
    object_terms: Vec<Vec<TermId>>,
    /// Per node: term → live-object count in the subtree.
    node_terms: Vec<HashMap<TermId, u32>>,
}

impl KeywordObjects {
    /// Build from `(location, labels)` pairs (positional ids).
    pub fn build(tree: &IpTree, objects: &[(IndoorPoint, Vec<String>)]) -> KeywordObjects {
        let triples: Vec<(ObjectId, IndoorPoint, Vec<String>)> = objects
            .iter()
            .enumerate()
            .map(|(i, (p, l))| (ObjectId(i as u32), *p, l.clone()))
            .collect();
        Self::build_with_ids(tree, &triples)
    }

    /// As [`KeywordObjects::build`] with caller-assigned stable ids (ids
    /// may have gaps — e.g. the live set surviving a delta history).
    pub fn build_with_ids(
        tree: &IpTree,
        objects: &[(ObjectId, IndoorPoint, Vec<String>)],
    ) -> KeywordObjects {
        let pairs: Vec<(ObjectId, IndoorPoint)> =
            objects.iter().map(|(id, p, _)| (*id, *p)).collect();
        let oi = ObjectIndex::build_with_ids(tree, &pairs);

        let slots = oi.num_objects();
        let mut terms: HashMap<String, TermId> = HashMap::new();
        let mut object_terms: Vec<Vec<TermId>> = vec![Vec::new(); slots];
        for (id, _, labels) in objects {
            let mut ids: Vec<TermId> = labels
                .iter()
                .map(|l| {
                    let next = terms.len() as TermId;
                    *terms.entry(l.clone()).or_insert(next)
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            object_terms[id.index()] = ids;
        }

        // Counted inverted lists: each object's terms increment every
        // ancestor of its leaf.
        let mut node_terms: Vec<HashMap<TermId, u32>> = vec![HashMap::new(); tree.num_nodes()];
        for (id, p, _) in objects {
            let leaf = tree.leaf_of(p.partition);
            adjust_term_counts(tree, &mut node_terms, leaf, &object_terms[id.index()], 1);
        }

        KeywordObjects {
            objects: oi,
            terms,
            object_terms,
            node_terms,
        }
    }

    /// Absorb labelled object deltas: the point deltas maintain the inner
    /// [`ObjectIndex`] incrementally, and the inverted lists are adjusted
    /// along the touched objects' ancestor chains only. `Insert` takes its
    /// labels from the update; `Move` keeps the object's existing labels;
    /// `Remove` needs none. Validation is atomic (an invalid batch leaves
    /// the index untouched).
    pub fn apply_delta(
        &mut self,
        tree: &IpTree,
        updates: &[ObjectUpdate],
    ) -> Result<DeltaReport, DeltaError> {
        let deltas: Vec<ObjectDelta> = updates.iter().map(|u| u.delta).collect();
        self.objects.validate(tree, &deltas)?;

        let mut report = DeltaReport::default();
        let mut touched: HashSet<NodeIdx> = HashSet::new();
        for update in updates {
            // Capture the pre-delta leaf for decrement paths.
            let old_leaf = match update.delta {
                ObjectDelta::Remove { id } | ObjectDelta::Move { id, .. } => {
                    Some(tree.leaf_of(self.objects.object(id).partition))
                }
                ObjectDelta::Insert { .. } => None,
            };
            let one = self.objects.apply_delta(tree, &[update.delta])?;
            report.inserts += one.inserts;
            report.removes += one.removes;
            report.moves += one.moves;
            report.compactions += one.compactions;
            match update.delta {
                ObjectDelta::Insert { id, at } => {
                    let mut ids: Vec<TermId> = update
                        .labels
                        .iter()
                        .map(|l| {
                            let next = self.terms.len() as TermId;
                            *self.terms.entry(l.clone()).or_insert(next)
                        })
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    if id.index() >= self.object_terms.len() {
                        self.object_terms.resize(id.index() + 1, Vec::new());
                    }
                    self.object_terms[id.index()] = ids;
                    let leaf = tree.leaf_of(at.partition);
                    adjust_term_counts(
                        tree,
                        &mut self.node_terms,
                        leaf,
                        &self.object_terms[id.index()],
                        1,
                    );
                    touched.insert(leaf);
                }
                ObjectDelta::Remove { id } => {
                    let leaf = old_leaf.expect("remove captured its leaf");
                    adjust_term_counts(
                        tree,
                        &mut self.node_terms,
                        leaf,
                        &self.object_terms[id.index()],
                        -1,
                    );
                    touched.insert(leaf);
                }
                ObjectDelta::Move { id, to } => {
                    let from_leaf = old_leaf.expect("move captured its leaf");
                    let to_leaf = tree.leaf_of(to.partition);
                    if from_leaf != to_leaf {
                        adjust_term_counts(
                            tree,
                            &mut self.node_terms,
                            from_leaf,
                            &self.object_terms[id.index()],
                            -1,
                        );
                        adjust_term_counts(
                            tree,
                            &mut self.node_terms,
                            to_leaf,
                            &self.object_terms[id.index()],
                            1,
                        );
                    }
                    touched.insert(from_leaf);
                    touched.insert(to_leaf);
                }
            }
        }
        report.touched_leaves = touched.len();
        Ok(report)
    }

    /// The inner object index (positions, live set, maintenance stats).
    pub fn object_index(&self) -> &ObjectIndex {
        &self.objects
    }

    /// The live `(id, position, labels)` set — the input a from-scratch
    /// [`KeywordObjects::build_with_ids`] needs to reproduce this index
    /// (the state a service snapshot persists). Labels come back sorted
    /// by interned term id, which is deterministic for a given history;
    /// label *sets* are preserved exactly (duplicates were dedup'd at
    /// insert, which queries can't observe).
    pub fn live_labelled(&self) -> Vec<(ObjectId, IndoorPoint, Vec<String>)> {
        let mut label_of: Vec<&str> = vec![""; self.terms.len()];
        for (label, &t) in &self.terms {
            label_of[t as usize] = label;
        }
        self.objects
            .live_pairs()
            .into_iter()
            .map(|(id, p)| {
                let labels = self.object_terms[id.index()]
                    .iter()
                    .map(|&t| label_of[t as usize].to_string())
                    .collect();
                (id, p, labels)
            })
            .collect()
    }

    /// Look up a term (queries with unknown terms return no results).
    pub fn term(&self, label: &str) -> Option<TermId> {
        self.terms.get(label).copied()
    }

    fn object_has(&self, o: ObjectId, term: TermId) -> bool {
        self.object_terms[o.index()].binary_search(&term).is_ok()
    }

    fn subtree_has(&self, n: NodeIdx, term: TermId) -> bool {
        self.node_terms[n as usize].contains_key(&term)
    }

    /// The `k` nearest objects carrying `label`. Distance pruning follows
    /// Algorithm 5; subtrees whose inverted list lacks the term are
    /// skipped entirely.
    pub fn knn_keyword(
        &self,
        tree: &IpTree,
        q: &IndoorPoint,
        k: usize,
        label: &str,
    ) -> Vec<(ObjectId, f64)> {
        let mut scratch = tree.scratch.checkout();
        self.knn_keyword_in(tree, q, k, label, &mut scratch)
    }

    /// As [`KeywordObjects::knn_keyword`] with caller-owned scratch state.
    pub fn knn_keyword_in(
        &self,
        tree: &IpTree,
        q: &IndoorPoint,
        k: usize,
        label: &str,
        scratch: &mut QueryScratch,
    ) -> Vec<(ObjectId, f64)> {
        let Some(term) = self.term(label) else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        tree.ascend_into(q, tree.root(), &mut scratch.asc_s);
        let QueryScratch {
            asc_s,
            arena,
            step_handles,
            child_vec,
            heap,
            best,
            marks,
            leaf_dq,
            trace,
            ..
        } = scratch;
        let asc = &*asc_s;
        arena.seed(asc, step_handles);

        best.clear();
        let dk = |best: &BinaryHeap<(TotalF64, ObjectId)>| {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().unwrap().0 .0
            }
        };

        heap.clear();
        heap.push(Reverse((
            TotalF64(0.0),
            tree.root(),
            *step_handles.last().expect("ascent is non-empty"),
        )));
        if trace.active() {
            trace.nodes_pushed += 1;
        }
        let slab = tree.uses_hot_layout();
        while let Some(Reverse((TotalF64(mind), node_idx, handle))) = heap.pop() {
            if mind > dk(best) {
                break;
            }
            let node = tree.node(node_idx);
            if node.is_leaf() {
                self.scan_keyword_leaf(
                    tree,
                    q,
                    node_idx,
                    arena.get(handle),
                    asc,
                    term,
                    k,
                    marks,
                    leaf_dq,
                    trace,
                    best,
                );
                continue;
            }
            let node_on_path = asc.on_path(tree, node_idx);
            for &child in &node.children {
                if !self.subtree_has(child, term) {
                    continue; // inverted-list pruning
                }
                if let Some(step) = asc.step_for(tree, child) {
                    let h = step_handles[tree.node(step.node).level as usize - 1];
                    heap.push(Reverse((TotalF64(0.0), child, h)));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                    continue;
                }
                if slab {
                    let (base_rows, base_handle) = if node_on_path {
                        let sib = tree.child_towards(node_idx, asc.steps()[0].node);
                        debug_assert!(asc.on_path(tree, sib), "sibling on ascent");
                        (
                            tree.slabs.kid_cols_of(sib),
                            step_handles[tree.node(sib).level as usize - 1],
                        )
                    } else {
                        (tree.slabs.own_cols_of(node_idx), handle)
                    };
                    let base_vec = arena.get(base_handle);
                    // Same admissible lower-bound skips as
                    // `IpTree::knn_from_ascent` (PL floor, then the exact
                    // per-row fold) — see there for why they preserve
                    // answers exactly.
                    let rowmin = tree.slabs.kid_rowmin_of(child);
                    let mut base_min = f64::INFINITY;
                    let mut lb = f64::INFINITY;
                    for (&b, &r) in base_vec.iter().zip(base_rows) {
                        if b < base_min {
                            base_min = b;
                        }
                        if b.is_finite() {
                            let v = b + rowmin[r as usize];
                            if v < lb {
                                lb = v;
                            }
                        }
                    }
                    let bound = dk(best);
                    if base_min + tree.slabs.kid_lb(child) > bound || lb > bound {
                        if trace.active() {
                            trace.nodes_pruned += 1;
                        }
                        continue;
                    }
                    if trace.active() {
                        trace.slab_rows += base_rows.len() as u64;
                    }
                    tree.derive_child_vec_slab_into(
                        node_idx, base_rows, base_vec, child, child_vec,
                    );
                    let mind_c = child_vec.iter().copied().fold(f64::INFINITY, f64::min);
                    if mind_c <= dk(best) {
                        let h = arena.push(child_vec);
                        heap.push(Reverse((TotalF64(mind_c), child, h)));
                        if trace.active() {
                            trace.nodes_pushed += 1;
                        }
                    } else if trace.active() {
                        trace.nodes_pruned += 1;
                    }
                    continue;
                }
                let (base_ads, base_handle) = if node_on_path {
                    let sib = tree.child_towards(node_idx, asc.steps()[0].node);
                    debug_assert!(asc.on_path(tree, sib), "sibling on ascent");
                    (
                        &tree.node(sib).access_doors,
                        step_handles[tree.node(sib).level as usize - 1],
                    )
                } else {
                    (&node.access_doors, handle)
                };
                tree.derive_child_vec_into(
                    node_idx,
                    child,
                    base_ads,
                    arena.get(base_handle),
                    child_vec,
                );
                let mind_c = child_vec.iter().copied().fold(f64::INFINITY, f64::min);
                if mind_c <= dk(best) {
                    let h = arena.push(child_vec);
                    heap.push(Reverse((TotalF64(mind_c), child, h)));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                } else if trace.active() {
                    trace.nodes_pruned += 1;
                }
            }
        }

        let th = trace.start();
        let mut out: Vec<(ObjectId, f64)> = best.drain().map(|(TotalF64(d), o)| (o, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        trace.stop_heap(th);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_keyword_leaf(
        &self,
        tree: &IpTree,
        q: &IndoorPoint,
        leaf: NodeIdx,
        vec: &[f64],
        asc: &Ascent,
        term: TermId,
        k: usize,
        marks: &mut EpochMarks,
        dq: &mut Vec<f64>,
        trace: &mut crate::telemetry::QueryTrace,
        best: &mut BinaryHeap<(TotalF64, ObjectId)>,
    ) {
        let bound = if best.len() < k {
            f64::INFINITY
        } else {
            best.peek().unwrap().0 .0
        };
        let mut kb = 0u64;
        let mut emit = |o: ObjectId, d: f64| {
            if !self.object_has(o, term) || !d.is_finite() {
                return;
            }
            // (distance, id) tie-break — see `IpTree::knn_from_ascent`.
            if best.len() < k || (TotalF64(d), o) < *best.peek().unwrap() {
                best.push((TotalF64(d), o));
                if best.len() > k {
                    best.pop();
                }
                kb += 1;
            }
        };
        tree.scan_leaf(
            q,
            &self.objects,
            leaf,
            vec,
            asc,
            bound,
            marks,
            dq,
            trace,
            &mut emit,
        );
        if trace.active() {
            trace.kbest_updates += kb;
        }
    }
}

/// Add `delta` to the counts of `terms` in `leaf` and every ancestor,
/// dropping entries that reach zero (so `subtree_has` stays a plain
/// membership probe).
fn adjust_term_counts(
    tree: &IpTree,
    node_terms: &mut [HashMap<TermId, u32>],
    leaf: NodeIdx,
    terms: &[TermId],
    delta: i64,
) {
    let mut cur = leaf;
    loop {
        let counts = &mut node_terms[cur as usize];
        for &t in terms {
            let c = counts.entry(t).or_insert(0);
            *c = (*c as i64 + delta) as u32;
            if *c == 0 {
                counts.remove(&t);
            }
        }
        let parent = tree.node(cur).parent;
        if parent == NO_NODE {
            break;
        }
        cur = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VipTreeConfig;
    use indoor_synth::{random_venue, workload};
    use std::sync::Arc;

    fn label_for(i: usize) -> Vec<String> {
        match i % 3 {
            0 => vec!["washroom".into()],
            1 => vec!["atm".into(), "kiosk".into()],
            _ => vec!["kiosk".into()],
        }
    }

    #[test]
    fn keyword_knn_matches_filtered_brute_force() {
        for seed in [3u64, 41, 777] {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let points = workload::place_objects(&venue, 18, seed);
            let labelled: Vec<(indoor_model::IndoorPoint, Vec<String>)> = points
                .iter()
                .enumerate()
                .map(|(i, p)| (*p, label_for(i)))
                .collect();
            let kw = KeywordObjects::build(&tree, &labelled);

            // Unfiltered index for ground-truth distances.
            let plain = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            plain.attach_objects(&points);

            for q in workload::query_points(&venue, 6, seed ^ 0xE) {
                for label in ["washroom", "atm", "kiosk", "missing"] {
                    let got = kw.knn_keyword(&tree, &q, 3, label);
                    // Brute force: all objects ranked, filtered by label.
                    let all = plain.knn(&q, points.len());
                    let want: Vec<(ObjectId, f64)> = all
                        .into_iter()
                        .filter(|(o, _)| labelled[o.index()].1.iter().any(|l| l == label))
                        .take(3)
                        .collect();
                    assert_eq!(got.len(), want.len(), "label {label} seed {seed}");
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g.1 - w.1).abs() < 1e-9 * g.1.max(1.0),
                            "label {label}: {got:?} vs {want:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_term_returns_empty() {
        let venue = Arc::new(random_venue(5));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let kw = KeywordObjects::build(&tree, &[]);
        let q = workload::query_points(&venue, 1, 1)[0];
        assert!(kw.knn_keyword(&tree, &q, 3, "anything").is_empty());
    }
}
