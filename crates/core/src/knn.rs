//! Algorithm 5: k nearest neighbours and range queries (§3.4).
//!
//! Best-first branch-and-bound over the tree. `mindist(q, N)` is zero for
//! nodes containing `q` (their access-door distances come from the query's
//! ascent); for any other node it is derived incrementally from its
//! parent's vector via the parent's matrix — Lemma 8 when the parent
//! contains `q` (route through the sibling's access doors), Lemma 9
//! otherwise. Leaves are scanned through the per-access-door sorted object
//! lists with early termination at the current `d_k`.
//!
//! The traversal state is allocation-lean: every distance vector lives in
//! one flat [`DistArena`] addressed by `u32` handles (heap/stack entries
//! carry `(node, handle)`, never owned vectors), ascent lookups are O(1)
//! level-indexed (see [`Ascent::step_for`]), and child vectors are
//! computed into a reused scratch buffer before being appended to the
//! arena.

use crate::ascent::Ascent;
use crate::exec::{EpochMarks, QueryScratch};
use crate::objects::ObjectIndex;
use crate::tree::{IpTree, NodeIdx};
use geometry::TotalF64;
use indoor_model::{IndoorPoint, ObjectId, QueryStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bump arena of access-door distance vectors.
///
/// Branch-and-bound used to clone a `Vec<f64>` per visited node (ascent
/// vectors were cloned wholesale on every push); the arena stores each
/// vector once, contiguously, and hands out dense `u32` handles.
#[derive(Debug, Default)]
pub(crate) struct DistArena {
    data: Vec<f64>,
    spans: Vec<(u32, u32)>,
}

impl DistArena {
    /// Drop every vector, keeping the allocation for the next query.
    pub(crate) fn clear(&mut self) {
        self.data.clear();
        self.spans.clear();
    }

    /// Re-seed the arena with every ascent step's distance vector; the
    /// handles written to `handles` are aligned with `asc.steps()`
    /// (level − 1 indexing).
    pub(crate) fn seed(&mut self, asc: &Ascent, handles: &mut Vec<u32>) {
        self.clear();
        handles.clear();
        for s in asc.steps() {
            handles.push(self.push(&s.dists));
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, v: &[f64]) -> u32 {
        let start = self.data.len() as u32;
        self.data.extend_from_slice(v);
        self.spans.push((start, v.len() as u32));
        (self.spans.len() - 1) as u32
    }

    #[inline]
    pub(crate) fn get(&self, handle: u32) -> &[f64] {
        let (start, len) = self.spans[handle as usize];
        &self.data[start as usize..(start + len) as usize]
    }
}

/// A validated-but-unpublished object delta batch from
/// [`IpTree::prepare_object_deltas`]. Holds the tree's updater mutex, so
/// no other delta batch can interleave between prepare and
/// [`PreparedObjectDeltas::install`]; dropping it abandons the batch.
pub(crate) struct PreparedObjectDeltas<'a> {
    tree: &'a IpTree,
    _guard: std::sync::MutexGuard<'a, ()>,
    next: ObjectIndex,
    report: crate::objects::DeltaReport,
}

impl PreparedObjectDeltas<'_> {
    /// Publish the prepared snapshot (swap, then generation bump).
    pub(crate) fn install(self) -> crate::objects::DeltaReport {
        *self.tree.objects.write().expect("objects lock") = Some(std::sync::Arc::new(self.next));
        // Swap before bump: a reader observing the new generation is
        // guaranteed to read (at least) the new snapshot.
        self.tree
            .objects_gen
            .fetch_add(1, std::sync::atomic::Ordering::Release);
        self.report
    }
}

impl IpTree {
    /// Attach an object set, replacing any previous one (§3.4).
    ///
    /// Takes `&self`: the new index is built off to the side and swapped
    /// in, so concurrent queries keep serving the previous snapshot until
    /// the swap and the fresh one afterwards — never a torn state.
    pub fn attach_objects(&self, objects: &[IndoorPoint]) {
        let oi = ObjectIndex::build(self, objects);
        self.install_objects(oi);
    }

    /// Absorb a batch of object deltas (insert/remove/move) into the
    /// attached object set — or into an empty one if none is attached.
    ///
    /// Copy-on-write: the current snapshot is cloned (a memcpy of the
    /// buckets — no distance recomputation), the deltas are applied
    /// incrementally to the clone ([`ObjectIndex::apply_delta`] touches
    /// only the leaves the deltas land in), and the clone is swapped in.
    /// Concurrent updaters are serialised by an internal mutex so no
    /// delta batch is ever lost; concurrent queries are never blocked by
    /// an in-progress update.
    pub fn apply_object_deltas(
        &self,
        deltas: &[indoor_model::ObjectDelta],
    ) -> Result<crate::objects::DeltaReport, indoor_model::DeltaError> {
        Ok(self.prepare_object_deltas(deltas)?.install())
    }

    /// First half of [`IpTree::apply_object_deltas`]: validate and build
    /// the next snapshot **without publishing it**. The returned guard
    /// holds the updater mutex; `install` performs the swap, `drop`
    /// abandons the prepared snapshot with the tree untouched.
    ///
    /// This split is what lets a durable service journal-before-apply: it
    /// validates the batch, appends the WAL record, and only then
    /// installs — a failed append discards the prepared state and the
    /// tree never diverges from the log.
    pub(crate) fn prepare_object_deltas<'a>(
        &'a self,
        deltas: &[indoor_model::ObjectDelta],
    ) -> Result<PreparedObjectDeltas<'a>, indoor_model::DeltaError> {
        let guard = self.objects_update.lock().expect("object update lock");
        let current = self.objects.read().expect("objects lock").clone();
        let mut next = match current {
            Some(arc) => (*arc).clone(),
            None => ObjectIndex::empty(self),
        };
        let report = next.apply_delta(self, deltas)?;
        Ok(PreparedObjectDeltas {
            tree: self,
            _guard: guard,
            next,
            report,
        })
    }

    /// As [`IpTree::attach_objects`] with caller-assigned stable ids (ids
    /// may have gaps — e.g. the live set surviving a delta history). The
    /// from-scratch reference of the delta-vs-rebuild equivalence
    /// contract (`tests/object_deltas.rs`).
    pub fn attach_objects_with_ids(&self, objects: &[(ObjectId, IndoorPoint)]) {
        self.install_objects(ObjectIndex::build_with_ids(self, objects));
    }

    /// Install a pre-built object index (swap; see
    /// [`IpTree::attach_objects`]).
    pub(crate) fn install_objects(&self, oi: ObjectIndex) {
        let _serialise = self.objects_update.lock().expect("object update lock");
        *self.objects.write().expect("objects lock") = Some(std::sync::Arc::new(oi));
        self.objects_gen
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// The embedded object index snapshot, if any.
    pub fn object_index(&self) -> Option<std::sync::Arc<ObjectIndex>> {
        self.objects.read().expect("objects lock").clone()
    }

    /// The object-snapshot generation: bumped, *after* the swap, by every
    /// object mutation — [`IpTree::attach_objects`],
    /// [`IpTree::apply_object_deltas`], or anything else holding a tree
    /// handle. Result caches key object answers by this stamp, so even
    /// out-of-band mutation through a shared handle invalidates them
    /// structurally.
    pub fn objects_generation(&self) -> u64 {
        self.objects_gen.load(std::sync::atomic::Ordering::Acquire)
    }

    /// k nearest neighbours of `q` (ascending by distance). Empty when no
    /// objects are attached.
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.scratch.checkout();
        self.knn_in(q, k, &mut scratch)
    }

    /// All objects within `radius` of `q` (ascending by distance).
    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.scratch.checkout();
        self.range_in(q, radius, &mut scratch)
    }

    /// As [`IpTree::knn`] with caller-owned scratch state.
    pub fn knn_in(
        &self,
        q: &IndoorPoint,
        k: usize,
        scratch: &mut QueryScratch,
    ) -> Vec<(ObjectId, f64)> {
        self.knn_stats(q, k, scratch, &mut QueryStats::default())
    }

    /// As [`IpTree::range`] with caller-owned scratch state.
    pub fn range_in(
        &self,
        q: &IndoorPoint,
        radius: f64,
        scratch: &mut QueryScratch,
    ) -> Vec<(ObjectId, f64)> {
        self.range_stats(q, radius, scratch, &mut QueryStats::default())
    }

    pub fn knn_with_stats(
        &self,
        q: &IndoorPoint,
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.scratch.checkout();
        self.knn_stats(q, k, &mut scratch, stats)
    }

    pub fn range_with_stats(
        &self,
        q: &IndoorPoint,
        radius: f64,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.scratch.checkout();
        self.range_stats(q, radius, &mut scratch, stats)
    }

    pub(crate) fn knn_stats(
        &self,
        q: &IndoorPoint,
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        self.ascend_into(q, self.root(), &mut scratch.asc_s);
        self.knn_from_ascent(q, k, scratch, stats)
    }

    pub(crate) fn range_stats(
        &self,
        q: &IndoorPoint,
        radius: f64,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        self.ascend_into(q, self.root(), &mut scratch.asc_s);
        self.range_from_ascent(q, radius, scratch, stats)
    }

    /// Algorithm 5 over the ascent already recorded in `scratch.asc_s`
    /// (the VIP-tree records a table-backed one).
    pub(crate) fn knn_from_ascent(
        &self,
        q: &IndoorPoint,
        k: usize,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        stats.queries += 1;
        let Some(oi) = self.object_index() else {
            return Vec::new();
        };
        let oi = &*oi;
        if k == 0 || oi.num_live() == 0 {
            return Vec::new();
        }
        let QueryScratch {
            asc_s,
            arena,
            step_handles,
            child_vec,
            heap,
            best,
            marks,
            leaf_dq,
            trace,
            ..
        } = scratch;
        let asc = &*asc_s;
        // Current k-best as a max-heap: peek() is d_k.
        best.clear();
        let dk = |best: &BinaryHeap<(TotalF64, ObjectId)>| {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.peek().unwrap().0 .0
            }
        };
        // Tie-break by (distance, id): the k-best set is the k smallest
        // pairs, independent of leaf-scan encounter order — which makes
        // answers byte-identical across physically different layouts of
        // the same live object set (delta-maintained vs rebuilt).
        // Returns whether the candidate entered the k-best set.
        let consider = |best: &mut BinaryHeap<(TotalF64, ObjectId)>, o: ObjectId, d: f64| {
            if d.is_finite() && (best.len() < k || (TotalF64(d), o) < *best.peek().unwrap()) {
                best.push((TotalF64(d), o));
                if best.len() > k {
                    best.pop();
                }
                true
            } else {
                false
            }
        };

        arena.seed(asc, step_handles);
        heap.clear();
        heap.push(Reverse((
            TotalF64(0.0),
            self.root(),
            *step_handles.last().expect("ascent is non-empty"),
        )));
        if trace.active() {
            trace.nodes_pushed += 1;
        }
        let slab = self.uses_hot_layout();

        while let Some(Reverse((TotalF64(mind), node_idx, handle))) = heap.pop() {
            if mind > dk(best) {
                break;
            }
            stats.nodes_visited += 1;
            let node = self.node(node_idx);
            if node.is_leaf() {
                let mut kb = 0u64;
                self.scan_leaf(
                    q,
                    oi,
                    node_idx,
                    arena.get(handle),
                    asc,
                    dk(best),
                    marks,
                    leaf_dq,
                    trace,
                    &mut |o, d| {
                        if consider(best, o, d) {
                            kb += 1;
                        }
                    },
                );
                if trace.active() {
                    trace.kbest_updates += kb;
                }
                continue;
            }
            let node_on_path = asc.on_path(self, node_idx);
            for &child in &node.children {
                if oi.subtree_count[child as usize] == 0 {
                    continue;
                }
                if let Some(step) = asc.step_for(self, child) {
                    // Child contains q: mindist 0, vector from the ascent.
                    let h = step_handles[self.node(step.node).level as usize - 1];
                    heap.push(Reverse((TotalF64(0.0), child, h)));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                    continue;
                }
                if slab {
                    // Implicit layout: base rows are precomputed column
                    // ordinals in this node's slab (inner matrices are
                    // square, so column ordinals double as row indices).
                    let (base_rows, base_handle) = if node_on_path {
                        let sib = self.child_towards(node_idx, asc.steps()[0].node);
                        debug_assert_ne!(sib, child);
                        debug_assert!(asc.on_path(self, sib), "sibling on ascent path");
                        (
                            self.slabs.kid_cols_of(sib),
                            step_handles[self.node(sib).level as usize - 1],
                        )
                    } else {
                        (self.slabs.own_cols_of(node_idx), handle)
                    };
                    let base_vec = arena.get(base_handle);
                    // Admissible lower bounds, cheapest first: the PL
                    // table's O(1) floor `base_min + kid_lb(child)`, then
                    // the exact per-row fold `min_bi base[bi] +
                    // rowmin(child)[row(bi)]`. Neither exceeds any derived
                    // entry (each summand lower-bounds its factor exactly
                    // and fl(+) is monotone non-decreasing), so a child
                    // failing either would fail `mind_c <= d_k` too —
                    // skip it without touching a matrix row.
                    let rowmin = self.slabs.kid_rowmin_of(child);
                    let mut base_min = f64::INFINITY;
                    let mut lb = f64::INFINITY;
                    for (&b, &r) in base_vec.iter().zip(base_rows) {
                        if b < base_min {
                            base_min = b;
                        }
                        if b.is_finite() {
                            let v = b + rowmin[r as usize];
                            if v < lb {
                                lb = v;
                            }
                        }
                    }
                    stats.bound_candidates += 1;
                    let bound = dk(best);
                    if base_min + self.slabs.kid_lb(child) > bound || lb > bound {
                        stats.bound_pruned += 1;
                        if trace.active() {
                            trace.nodes_pruned += 1;
                        }
                        continue;
                    }
                    if trace.active() {
                        trace.slab_rows += base_rows.len() as u64;
                    }
                    self.derive_child_vec_slab_into(
                        node_idx, base_rows, base_vec, child, child_vec,
                    );
                    let mind_c = child_vec.iter().copied().fold(f64::INFINITY, f64::min);
                    if mind_c <= dk(best) {
                        let h = arena.push(child_vec);
                        heap.push(Reverse((TotalF64(mind_c), child, h)));
                        if trace.active() {
                            trace.nodes_pushed += 1;
                        }
                    } else if trace.active() {
                        trace.nodes_pruned += 1;
                    }
                    continue;
                }
                // Lemma 8/9: derive the child's vector from this node.
                let (base_ads, base_handle) = if node_on_path {
                    // Node contains q: go through the sibling on q's path.
                    let sib = self.child_towards(node_idx, asc.steps()[0].node);
                    debug_assert_ne!(sib, child);
                    debug_assert!(asc.on_path(self, sib), "sibling on ascent path");
                    (
                        &self.node(sib).access_doors,
                        step_handles[self.node(sib).level as usize - 1],
                    )
                } else {
                    (&node.access_doors, handle)
                };
                self.derive_child_vec_into(
                    node_idx,
                    child,
                    base_ads,
                    arena.get(base_handle),
                    child_vec,
                );
                let mind_c = child_vec.iter().copied().fold(f64::INFINITY, f64::min);
                if mind_c <= dk(best) {
                    let h = arena.push(child_vec);
                    heap.push(Reverse((TotalF64(mind_c), child, h)));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                } else if trace.active() {
                    trace.nodes_pruned += 1;
                }
            }
        }

        let th = trace.start();
        let mut out: Vec<(ObjectId, f64)> = best.drain().map(|(TotalF64(d), o)| (o, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        trace.stop_heap(th);
        out
    }

    pub(crate) fn range_from_ascent(
        &self,
        q: &IndoorPoint,
        radius: f64,
        scratch: &mut QueryScratch,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        stats.queries += 1;
        let Some(oi) = self.object_index() else {
            return Vec::new();
        };
        let oi = &*oi;
        let QueryScratch {
            asc_s,
            arena,
            step_handles,
            child_vec,
            stack,
            marks,
            leaf_dq,
            trace,
            ..
        } = scratch;
        let asc = &*asc_s;
        let mut out: Vec<(ObjectId, f64)> = Vec::new();
        arena.seed(asc, step_handles);

        // Plain DFS with the fixed bound (Algorithm 5 with d_k = r).
        stack.clear();
        stack.push((
            self.root(),
            *step_handles.last().expect("ascent is non-empty"),
        ));
        if trace.active() {
            trace.nodes_pushed += 1;
        }
        let slab = self.uses_hot_layout();
        while let Some((node_idx, handle)) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.node(node_idx);
            let contains_q = asc.on_path(self, node_idx);
            let mind = if contains_q {
                0.0
            } else {
                arena
                    .get(handle)
                    .iter()
                    .copied()
                    .fold(f64::INFINITY, f64::min)
            };
            if mind > radius {
                continue;
            }
            if node.is_leaf() {
                let mut kb = 0u64;
                self.scan_leaf(
                    q,
                    oi,
                    node_idx,
                    arena.get(handle),
                    asc,
                    radius,
                    marks,
                    leaf_dq,
                    trace,
                    &mut |o, d| {
                        if d <= radius {
                            out.push((o, d));
                            kb += 1;
                        }
                    },
                );
                if trace.active() {
                    trace.kbest_updates += kb;
                }
                continue;
            }
            for &child in &node.children {
                if oi.subtree_count[child as usize] == 0 {
                    continue;
                }
                if let Some(step) = asc.step_for(self, child) {
                    let h = step_handles[self.node(step.node).level as usize - 1];
                    stack.push((child, h));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                    continue;
                }
                if slab {
                    let (base_rows, base_handle) = if contains_q {
                        let sib = self.child_towards(node_idx, asc.steps()[0].node);
                        debug_assert!(asc.on_path(self, sib), "sibling on ascent path");
                        (
                            self.slabs.kid_cols_of(sib),
                            step_handles[self.node(sib).level as usize - 1],
                        )
                    } else {
                        (self.slabs.own_cols_of(node_idx), handle)
                    };
                    let base_vec = arena.get(base_handle);
                    // A child whose lower bound already exceeds the radius
                    // cannot hold an in-range object; skip the derive (the
                    // PL floor first, then the exact per-row fold — see
                    // knn_from_ascent for the admissibility argument).
                    let rowmin = self.slabs.kid_rowmin_of(child);
                    let mut base_min = f64::INFINITY;
                    let mut lb = f64::INFINITY;
                    for (&b, &r) in base_vec.iter().zip(base_rows) {
                        if b < base_min {
                            base_min = b;
                        }
                        if b.is_finite() {
                            let v = b + rowmin[r as usize];
                            if v < lb {
                                lb = v;
                            }
                        }
                    }
                    stats.bound_candidates += 1;
                    if base_min + self.slabs.kid_lb(child) > radius || lb > radius {
                        stats.bound_pruned += 1;
                        if trace.active() {
                            trace.nodes_pruned += 1;
                        }
                        continue;
                    }
                    if trace.active() {
                        trace.slab_rows += base_rows.len() as u64;
                    }
                    self.derive_child_vec_slab_into(
                        node_idx, base_rows, base_vec, child, child_vec,
                    );
                    let h = arena.push(child_vec);
                    stack.push((child, h));
                    if trace.active() {
                        trace.nodes_pushed += 1;
                    }
                    continue;
                }
                let (base_ads, base_handle) = if contains_q {
                    let sib = self.child_towards(node_idx, asc.steps()[0].node);
                    debug_assert!(asc.on_path(self, sib), "sibling on ascent path");
                    (
                        &self.node(sib).access_doors,
                        step_handles[self.node(sib).level as usize - 1],
                    )
                } else {
                    (&node.access_doors, handle)
                };
                self.derive_child_vec_into(
                    node_idx,
                    child,
                    base_ads,
                    arena.get(base_handle),
                    child_vec,
                );
                let h = arena.push(child_vec);
                stack.push((child, h));
                if trace.active() {
                    trace.nodes_pushed += 1;
                }
            }
        }
        let th = trace.start();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        trace.stop_heap(th);
        out
    }

    /// dist(q, a') for a' ∈ AD(child) = min over base doors b of
    /// `base_vec[b] + M_parent(b, a')` (Lemmas 8 & 9: both the sibling
    /// case and the outside case route through a known door set whose
    /// pairwise distances live in the parent's matrix). Writes into `out`
    /// so callers can reuse one scratch buffer across the traversal.
    pub(crate) fn derive_child_vec_into(
        &self,
        parent: NodeIdx,
        child: NodeIdx,
        base_ads: &[indoor_model::DoorId],
        base_vec: &[f64],
        out: &mut Vec<f64>,
    ) {
        let pm = &self.node(parent).matrix;
        let child_ads = &self.node(child).access_doors;
        out.clear();
        out.reserve(child_ads.len());
        for &a in child_ads {
            let col = pm.col_index(a).expect("child AD in parent matrix");
            let mut bestv = f64::INFINITY;
            for (bi, &b) in base_ads.iter().enumerate() {
                if !base_vec[bi].is_finite() {
                    continue;
                }
                let row = pm.row_index(b).expect("base door in parent matrix");
                let cand = base_vec[bi] + pm.at(row, col);
                if cand < bestv {
                    bestv = cand;
                }
            }
            out.push(bestv);
        }
    }

    /// Slab-layout twin of [`IpTree::derive_child_vec_into`]: base rows
    /// and child columns are precomputed ordinal runs ([`crate::Slabs`]),
    /// so the double loop streams one cache-aligned row slice per base
    /// door instead of probing `row_index`/`col_index` per element. The
    /// output is bit-identical to the pointer variant: the same
    /// `base + matrix` additions, minimised over the same candidate set.
    pub(crate) fn derive_child_vec_slab_into(
        &self,
        parent: NodeIdx,
        base_rows: &[u32],
        base_vec: &[f64],
        child: NodeIdx,
        out: &mut Vec<f64>,
    ) {
        debug_assert_eq!(base_rows.len(), base_vec.len());
        let cols = self.slabs.kid_cols_of(child);
        out.clear();
        out.resize(cols.len(), f64::INFINITY);
        for (bi, &r) in base_rows.iter().enumerate() {
            let b = base_vec[bi];
            if !b.is_finite() {
                continue;
            }
            let row = self.slabs.row(parent, r as usize);
            for (o, &c) in out.iter_mut().zip(cols) {
                let cand = b + row[c as usize];
                if cand < *o {
                    *o = cand;
                }
            }
        }
    }

    /// Report candidate objects of one leaf through `emit(obj, exact_dist)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_leaf(
        &self,
        q: &IndoorPoint,
        oi: &ObjectIndex,
        leaf: NodeIdx,
        vec: &[f64],
        asc: &Ascent,
        bound: f64,
        marks: &mut EpochMarks,
        dq: &mut Vec<f64>,
        trace: &mut crate::telemetry::QueryTrace,
        emit: &mut dyn FnMut(ObjectId, f64),
    ) {
        let Some(data) = oi.leaf_data.get(&leaf) else {
            return;
        };
        let venue = &*self.venue;
        if asc.on_path(self, leaf) {
            let t0 = trace.start();
            // q's own leaf: exact distances via the leaf door grid — one
            // seed × row fold replaces the per-query D2D expansion that
            // used to dominate kNN/range latency (DESIGN.md §14.4). The
            // grid builds lazily on this first touch (counted, and billed
            // to the leaf-fold phase by the trace above).
            let node = self.node(leaf);
            self.leaf_grid.ensure(venue, node, leaf);
            let n = node.doors.len();
            dq.clear();
            dq.resize(n, f64::INFINITY);
            for (sd, sdist) in q.door_seeds(venue) {
                let s = node
                    .doors
                    .binary_search(&indoor_model::DoorId(sd))
                    .expect("query partition door is a leaf door");
                let trow = self.leaf_grid.row(leaf, s);
                for (out, &t) in dq.iter_mut().zip(trow) {
                    let cand = sdist + t;
                    if cand < *out {
                        *out = cand;
                    }
                }
            }
            for (slot, oid) in data.objs.iter().enumerate() {
                if !data.live[slot] {
                    continue; // tombstoned by a delta
                }
                let o = oi.object(*oid);
                let mut d = q.direct_distance(venue, o).unwrap_or(f64::INFINITY);
                for &door in &venue.partition(o.partition).doors {
                    let t = node
                        .doors
                        .binary_search(&door)
                        .expect("object partition door is a leaf door");
                    let cand = dq[t] + o.distance_to_door(venue, door);
                    if cand < d {
                        d = cand;
                    }
                }
                emit(*oid, d);
            }
            trace.stop_leaf_fold(t0);
            return;
        }

        data.emit_candidates(vec, bound, marks, emit);
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::VipTreeConfig;
    use crate::{IpTree, VipTree};
    use indoor_graph::DijkstraEngine;
    use indoor_model::IndoorPoint;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    #[ignore]
    fn profile_mc_knn_phases() {
        use std::time::Instant;
        let venue = Arc::new(indoor_synth::presets::melbourne_central().build());
        let objects = workload::place_objects(&venue, 200, 0xB0B);
        let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        tree.attach_objects(&objects);
        let points = workload::query_points(&venue, 300, 0x9E);
        for q in &points {
            std::hint::black_box(tree.knn(q, 5));
        }
        let t0 = Instant::now();
        for q in &points {
            std::hint::black_box(tree.knn(q, 5));
        }
        let total = t0.elapsed();
        let ip = tree.ip_tree();
        let mut scratch = ip.scratch.checkout();
        let t0 = Instant::now();
        for q in &points {
            tree.ascend_via_tables_into(q, ip.root(), &mut scratch.asc_s);
            std::hint::black_box(scratch.asc_s.steps().len());
        }
        let asc_t = t0.elapsed();
        let t0 = Instant::now();
        for q in &points {
            tree.ascend_via_tables_into(q, ip.root(), &mut scratch.asc_s);
            let leaf = scratch.asc_s.steps()[0].node;
            let node = ip.node(leaf);
            let targets: Vec<u32> = node.doors.iter().map(|d| d.0).collect();
            let mut engine = ip.engines.checkout();
            engine.run(
                venue.d2d(),
                &q.door_seeds(&venue),
                indoor_graph::Termination::SettleAll(&targets),
            );
            std::hint::black_box(engine.settled_distance(targets[0]));
        }
        let leaf_t = t0.elapsed();
        let oi = ip.object_index().unwrap();
        let t0 = Instant::now();
        for q in &points {
            tree.ascend_via_tables_into(q, ip.root(), &mut scratch.asc_s);
            let leaf = scratch.asc_s.steps()[0].node;
            let Some(data) = oi.leaf_data.get(&leaf) else {
                continue;
            };
            let mut targets: Vec<u32> = Vec::new();
            for (slot, oid) in data.objs.iter().enumerate() {
                if !data.live[slot] {
                    continue;
                }
                let o = oi.object(*oid);
                for &door in &venue.partition(o.partition).doors {
                    targets.push(door.0);
                }
            }
            targets.sort_unstable();
            targets.dedup();
            let mut engine = ip.engines.checkout();
            engine.run(
                venue.d2d(),
                &q.door_seeds(&venue),
                indoor_graph::Termination::SettleAll(&targets),
            );
            std::hint::black_box(targets.len());
        }
        let obj_t = t0.elapsed();
        let t0 = Instant::now();
        for q in &points {
            std::hint::black_box(tree.range(q, 150.0));
        }
        let range_t = t0.elapsed();
        eprintln!(
            "knn total {:.2}us  ascent {:.2}us  ascent+ownleaf-dijkstra {:.2}us  objdoor-dijkstra {:.2}us  range total {:.2}us",
            total.as_secs_f64() * 1e6 / 300.0,
            asc_t.as_secs_f64() * 1e6 / 300.0,
            leaf_t.as_secs_f64() * 1e6 / 300.0,
            obj_t.as_secs_f64() * 1e6 / 300.0,
            range_t.as_secs_f64() * 1e6 / 300.0,
        );
    }

    #[test]
    fn arena_handles_round_trip() {
        let mut arena = super::DistArena::default();
        let a = arena.push(&[1.0, 2.0]);
        let b = arena.push(&[]);
        let c = arena.push(&[3.0]);
        assert_eq!(arena.get(a), &[1.0, 2.0]);
        assert_eq!(arena.get(b), &[] as &[f64]);
        assert_eq!(arena.get(c), &[3.0]);
    }

    /// Brute force: oracle distance to every object, sorted.
    fn brute_force(
        venue: &indoor_model::Venue,
        engine: &mut DijkstraEngine,
        q: &IndoorPoint,
        objects: &[IndoorPoint],
    ) -> Vec<f64> {
        let mut d: Vec<f64> = objects
            .iter()
            .filter_map(|o| crate::ascent::tests::oracle_distance(venue, engine, q, o))
            .collect();
        d.sort_by(f64::total_cmp);
        d
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn knn_matches_brute_force(seed in 0u64..1_500, k in 1usize..8, n_obj in 1usize..30) {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let objects = workload::place_objects(&venue, n_obj, seed ^ 0x0B);
            tree.attach_objects(&objects);
            let mut engine = DijkstraEngine::new(venue.num_doors());

            for q in workload::query_points(&venue, 6, seed ^ 0x5151) {
                let got = tree.knn(&q, k);
                let want = brute_force(&venue, &mut engine, &q, &objects);
                let expect_len = k.min(want.len());
                prop_assert_eq!(got.len(), expect_len, "seed {} q {:?}", seed, q);
                for (i, (_, d)) in got.iter().enumerate() {
                    prop_assert!((d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                        "seed {}: rank {} got {} want {}", seed, i, d, want[i]);
                }
                // Distances ascending.
                for w in got.windows(2) {
                    prop_assert!(w[0].1 <= w[1].1 + 1e-12);
                }
            }
        }

        #[test]
        fn range_matches_brute_force(seed in 0u64..1_500, n_obj in 1usize..30) {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let objects = workload::place_objects(&venue, n_obj, seed ^ 0x0C);
            tree.attach_objects(&objects);
            let mut engine = DijkstraEngine::new(venue.num_doors());

            for q in workload::query_points(&venue, 5, seed ^ 0xFEED) {
                for radius in [10.0, 60.0, 300.0] {
                    let got = tree.range(&q, radius);
                    let want: Vec<f64> = brute_force(&venue, &mut engine, &q, &objects)
                        .into_iter()
                        .filter(|d| *d <= radius)
                        .collect();
                    prop_assert_eq!(got.len(), want.len(),
                        "seed {} radius {}: got {:?} want {:?}", seed, radius, got, want);
                    for (g, w) in got.iter().zip(&want) {
                        prop_assert!((g.1 - w).abs() < 1e-6 * w.max(1.0));
                    }
                }
            }
        }

        #[test]
        fn vip_knn_agrees_with_ip(seed in 0u64..800) {
            let venue = Arc::new(random_venue(seed));
            let ip = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let objects = workload::place_objects(&venue, 15, seed ^ 0x0D);
            ip.attach_objects(&objects);
            vip.attach_objects(&objects);
            for q in workload::query_points(&venue, 4, seed ^ 0xB0B) {
                let a = ip.knn(&q, 5);
                let b = vip.knn(&q, 5);
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!((x.1 - y.1).abs() < 1e-9 * x.1.max(1.0));
                }
            }
        }
    }
}
