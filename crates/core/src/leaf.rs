//! Leaf creation (§2.1.2 step 1).
//!
//! Every hallway-class partition seeds its own leaf (rule ii: no leaf may
//! contain two hallways). Remaining partitions are merged into adjacent
//! leaves round by round, each partition choosing the leaf it shares the
//! most doors with; ties prefer a leaf whose hallway is on the same floor
//! (rule i), then the smallest leaf id (determinism). Partitions in
//! hallway-free pockets that never touch a leaf are grouped into leaves by
//! connected component.

use indoor_model::{PartitionClass, PartitionId, Venue};

/// Result of leaf assignment: for each partition, its leaf number, plus
/// the per-leaf partition lists.
pub(crate) struct LeafAssignment {
    pub leaf_of_partition: Vec<u32>,
    pub leaf_partitions: Vec<Vec<PartitionId>>,
}

const UNASSIGNED: u32 = u32::MAX;

pub(crate) fn assign_leaves(venue: &Venue) -> LeafAssignment {
    let np = venue.num_partitions();
    let mut leaf_of: Vec<u32> = vec![UNASSIGNED; np];
    let mut leaf_partitions: Vec<Vec<PartitionId>> = Vec::new();
    // Level of the seeding hallway (for the same-floor tie-break); NONE for
    // component leaves.
    let mut leaf_level: Vec<Option<i32>> = Vec::new();

    // 1. One leaf per hallway partition.
    for p in venue.partitions() {
        if venue.class(p.id) == PartitionClass::Hallway {
            let leaf = leaf_partitions.len() as u32;
            leaf_of[p.id.index()] = leaf;
            leaf_partitions.push(vec![p.id]);
            leaf_level.push(Some(p.level));
        }
    }

    // 2. Rounds: every unassigned partition adjacent to >= 1 leaf picks the
    // leaf with the most shared doors (rule i generalised to grown leaves).
    loop {
        let mut decisions: Vec<(PartitionId, u32)> = Vec::new();
        for p in venue.partitions() {
            if leaf_of[p.id.index()] != UNASSIGNED {
                continue;
            }
            // Count doors shared with each adjacent leaf.
            let mut best: Option<(u32, usize, bool)> = None; // (leaf, count, same_floor)
            let mut counts: Vec<(u32, usize)> = Vec::new();
            for &d in &p.doors {
                if let Some(q) = venue.door(d).other_side(p.id) {
                    let leaf = leaf_of[q.index()];
                    if leaf != UNASSIGNED {
                        match counts.iter_mut().find(|(l, _)| *l == leaf) {
                            Some((_, c)) => *c += 1,
                            None => counts.push((leaf, 1)),
                        }
                    }
                }
            }
            for (leaf, count) in counts {
                let same_floor = leaf_level[leaf as usize] == Some(p.level);
                let better = match best {
                    None => true,
                    Some((bl, bc, bs)) => {
                        count > bc
                            || (count == bc && same_floor && !bs)
                            || (count == bc && same_floor == bs && leaf < bl)
                    }
                };
                if better {
                    best = Some((leaf, count, same_floor));
                }
            }
            if let Some((leaf, _, _)) = best {
                decisions.push((p.id, leaf));
            }
        }
        if decisions.is_empty() {
            break;
        }
        for (p, leaf) in decisions {
            leaf_of[p.index()] = leaf;
            leaf_partitions[leaf as usize].push(p);
        }
    }

    // 3. Hallway-free pockets: group leftover partitions into leaves by
    // connected component over partition adjacency.
    for start in venue.partitions() {
        if leaf_of[start.id.index()] != UNASSIGNED {
            continue;
        }
        let leaf = leaf_partitions.len() as u32;
        leaf_partitions.push(Vec::new());
        leaf_level.push(None);
        let mut stack = vec![start.id];
        leaf_of[start.id.index()] = leaf;
        while let Some(p) = stack.pop() {
            leaf_partitions[leaf as usize].push(p);
            for &d in &venue.partition(p).doors {
                if let Some(q) = venue.door(d).other_side(p) {
                    if leaf_of[q.index()] == UNASSIGNED {
                        leaf_of[q.index()] = leaf;
                        stack.push(q);
                    }
                }
            }
        }
    }

    LeafAssignment {
        leaf_of_partition: leaf_of,
        leaf_partitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_model::PartitionClass;
    use indoor_synth::random_venue;
    use proptest::prelude::*;

    fn check_assignment(venue: &Venue) {
        let a = assign_leaves(venue);
        // Every partition in exactly one leaf; lists consistent.
        let mut seen = vec![false; venue.num_partitions()];
        for (leaf, parts) in a.leaf_partitions.iter().enumerate() {
            assert!(!parts.is_empty(), "empty leaf {leaf}");
            for p in parts {
                assert!(!seen[p.index()], "partition {p} in two leaves");
                seen[p.index()] = true;
                assert_eq!(a.leaf_of_partition[p.index()], leaf as u32);
            }
        }
        assert!(seen.iter().all(|s| *s), "unassigned partition");

        // Rule ii: at most one hallway-class partition per leaf.
        for parts in &a.leaf_partitions {
            let hallways = parts
                .iter()
                .filter(|p| venue.class(**p) == PartitionClass::Hallway)
                .count();
            assert!(hallways <= 1, "leaf with {hallways} hallways");
        }

        // Leaves are internally connected (partition adjacency).
        for parts in &a.leaf_partitions {
            let mut reach = vec![parts[0]];
            let mut frontier = vec![parts[0]];
            while let Some(p) = frontier.pop() {
                for &d in &venue.partition(p).doors {
                    if let Some(q) = venue.door(d).other_side(p) {
                        if parts.contains(&q) && !reach.contains(&q) {
                            reach.push(q);
                            frontier.push(q);
                        }
                    }
                }
            }
            assert_eq!(reach.len(), parts.len(), "disconnected leaf");
        }
    }

    #[test]
    fn paper_figure1_style_venue() {
        // Two hallways with rooms: rooms must join their hallway's leaf.
        let venue = indoor_synth::CampusSpec::single(indoor_synth::BuildingSpec {
            levels: 2,
            rooms_per_level: 10,
            hallways_per_level: 1,
            extra_door_frac: 0.0,
            stairs_per_level: 1,
            lifts: 0,
            ..Default::default()
        })
        .build();
        let a = assign_leaves(&venue);
        // One leaf per hallway (2 levels x 1 corridor) — stairs join one of
        // them, rooms join their corridor.
        assert_eq!(a.leaf_partitions.len(), 2);
        check_assignment(&venue);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn assignment_invariants_hold(seed in 0u64..10_000) {
            let venue = random_venue(seed);
            check_assignment(&venue);
        }
    }
}
