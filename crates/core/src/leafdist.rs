//! Per-leaf door-to-door distance grid: the SoA slab that replaces the
//! per-query D2D expansion of same-leaf scans (DESIGN.md §14.4).
//!
//! `scan_leaf` used to answer "exact distance from `q` to every object in
//! q's own leaf" with a full-graph Dijkstra per query — which profiling
//! shows dominating kNN/range latency on every benchmark preset (the
//! branch-and-bound walk itself is under a microsecond once the slabs are
//! in place). The grid precomputes, per leaf, the full `n × n` matrix of
//! **global** shortest distances between the leaf's doors, so the query
//! path collapses to one seed × row fold.
//!
//! Exactness (the boundary decomposition): a shortest path between two
//! doors `s, t` of the same leaf either stays inside the leaf's
//! partitions, or crosses the leaf boundary. Boundary crossings happen
//! only at access doors — a door adjacent to any outside partition *is*
//! an access door by construction (`build::leaf_protos`) — so splitting a
//! crossing path at the **last** access door `a` it visits leaves a
//! suffix that never re-enters an outside partition (re-entry would pass
//! another access door after `a`). Hence
//!
//! ```text
//! d(s, t) = min( d_intra(s, t),  min over access doors a of
//!                                M(s, a) + M(t, a) )
//! ```
//!
//! where `d_intra` is Dijkstra over the leaf-local subgraph (the same
//! per-partition door cliques the venue's D2D builder emits, restricted
//! to the leaf's partitions) and `M` is the leaf's distance matrix —
//! already global by construction (`matrices::build_leaf_matrix`). Both
//! ingredients exist at build time, so the grid costs no extra
//! full-graph work.
//!
//! Layout mirrors [`crate::slabs::Slabs`]: one f64 arena, 64-byte-aligned
//! rows, per-leaf offset and stride, `+inf` padding lanes. Grid values
//! may differ from a per-query Dijkstra in final-bit rounding (the same
//! edge weights are summed in a different association order), which is
//! why the grid serves **both** the slab and pointer walks — cross-layout
//! byte-identity is preserved because the layouts share these values.

use crate::slabs::ROW_ALIGN;
use crate::tree::{Node, NodeIdx};
use indoor_graph::parallel::par_map;
use indoor_graph::{DijkstraEngine, GraphBuilder, Termination};
use indoor_model::Venue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// One leaf's built grid: a 64-byte-row-aligned slab of `n × n` global
/// door distances (`base` indexes the first aligned element).
#[derive(Debug)]
struct LeafSlab {
    data: Vec<f64>,
    base: usize,
}

/// Per-leaf global door-to-door distance slabs (leaves only; inner nodes
/// keep empty extents).
///
/// Grids build **lazily**: construction records only the per-leaf shape
/// (stride, door count); the `n × n` distance slab of a leaf is computed
/// by [`LeafGrid::ensure`] on its first own-leaf scan. Queries never
/// touch leaves nobody's query point lands in, so cold venues skip the
/// dominant share of grid build work — at the cost of one first-touch
/// build on the query path (attributed to the leaf-fold phase by the
/// telemetry trace, and counted by [`LeafGrid::builds`]). Built rows are
/// bit-identical to an eager build: both call [`leaf_rows`], whose
/// Dijkstra + detour fold is deterministic per leaf
/// (`tests/layout_equivalence.rs` pins this).
#[derive(Debug)]
pub struct LeafGrid {
    /// Per node: the built slab, if any. [`OnceLock`] makes first-touch
    /// builds race-free under `&self` — concurrent scanners of one leaf
    /// block on a single build.
    slabs: Vec<OnceLock<LeafSlab>>,
    /// Per node: row stride (doors rounded up to [`ROW_ALIGN`]) and door
    /// count. Zero extent for non-leaves.
    stride: Vec<u32>,
    n_doors: Vec<u32>,
    n_leaves: usize,
    /// Leaf grids built so far (lazy or forced) — the telemetry counter
    /// behind `indoor_leaf_grid_builds_total`.
    builds: AtomicU64,
}

impl LeafGrid {
    /// Lay out (but do not build) grids for the `n_leaves` leaf nodes at
    /// the front of the node arena.
    pub(crate) fn new(nodes: &[Node], n_leaves: usize) -> LeafGrid {
        let mut stride = Vec::with_capacity(nodes.len());
        let mut n_doors = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let n = if i < n_leaves { node.doors.len() } else { 0 };
            stride.push((n.div_ceil(ROW_ALIGN) * ROW_ALIGN) as u32);
            n_doors.push(n as u32);
        }
        LeafGrid {
            slabs: (0..nodes.len()).map(|_| OnceLock::new()).collect(),
            stride,
            n_doors,
            n_leaves,
            builds: AtomicU64::new(0),
        }
    }

    /// Build leaf `l`'s grid if it hasn't been built yet (the first-touch
    /// path of the own-leaf scan). Concurrent callers for one leaf do the
    /// work once.
    pub(crate) fn ensure(&self, venue: &Venue, node: &Node, l: NodeIdx) {
        let i = l as usize;
        self.slabs[i].get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            let n = self.n_doors[i] as usize;
            let s = self.stride[i] as usize;
            let rows = leaf_rows(venue, node);
            let mut data = vec![f64::INFINITY; n * s + ROW_ALIGN];
            let base = {
                let addr = data.as_ptr() as usize;
                (64 - addr % 64) % 64 / std::mem::size_of::<f64>()
            };
            for r in 0..n {
                data[base + r * s..base + r * s + n].copy_from_slice(&rows[r * n..(r + 1) * n]);
            }
            LeafSlab { data, base }
        });
    }

    /// Build every leaf grid now, fanned over the worker pool — the eager
    /// mode audits and layout-equivalence tests compare against.
    pub(crate) fn force_build(&self, venue: &Venue, nodes: &[Node], threads: usize) {
        let leaf_idxs: Vec<u32> = (0..self.n_leaves as u32).collect();
        par_map(&leaf_idxs, threads, |_, &li| {
            self.ensure(venue, &nodes[li as usize], li);
        });
    }

    /// Leaf grids built so far (lazily or via [`LeafGrid::force_build`]).
    pub(crate) fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Row `s` of leaf `l`'s grid: global distances from the leaf's
    /// door ordinal `s` to every leaf door, in `node.doors` order.
    /// The leaf's grid must have been built ([`LeafGrid::ensure`]).
    #[inline]
    pub(crate) fn row(&self, l: NodeIdx, s: usize) -> &[f64] {
        let i = l as usize;
        let n = self.n_doors[i] as usize;
        debug_assert!(s < n, "row {s} of leaf {l} with {n} doors");
        let slab = self.slabs[i]
            .get()
            .expect("leaf grid row read before ensure()");
        let start = slab.base + s * self.stride[i] as usize;
        #[cfg(feature = "layout-audit")]
        {
            assert!(s < n);
            assert_eq!(
                (slab.data[start..].as_ptr() as usize) % 64,
                0,
                "leaf {l} grid row {s} misaligned"
            );
        }
        &slab.data[start..start + n]
    }

    /// Arena footprint in bytes (built slabs only — lazily deferred grids
    /// cost nothing until first touch).
    pub(crate) fn size_bytes(&self) -> usize {
        let built: usize = self
            .slabs
            .iter()
            .filter_map(|s| s.get())
            .map(|s| s.data.len() * 8)
            .sum();
        built + self.stride.len() * 4 + self.n_doors.len() * 4
    }

    /// Structural + semantic re-verification (test / `layout-audit` use):
    /// every row 64-byte-aligned, diagonals exactly zero, every entry
    /// admissible against the access-door detour bound, and symmetric to
    /// within rounding.
    pub(crate) fn audit(&self, nodes: &[Node]) {
        for (i, node) in nodes.iter().enumerate() {
            let n = self.n_doors[i] as usize;
            if n == 0 {
                continue;
            }
            assert!(node.is_leaf(), "grid extent on inner node {i}");
            assert_eq!(n, node.doors.len(), "leaf {i} grid width");
            let m = &node.matrix;
            let n_ads = m.cols.len();
            for s in 0..n {
                let row = self.row(i as NodeIdx, s);
                assert_eq!(row[s].to_bits(), 0.0_f64.to_bits(), "leaf {i} diagonal {s}");
                for (t, &v) in row.iter().enumerate() {
                    assert!(v >= 0.0, "leaf {i} grid ({s},{t}) negative: {v}");
                    // Never worse than any access-door detour...
                    for a in 0..n_ads {
                        let detour = m.dist[s * n_ads + a] + m.dist[t * n_ads + a];
                        assert!(
                            v <= detour || (v - detour).abs() <= 1e-9 * detour.max(1.0),
                            "leaf {i} grid ({s},{t}) {v} exceeds detour {detour}"
                        );
                    }
                    // ...and symmetric up to summation order.
                    let back = self.row(i as NodeIdx, t)[s];
                    assert!(
                        (v - back).abs() <= 1e-9 * v.max(1.0)
                            || (v.is_infinite() && back.is_infinite()),
                        "leaf {i} grid asymmetry ({s},{t}): {v} vs {back}"
                    );
                }
            }
        }
    }
}

/// The row-major `n × n` global distance table of one leaf (see the
/// module docs for the decomposition argument).
fn leaf_rows(venue: &Venue, node: &Node) -> Vec<f64> {
    let doors = &node.doors;
    let n = doors.len();
    let m = &node.matrix;
    let n_ads = m.cols.len();

    // Leaf-local subgraph: the venue D2D builder's per-partition door
    // cliques, restricted to this leaf's partitions, with identical
    // weights.
    let mut gb = GraphBuilder::new(n);
    for &p in &node.partitions {
        let part = venue.partition(p);
        for (i, &da) in part.doors.iter().enumerate() {
            let oa = doors
                .binary_search(&da)
                .expect("partition door is a leaf door");
            for &db in &part.doors[i + 1..] {
                let ob = doors
                    .binary_search(&db)
                    .expect("partition door is a leaf door");
                let w = part.traversal_distance(&venue.door(da).position, &venue.door(db).position);
                gb.add_edge(oa as u32, ob as u32, w);
            }
        }
    }
    let graph = gb.build();
    let mut engine = DijkstraEngine::new(n);
    let all: Vec<u32> = (0..n as u32).collect();

    let mut out = vec![f64::INFINITY; n * n];
    for s in 0..n {
        engine.run(&graph, &[(s as u32, 0.0)], Termination::SettleAll(&all));
        let row = &mut out[s * n..(s + 1) * n];
        for (t, slot) in row.iter_mut().enumerate() {
            if t == s {
                *slot = 0.0;
                continue;
            }
            if let Some(d) = engine.settled_distance(t as u32) {
                *slot = d;
            }
        }
        // Fold in the access-door detours; together with the intra pass
        // this is the exact global distance.
        for (t, slot) in row.iter_mut().enumerate() {
            let mut best = *slot;
            for a in 0..n_ads {
                let cand = m.dist[s * n_ads + a] + m.dist[t * n_ads + a];
                if cand < best {
                    best = cand;
                }
            }
            *slot = best;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::tree::VipTreeConfig;
    use crate::IpTree;
    use indoor_graph::{DijkstraEngine, Termination};
    use indoor_synth::random_venue;
    use proptest::prelude::*;
    use std::sync::Arc;

    /// The grid equals ground-truth full-graph Dijkstra between every
    /// pair of leaf doors, up to summation-order rounding.
    #[test]
    fn grid_matches_global_dijkstra_on_random_venues() {
        for seed in [0u64, 7, 1234, 4096] {
            check_grid(seed);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn grid_matches_global_dijkstra(seed in 0u64..2_000) {
            check_grid(seed);
        }
    }

    fn check_grid(seed: u64) {
        let venue = Arc::new(random_venue(seed));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        tree.build_leaf_grid(); // grids are lazy; force them for direct row reads
        assert_eq!(
            tree.leaf_grid_builds(),
            tree.nodes.iter().filter(|n| n.is_leaf()).count() as u64,
            "forced build counts every leaf once"
        );
        let mut engine = DijkstraEngine::new(venue.num_doors());
        for (li, node) in tree.nodes.iter().enumerate() {
            if !node.is_leaf() {
                continue;
            }
            let targets: Vec<u32> = node.doors.iter().map(|d| d.0).collect();
            for (s, &sd) in node.doors.iter().enumerate() {
                engine.run(
                    venue.d2d(),
                    &[(sd.0, 0.0)],
                    Termination::SettleAll(&targets),
                );
                let row = tree.leaf_grid.row(li as u32, s);
                for (t, &td) in node.doors.iter().enumerate() {
                    let want = if t == s {
                        0.0
                    } else {
                        engine.settled_distance(td.0).unwrap_or(f64::INFINITY)
                    };
                    let got = row[t];
                    assert!(
                        (got - want).abs() <= 1e-9 * want.max(1.0)
                            || (got.is_infinite() && want.is_infinite()),
                        "seed {seed} leaf {li} ({s},{t}): grid {got} vs dijkstra {want}"
                    );
                }
            }
        }
    }
}
