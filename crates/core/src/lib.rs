//! IP-Tree and VIP-Tree: the indoor spatial indexes of
//! *"VIP-Tree: An Effective Index for Indoor Spatial Queries"* (PVLDB
//! 10(4), 2016), with all four query algorithms: shortest distance (§3.1),
//! shortest path (§3.2–3.3), k nearest neighbours and range (§3.4).
//!
//! # Index structure
//!
//! Adjacent indoor partitions are combined into leaf nodes (one hallway per
//! leaf, rule ii of §2.1.2), which are then merged bottom-up (Algorithm 1)
//! until a single root remains. Each node stores its *access doors* — the
//! doors connecting its interior to the rest of the venue — plus a distance
//! matrix:
//!
//! * leaf node `N`: distances from every door of `N` to every access door
//!   of `N`, with next-hop doors for path recovery;
//! * non-leaf node `N`: pairwise distances between the access doors of
//!   `N`'s children.
//!
//! All matrix entries are **global** shortest-path distances (leaf matrices
//! come from Dijkstra over the full D2D graph; level-`l` graphs preserve
//! exactness by induction — see DESIGN.md).
//!
//! [`IpTree`] answers queries by ascending the tree (Algorithm 2/3);
//! [`VipTree`] additionally materialises, for every door, the distances to
//! the access doors of all its ancestors, turning the ascent into table
//! lookups (O(ρ²) shortest distance, §3.1.2).
//!
//! # Example
//!
//! ```
//! use indoor_synth::random_venue;
//! use vip_tree::{VipTree, VipTreeConfig};
//! use indoor_synth::workload::query_pairs;
//!
//! let venue = std::sync::Arc::new(random_venue(1));
//! let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
//! let (s, t) = query_pairs(&venue, 1, 7)[0];
//! let d = tree.shortest_distance_points(&s, &t);
//! let p = tree.shortest_path_points(&s, &t);
//! if let (Some(d), Some(p)) = (d, p) {
//!     assert!((p.length - d).abs() < 1e-6);
//! }
//! ```

mod ascent;
mod build;
mod exec;
mod keywords;
mod knn;
mod leaf;
mod leafdist;
mod matrices;
mod merge;
mod objects;
mod path;
pub mod persist;
mod repl;
mod retry;
mod service;
mod slabs;
mod stats;
pub mod telemetry;
mod tree;
mod vip;

pub use exec::{PooledScratch, QueryEngine, QueryScratch, ScratchPool, TreeHandle};
pub use keywords::{KeywordObjects, TermId};
pub use objects::{DeltaReport, ObjectIndex, ObjectIndexStats};
pub use persist::{
    CrashMode, FaultAt, FaultKind, FaultStorage, OsStorage, PersistError, RecoveryReport,
    SnapshotReport, Storage, StorageFile,
};
pub use repl::{WalEntry, WalSubscription};
pub use retry::RetryPolicy;
pub use service::{
    AdmissionConfig, IndoorService, KindStats, OverloadPolicy, ServiceError, ServiceStats,
    ShardConfig, ShardStats, SyncPolicy, DEFAULT_CACHE_CAPACITY,
};
pub use slabs::Slabs;
pub use stats::TreeStats;
pub use tree::{BuildError, IpTree, NodeIdx, VipTreeConfig, NO_NODE};
pub use vip::VipTree;

// The typed request/delta vocabulary lives in `indoor-model` (so every
// index crate answers it); re-exported here because the engine and
// service surfaces speak it.
pub use indoor_model::{
    AnswerRequest, DeltaError, ObjectDelta, ObjectUpdate, QueryKind, QueryRequest, QueryResponse,
    VenueId,
};

use indoor_model::{IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries};

impl ObjectQueries for IpTree {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        IpTree::knn(self, q, k)
    }
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        IpTree::range(self, q, radius)
    }
}

impl IndoorIndex for IpTree {
    fn name(&self) -> &'static str {
        "IP-Tree"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_points(s, t)
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path_points(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl IndoorIndex for VipTree {
    fn name(&self) -> &'static str {
        "VIP-Tree"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_points(s, t)
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path_points(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}
