//! Distance-matrix construction (§2.1.2 steps 3–4).
//!
//! Leaf matrices are computed with Dijkstra **on the full D2D graph**,
//! terminating once every door of the leaf is settled — entries are global
//! shortest distances even when the shortest route briefly leaves the leaf.
//! Non-leaf matrices at level `l+1` are computed on the *level graph*
//! `G_{l+1}`: vertices are the access doors of **all** level-`l` nodes,
//! with an edge between two doors that are access doors of the same
//! level-`l` node, weighted by that node's (already global) matrix entry.
//! By induction every matrix entry in the tree is a global distance, which
//! is what makes Algorithm 2's ascent and Algorithm 4's decomposition
//! exact (see DESIGN.md).

use crate::tree::{DistMatrix, NO_DOOR};
use indoor_graph::{CsrGraph, DijkstraEngine, GraphBuilder, Termination, NO_VERTEX};
use indoor_model::{DoorId, Venue};

/// Build the distance matrix of one leaf node and, in the same Dijkstra
/// passes, collect superior-door evidence (Definition 2) for its
/// partitions.
///
/// * `doors`: all doors of the leaf, sorted.
/// * `access`: its access doors, sorted (a subset of `doors`).
/// * `boundary`: per-venue-door flag "is an access door of some leaf".
/// * `superior_hits`: per partition of the leaf, a bitmask over the
///   partition's door list; bit set ⇒ door shown superior.
pub(crate) fn build_leaf_matrix(
    venue: &Venue,
    engine: &mut DijkstraEngine,
    doors: &[DoorId],
    access: &[DoorId],
    boundary: &[bool],
    partitions: &[indoor_model::PartitionId],
    superior_hits: &mut [Vec<bool>],
) -> DistMatrix {
    let d2d = venue.d2d();
    let n_rows = doors.len();
    let n_cols = access.len();
    let mut dist = vec![f64::INFINITY; n_rows * n_cols].into_boxed_slice();
    let mut next_hop = vec![NO_DOOR; n_rows * n_cols].into_boxed_slice();

    let targets: Vec<u32> = doors.iter().map(|d| d.0).collect();
    let mut chain: Vec<u32> = Vec::new();

    for (col, &a) in access.iter().enumerate() {
        engine.run(d2d, &[(a.0, 0.0)], Termination::SettleAll(&targets));

        for (row, &d) in doors.iter().enumerate() {
            if d == a {
                dist[row * n_cols + col] = 0.0;
                continue;
            }
            let Some(dd) = engine.settled_distance(d.0) else {
                continue; // unreachable: stays infinite
            };
            dist[row * n_cols + col] = dd;

            // Parent chain from d towards a: d, p(d), p(p(d)), ..., a.
            // (Dijkstra ran from a, so parents point towards a.)
            chain.clear();
            let mut cur = d.0;
            chain.push(cur);
            while let Some(p) = engine.parent(cur) {
                if p == NO_VERTEX {
                    break;
                }
                chain.push(p);
                cur = p;
            }
            debug_assert_eq!(*chain.last().unwrap(), a.0);

            next_hop[row * n_cols + col] = leaf_next_hop(&chain, doors, boundary);
        }

        // Superior-door evidence: door di of partition P is superior if the
        // shortest path di → a (a global access door for P) passes through
        // no other door of P (Definition 2).
        for (pi, &p) in partitions.iter().enumerate() {
            let pdoors = &venue.partition(p).doors;
            if pdoors.binary_search(&a).is_ok() {
                continue; // a is local to P, not a global access door
            }
            for (di_idx, &di) in pdoors.iter().enumerate() {
                if superior_hits[pi][di_idx] {
                    continue;
                }
                if engine.settled_distance(di.0).is_none() {
                    continue;
                }
                chain.clear();
                let mut cur = di.0;
                chain.push(cur);
                while let Some(pp) = engine.parent(cur) {
                    if pp == NO_VERTEX {
                        break;
                    }
                    chain.push(pp);
                    cur = pp;
                }
                let clean = chain[1..chain.len().saturating_sub(1)]
                    .iter()
                    .all(|&v| pdoors.binary_search(&DoorId(v)).is_err());
                if clean {
                    superior_hits[pi][di_idx] = true;
                }
            }
        }
    }

    DistMatrix {
        rows: doors.to_vec(),
        cols: access.to_vec(),
        dist,
        next_hop,
    }
}

/// The §2.1.1 next-hop rule for a leaf-matrix entry, given the full door
/// chain `d = c0, c1, ..., ck = a` of the shortest path:
///
/// * no intermediate doors → NULL (final edge);
/// * first step stays among the leaf's doors → that first door (`c1`);
/// * path exits through `d` itself (`c1` outside the leaf) → the first
///   *boundary* door strictly between the endpoints (paper Example 6), or
///   `c1` when the excursion crosses no boundary door (then `c1` shares a
///   leaf with `d`, which keeps Algorithm 4 decomposable — see DESIGN.md).
fn leaf_next_hop(chain: &[u32], doors: &[DoorId], boundary: &[bool]) -> u32 {
    if chain.len() <= 2 {
        return NO_DOOR;
    }
    let c1 = chain[1];
    if doors.binary_search(&DoorId(c1)).is_ok() {
        return c1;
    }
    for &v in &chain[1..chain.len() - 1] {
        if boundary[v as usize] {
            return v;
        }
    }
    c1
}

/// A level graph `G_l` (§2.1.2 step 4): the union of all access doors of
/// the nodes at level `l-1`, with an edge per same-node access-door pair.
pub(crate) struct LevelGraph {
    pub graph: CsrGraph,
    /// Compact vertex → venue door.
    pub vertex_door: Vec<DoorId>,
    /// Venue door → compact vertex (`NO_VERTEX` if absent).
    pub door_vertex: Vec<u32>,
}

impl LevelGraph {
    /// Build from the nodes of one level: each entry is `(access_doors,
    /// matrix)` of one node.
    pub(crate) fn build_from_parts(
        num_venue_doors: usize,
        parts: &[(&Vec<DoorId>, &DistMatrix)],
    ) -> LevelGraph {
        let mut door_vertex = vec![NO_VERTEX; num_venue_doors];
        let mut vertex_door: Vec<DoorId> = Vec::new();
        for (access, _) in parts {
            for &d in access.iter() {
                if door_vertex[d.index()] == NO_VERTEX {
                    door_vertex[d.index()] = vertex_door.len() as u32;
                    vertex_door.push(d);
                }
            }
        }
        let mut gb = GraphBuilder::new(vertex_door.len());
        for (access, matrix) in parts {
            for (i, &a) in access.iter().enumerate() {
                for &b in &access[i + 1..] {
                    if let Some(w) = matrix.lookup_dist(a, b) {
                        if w.is_finite() {
                            gb.add_edge(door_vertex[a.index()], door_vertex[b.index()], w);
                        }
                    }
                }
            }
        }
        LevelGraph {
            graph: gb.build(),
            vertex_door,
            door_vertex,
        }
    }
}

/// Build the distance matrix of a non-leaf node over `border` = the union
/// of its children's access doors, by Dijkstra on the level graph.
///
/// The next-hop entry for `(x, b)` is the first door of `border` strictly
/// inside the level-graph shortest path from `x` to `b` (NULL when none) —
/// §2.1.1: "the first door among the access doors of the children of N
/// that is on the shortest path".
pub(crate) fn build_inner_matrix(
    lg: &LevelGraph,
    engine: &mut DijkstraEngine,
    border: &[DoorId],
) -> DistMatrix {
    let n = border.len();
    let mut dist = vec![f64::INFINITY; n * n].into_boxed_slice();
    let mut next_hop = vec![NO_DOOR; n * n].into_boxed_slice();

    let verts: Vec<u32> = border.iter().map(|d| lg.door_vertex[d.index()]).collect();
    debug_assert!(verts.iter().all(|&v| v != NO_VERTEX));

    let mut chain: Vec<u32> = Vec::new();
    for (col, (&b, &bv)) in border.iter().zip(&verts).enumerate() {
        engine.run(&lg.graph, &[(bv, 0.0)], Termination::SettleAll(&verts));
        for (row, (&x, &xv)) in border.iter().zip(&verts).enumerate() {
            if x == b {
                dist[row * n + col] = 0.0;
                continue;
            }
            let Some(dd) = engine.settled_distance(xv) else {
                continue;
            };
            dist[row * n + col] = dd;

            chain.clear();
            let mut cur = xv;
            chain.push(cur);
            while let Some(p) = engine.parent(cur) {
                if p == NO_VERTEX {
                    break;
                }
                chain.push(p);
                cur = p;
            }
            // First border door strictly between x and b.
            for &v in &chain[1..chain.len().saturating_sub(1)] {
                let d = lg.vertex_door[v as usize];
                if border.binary_search(&d).is_ok() {
                    next_hop[row * n + col] = d.0;
                    break;
                }
            }
        }
    }

    DistMatrix {
        rows: border.to_vec(),
        cols: border.to_vec(),
        dist,
        next_hop,
    }
}
