//! Algorithm 1: merging the nodes of one level into the next (§2.1.2
//! step 2).
//!
//! Nodes are kept in a min-heap keyed by (degree, number of adjacent
//! nodes): the paper merges low-degree nodes first and, among equals,
//! prefers nodes with few merge partners. A popped node merges with the
//! adjacent node sharing the greatest number of common access doors —
//! merging such pairs minimises the parent's access-door count, since
//! common access doors become interior (`|AD| = |AD1| + |AD2| − 2·|AD1 ∩
//! AD2|`). The pass ends when every remaining node has degree ≥ t.

use crate::tree::NO_NODE;
use indoor_model::{DoorId, Venue};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A node-in-progress at some level of the tree.
#[derive(Debug, Clone)]
pub(crate) struct ProtoNode {
    /// Sorted access doors.
    pub access_doors: Vec<DoorId>,
    /// Indices of the previous-level nodes merged into this one. For level
    /// 1 protos (leaves) this is the singleton leaf index.
    pub members: Vec<u32>,
}

/// Union-find over the protos of the current level.
struct GroupSet {
    parent: Vec<u32>,
}

impl GroupSet {
    fn new(n: usize) -> Self {
        GroupSet {
            parent: (0..n as u32).collect(),
        }
    }
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let up = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = up;
            x = up;
        }
        x
    }
    fn union_into(&mut self, child: u32, root: u32) {
        let c = self.find(child);
        self.parent[c as usize] = root;
    }
}

/// Output of one merge pass.
pub(crate) struct MergeOutcome {
    /// The next level's nodes; `members` index into the input slice.
    pub next: Vec<ProtoNode>,
    /// For each door: which next-level nodes (≤ 2) contain it.
    pub door_nodes: Vec<[u32; 2]>,
}

/// One `createNextLevel` pass. `door_nodes` gives, per door, the (≤ 2)
/// current-level protos containing it ([`NO_NODE`] padding).
pub(crate) fn create_next_level(
    venue: &Venue,
    protos: &[ProtoNode],
    door_nodes: &[[u32; 2]],
    t: usize,
) -> MergeOutcome {
    let n = protos.len();
    let mut groups = GroupSet::new(n);
    let mut degree: Vec<u32> = vec![1; n];
    let mut access: Vec<Vec<DoorId>> = protos.iter().map(|p| p.access_doors.clone()).collect();
    // Groups that found no merge partner (isolated components) are parked.
    let mut parked: Vec<bool> = vec![false; n];

    // Roots of the door's containing groups right now.
    let door_roots = |groups: &mut GroupSet, d: DoorId| -> [u32; 2] {
        let [a, b] = door_nodes[d.index()];
        [
            if a == NO_NODE {
                NO_NODE
            } else {
                groups.find(a)
            },
            if b == NO_NODE {
                NO_NODE
            } else {
                groups.find(b)
            },
        ]
    };

    // Distinct neighbouring group roots of `g` (via its access doors).
    let neighbors = |groups: &mut GroupSet, access: &[Vec<DoorId>], g: u32| -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &d in &access[g as usize] {
            for r in door_roots(groups, d) {
                if r != NO_NODE && r != g && !out.contains(&r) {
                    out.push(r);
                }
            }
        }
        out
    };

    let mut heap: BinaryHeap<Reverse<(u32, u32, u32)>> = BinaryHeap::new();
    for g in 0..n as u32 {
        let nadj = neighbors(&mut groups, &access, g).len() as u32;
        heap.push(Reverse((1, nadj, g)));
    }

    while let Some(Reverse((deg, _nadj, g))) = heap.pop() {
        // Skip stale entries (merged away, parked, or outdated degree).
        if groups.find(g) != g || parked[g as usize] || degree[g as usize] != deg {
            continue;
        }
        if deg >= t as u32 {
            break; // heap minimum reached t: every live group is done
        }
        // Partner with the most common access doors (Algorithm 1 line 4).
        let mut best: Option<(u32, usize)> = None;
        for nb in neighbors(&mut groups, &access, g) {
            if parked[nb as usize] {
                continue;
            }
            let common = count_common(&access[g as usize], &access[nb as usize]);
            let better = match best {
                None => true,
                Some((bg, bc)) => common > bc || (common == bc && nb < bg),
            };
            if better {
                best = Some((nb, common));
            }
        }
        let Some((partner, _)) = best else {
            parked[g as usize] = true; // isolated: moves up unmerged
            continue;
        };

        // Merge `partner` into `g` (g stays the root label).
        groups.union_into(partner, g);
        degree[g as usize] += degree[partner as usize];
        let mut candidates = std::mem::take(&mut access[g as usize]);
        candidates.extend_from_slice(&access[partner as usize]);
        access[partner as usize] = Vec::new();
        candidates.sort_unstable();
        candidates.dedup();
        // A door stays an access door iff it still leads outside the
        // merged group (or out of the venue).
        candidates.retain(|&d| {
            venue.door(d).is_exterior()
                || door_roots(&mut groups, d)
                    .into_iter()
                    .any(|r| r != NO_NODE && r != g)
        });
        access[g as usize] = candidates;

        let nadj = neighbors(&mut groups, &access, g).len() as u32;
        heap.push(Reverse((degree[g as usize], nadj, g)));
    }

    // Materialise surviving groups, in stable order of their smallest member.
    let mut root_to_new: Vec<u32> = vec![NO_NODE; n];
    let mut next: Vec<ProtoNode> = Vec::new();
    for p in 0..n as u32 {
        let r = groups.find(p);
        if root_to_new[r as usize] == NO_NODE {
            root_to_new[r as usize] = next.len() as u32;
            next.push(ProtoNode {
                access_doors: std::mem::take(&mut access[r as usize]),
                members: Vec::new(),
            });
        }
        next[root_to_new[r as usize] as usize].members.push(p);
    }

    // Lift the door→node map to the new level.
    let mut new_door_nodes = vec![[NO_NODE; 2]; door_nodes.len()];
    for (d, &[a, b]) in door_nodes.iter().enumerate() {
        let mut slot = [NO_NODE; 2];
        let mut k = 0;
        for old in [a, b] {
            if old != NO_NODE {
                let nn = root_to_new[groups.find(old) as usize];
                if !slot.contains(&nn) {
                    slot[k] = nn;
                    k += 1;
                }
            }
        }
        new_door_nodes[d] = slot;
    }

    MergeOutcome {
        next,
        door_nodes: new_door_nodes,
    }
}

/// |a ∩ b| for sorted slices.
fn count_common(a: &[DoorId], b: &[DoorId]) -> usize {
    let (mut i, mut j, mut c) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::leaf_protos;
    use indoor_synth::random_venue;
    use proptest::prelude::*;

    #[test]
    fn count_common_works() {
        let a: Vec<DoorId> = [1u32, 3, 5, 7].into_iter().map(DoorId).collect();
        let b: Vec<DoorId> = [2u32, 3, 7, 9].into_iter().map(DoorId).collect();
        assert_eq!(count_common(&a, &b), 2);
        assert_eq!(count_common(&a, &[]), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(30))]
        #[test]
        fn merge_respects_min_degree(seed in 0u64..5_000, t in 2usize..5) {
            let venue = random_venue(seed);
            let (protos, door_nodes, _) = leaf_protos(&venue);
            let before = protos.len();
            let out = create_next_level(&venue, &protos, &door_nodes, t);

            // Every input node lands in exactly one output node.
            let mut seen = vec![false; before];
            for p in &out.next {
                for &m in &p.members {
                    prop_assert!(!seen[m as usize]);
                    seen[m as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|s| *s));

            // If merging happened at all, each merged group reaches degree t
            // unless it was parked (no partner) — with a connected venue,
            // parking only happens when a single group remains.
            if out.next.len() > 1 && venue.d2d().connected_components().len() == 1 {
                for p in &out.next {
                    prop_assert!(
                        p.members.len() >= t || out.next.len() <= 2,
                        "group of degree {} with t={t}", p.members.len()
                    );
                }
            }

            // Access doors of output nodes point outside the node.
            for p in &out.next {
                for &d in &p.access_doors {
                    let door = venue.door(d);
                    if !door.is_exterior() {
                        // At least one side's new node differs.
                        let sides = out.door_nodes[d.index()];
                        let me = out.next.iter().position(|q| std::ptr::eq(q, p));
                        let _ = me;
                        prop_assert!(sides[1] != NO_NODE || sides[0] != NO_NODE);
                    }
                }
            }
        }
    }
}
