//! Object embedding (§3.4 "Indexing Indoor Objects") with delta
//! maintenance for live-service churn.
//!
//! Each object records a pointer to the leaf containing its partition;
//! each leaf with objects keeps, per access door, the objects sorted by
//! their distance from that door (enabling early-terminating scans), and
//! every node carries its subtree object count (Algorithm 5 only descends
//! into children that contain objects).
//!
//! # Delta maintenance
//!
//! The tree is static but the objects churn, so the per-leaf buckets are
//! **incrementally maintainable**: [`ObjectIndex::apply_delta`] absorbs a
//! batch of insert/remove/move [`ObjectDelta`]s touching only the leaves
//! the deltas land in. Inserts append one distance row (computed from the
//! leaf matrix, exactly as `build` does) and splice the object into each
//! per-door order; removals **tombstone** the slot — the sorted orders
//! keep the dead entry and scans skip it — and a leaf whose tombstones
//! outnumber its live objects is *compacted* (dead slots dropped, orders
//! remapped; no distance is ever recomputed). Untouched leaves are not
//! read, let alone recomputed; [`ObjectIndex::index_stats`] exposes the
//! counters that prove it, and the delta-vs-rebuild equivalence is
//! enforced by proptest (`tests/object_deltas.rs`). See DESIGN.md,
//! "Object deltas and the service version counter".

use crate::exec::EpochMarks;
use crate::tree::{IpTree, Node, NodeIdx, NO_NODE};
use indoor_model::{DeltaError, IndoorPoint, ObjectDelta, ObjectId};
use std::collections::{HashMap, HashSet};

/// Where a (possibly dead) object slot lives.
#[derive(Debug, Clone, Copy)]
struct ObjLoc {
    leaf: NodeIdx,
    /// Index into the leaf's `objs`/`live` arrays.
    slot: u32,
    live: bool,
}

const NO_LOC: ObjLoc = ObjLoc {
    leaf: NO_NODE,
    slot: 0,
    live: false,
};

/// Per-leaf object bucket.
///
/// Slots are append-only between compactions; `live` carries the
/// tombstones. Distances are **object-major** (`dist[slot * n_ads + ad]`)
/// so an insert appends one contiguous row, and each access door keeps its
/// own ascending order vector (ties broken by slot, so the layout is
/// deterministic).
#[derive(Debug, Clone)]
pub(crate) struct LeafObjects {
    pub objs: Vec<ObjectId>,
    pub live: Vec<bool>,
    n_live: usize,
    n_ads: usize,
    /// Object-major distances: `dist[slot * n_ads + ad]`.
    dist: Vec<f64>,
    /// Per access door, slots ascending by `(distance, slot)`; may contain
    /// tombstoned slots, skipped at scan time.
    order: Vec<Vec<u32>>,
}

impl LeafObjects {
    fn new(n_ads: usize) -> LeafObjects {
        LeafObjects {
            objs: Vec::new(),
            live: Vec::new(),
            n_live: 0,
            n_ads,
            dist: Vec::new(),
            order: vec![Vec::new(); n_ads],
        }
    }

    #[inline]
    pub fn dist_at(&self, ad_idx: usize, obj_slot: usize) -> f64 {
        self.dist[obj_slot * self.n_ads + ad_idx]
    }

    #[inline]
    pub fn order_at(&self, ad_idx: usize) -> &[u32] {
        &self.order[ad_idx]
    }

    /// Append `id` with the given distance row, splicing it into every
    /// per-door order; returns the slot.
    fn push(&mut self, id: ObjectId, row: &[f64]) -> u32 {
        debug_assert_eq!(row.len(), self.n_ads);
        let slot = self.objs.len() as u32;
        self.objs.push(id);
        self.live.push(true);
        self.n_live += 1;
        self.dist.extend_from_slice(row);
        for (ad, order) in self.order.iter_mut().enumerate() {
            let d = row[ad];
            // All existing slots are < `slot`, so (dist, slot) ordering
            // places the new slot after every equal-distance entry.
            let pos = order.partition_point(|&j| {
                self.dist[j as usize * self.n_ads + ad]
                    .total_cmp(&d)
                    .is_lt()
                    || self.dist[j as usize * self.n_ads + ad] == d
            });
            order.insert(pos, slot);
        }
        slot
    }

    /// Drop tombstoned slots, remapping the survivors; returns the old
    /// slots of the survivors in their new slot order.
    fn compact(&mut self) -> Vec<u32> {
        let old_n = self.objs.len();
        let mut remap = vec![u32::MAX; old_n];
        let mut survivors = Vec::with_capacity(self.n_live);
        let mut objs = Vec::with_capacity(self.n_live);
        let mut dist = Vec::with_capacity(self.n_live * self.n_ads);
        for (old, &alive) in self.live.iter().enumerate() {
            if !alive {
                continue;
            }
            remap[old] = survivors.len() as u32;
            survivors.push(old as u32);
            objs.push(self.objs[old]);
            dist.extend_from_slice(&self.dist[old * self.n_ads..(old + 1) * self.n_ads]);
        }
        for order in &mut self.order {
            order.retain_mut(|j| {
                let new = remap[*j as usize];
                *j = new;
                new != u32::MAX
            });
        }
        self.objs = objs;
        self.dist = dist;
        self.live = vec![true; self.n_live];
        survivors
    }

    /// Early-terminating scans over the per-access-door sorted lists
    /// (`vec[ad_idx]` is the query's distance to that access door);
    /// candidates within `bound` are collected in `marks` — an
    /// epoch-cleared set, so the scan allocates nothing — and emitted with
    /// their exact distance (min over all access doors). Tombstoned slots
    /// are skipped.
    pub(crate) fn emit_candidates(
        &self,
        vec: &[f64],
        bound: f64,
        marks: &mut EpochMarks,
        emit: &mut dyn FnMut(ObjectId, f64),
    ) {
        let n = self.objs.len();
        marks.begin(n);
        let mut marked = 0usize;
        for (ad_idx, &dq) in vec.iter().enumerate() {
            if !dq.is_finite() {
                continue;
            }
            for &j in self.order_at(ad_idx) {
                if dq + self.dist_at(ad_idx, j as usize) > bound {
                    break;
                }
                if self.live[j as usize] && !marks.is_marked(j as usize) {
                    marks.mark(j as usize);
                    marked += 1;
                }
            }
        }
        // The pass below is slot-ordered so emission order is independent
        // of which door marked a candidate; stop once every mark is spent
        // (a bound-rejected bucket costs one head probe per door, no slot
        // walk).
        for j in 0..n {
            if marked == 0 {
                break;
            }
            if !marks.is_marked(j) {
                continue;
            }
            marked -= 1;
            let mut d = f64::INFINITY;
            for (ad_idx, &dq) in vec.iter().enumerate() {
                let cand = dq + self.dist_at(ad_idx, j);
                if cand < d {
                    d = cand;
                }
            }
            emit(self.objs[j], d);
        }
    }
}

/// What one [`ObjectIndex::apply_delta`] batch did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaReport {
    pub inserts: usize,
    pub removes: usize,
    pub moves: usize,
    /// Distinct leaves whose buckets the batch touched; every other leaf
    /// was not even read.
    pub touched_leaves: usize,
    /// Leaf compactions the batch triggered (tombstone-pressure cleanup).
    pub compactions: usize,
}

/// Maintenance counters of an [`ObjectIndex`] — the observable proof that
/// delta application is incremental (`tests/object_deltas.rs` asserts
/// `leaf_builds` does not move under deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObjectIndexStats {
    /// Per-leaf distance-table computations (one per populated leaf at
    /// `build`; **never** incremented by `apply_delta`).
    pub leaf_builds: u64,
    /// Incremental single-leaf touch events (insert/remove splices).
    pub leaf_touches: u64,
    /// Leaf compactions (tombstone cleanup; reuses distances, recomputes
    /// nothing).
    pub compactions: u64,
    /// Live objects.
    pub live: usize,
    /// Allocated id slots (live + tombstoned + never-used gaps).
    pub slots: usize,
}

/// The object index embedded into an IP/VIP-tree.
#[derive(Debug, Clone)]
pub struct ObjectIndex {
    pub(crate) objects: Vec<IndoorPoint>,
    locs: Vec<ObjLoc>,
    pub(crate) leaf_data: HashMap<NodeIdx, LeafObjects>,
    pub(crate) subtree_count: Vec<u32>,
    n_live: usize,
    leaf_builds: u64,
    leaf_touches: u64,
    compactions: u64,
}

impl ObjectIndex {
    /// An index with no objects (the base every delta stream can grow
    /// from).
    pub fn empty(tree: &IpTree) -> ObjectIndex {
        ObjectIndex {
            objects: Vec::new(),
            locs: Vec::new(),
            leaf_data: HashMap::new(),
            subtree_count: vec![0u32; tree.num_nodes()],
            n_live: 0,
            leaf_builds: 0,
            leaf_touches: 0,
            compactions: 0,
        }
    }

    /// Precompute the per-leaf distance tables from the tree's leaf
    /// matrices: `dist(a, o) = min over doors d of Partition(o) of
    /// dist(a, d) + dist(d, o)`. Ids are positional (`objects[i]` gets
    /// `ObjectId(i)`).
    pub fn build(tree: &IpTree, objects: &[IndoorPoint]) -> ObjectIndex {
        let pairs: Vec<(ObjectId, IndoorPoint)> = objects
            .iter()
            .enumerate()
            .map(|(i, &p)| (ObjectId(i as u32), p))
            .collect();
        Self::build_with_ids(tree, &pairs)
    }

    /// As [`ObjectIndex::build`] with caller-assigned stable ids (ids may
    /// have gaps — e.g. the live set surviving a delta history). Each id
    /// must appear at most once.
    pub fn build_with_ids(tree: &IpTree, objects: &[(ObjectId, IndoorPoint)]) -> ObjectIndex {
        let venue = &*tree.venue;
        let slots = objects
            .iter()
            .map(|(id, _)| id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut store: Vec<IndoorPoint> = Vec::new();
        let mut locs = vec![NO_LOC; slots];
        if let Some(&(_, first)) = objects.first() {
            // Gap slots hold an arbitrary (dead, never read) point.
            store = vec![first; slots];
        }
        let mut by_leaf: HashMap<NodeIdx, Vec<ObjectId>> = HashMap::new();
        for &(id, o) in objects {
            // Hard precondition even in release: a silently double-booked
            // slot would corrupt live counts and leaf buckets forever.
            assert!(!locs[id.index()].live, "duplicate object id {id}");
            store[id.index()] = o;
            locs[id.index()].live = true;
            let leaf = tree.leaf_of(o.partition);
            by_leaf.entry(leaf).or_default().push(id);
        }

        let mut subtree_count = vec![0u32; tree.num_nodes()];
        for (&leaf, objs) in &by_leaf {
            let mut cur = leaf;
            loop {
                subtree_count[cur as usize] += objs.len() as u32;
                let parent = tree.node(cur).parent;
                if parent == NO_NODE {
                    break;
                }
                cur = parent;
            }
        }

        let mut leaf_builds = 0u64;
        let mut leaf_data = HashMap::with_capacity(by_leaf.len());
        for (leaf, objs) in by_leaf {
            let node = tree.node(leaf);
            let n_ads = node.access_doors.len();
            let n = objs.len();
            let mut data = LeafObjects::new(n_ads);
            let mut row = vec![f64::INFINITY; n_ads];
            for (slot, &oid) in objs.iter().enumerate() {
                dist_row(venue, node, &store[oid.index()], &mut row);
                data.objs.push(oid);
                data.live.push(true);
                data.dist.extend_from_slice(&row);
                locs[oid.index()] = ObjLoc {
                    leaf,
                    slot: slot as u32,
                    live: true,
                };
            }
            data.n_live = n;
            for (ad, order) in data.order.iter_mut().enumerate() {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by(|&a, &b| {
                    data.dist[a as usize * n_ads + ad]
                        .total_cmp(&data.dist[b as usize * n_ads + ad])
                        .then(a.cmp(&b))
                });
                *order = idx;
            }
            leaf_builds += 1;
            leaf_data.insert(leaf, data);
        }

        ObjectIndex {
            n_live: objects.len(),
            objects: store,
            locs,
            leaf_data,
            subtree_count,
            leaf_builds,
            leaf_touches: 0,
            compactions: 0,
        }
    }

    /// Absorb a batch of deltas, touching only the leaves the deltas land
    /// in. Validation is atomic: on `Err` the index is untouched. Inserts
    /// compute one distance row from the leaf matrix; removals tombstone;
    /// a leaf whose tombstones outnumber its live objects is compacted
    /// in-place (no distance recomputed). Equivalent, query-for-query, to
    /// a from-scratch [`ObjectIndex::build_with_ids`] over the surviving
    /// live set.
    pub fn apply_delta(
        &mut self,
        tree: &IpTree,
        deltas: &[ObjectDelta],
    ) -> Result<DeltaReport, DeltaError> {
        self.validate(tree, deltas)?;
        let compactions_before = self.compactions;
        let mut report = DeltaReport::default();
        let mut touched: HashSet<NodeIdx> = HashSet::new();
        for delta in deltas {
            match *delta {
                ObjectDelta::Insert { id, at } => {
                    self.ensure_slot(id, at);
                    self.objects[id.index()] = at;
                    touched.insert(self.insert_live(tree, id, at));
                    report.inserts += 1;
                }
                ObjectDelta::Remove { id } => {
                    touched.insert(self.remove_live(tree, id));
                    report.removes += 1;
                }
                ObjectDelta::Move { id, to } => {
                    touched.insert(self.remove_live(tree, id));
                    self.objects[id.index()] = to;
                    touched.insert(self.insert_live(tree, id, to));
                    report.moves += 1;
                }
            }
        }
        report.touched_leaves = touched.len();
        report.compactions = (self.compactions - compactions_before) as usize;
        Ok(report)
    }

    /// Check a delta batch against the current live set (sequentially: an
    /// insert earlier in the batch makes the id live for later deltas).
    pub(crate) fn validate(&self, tree: &IpTree, deltas: &[ObjectDelta]) -> Result<(), DeltaError> {
        let n_partitions = tree.venue.num_partitions();
        let mut overlay: HashMap<u32, bool> = HashMap::new();
        for delta in deltas {
            let id = delta.id();
            if let Some(p) = delta.position() {
                if p.partition.index() >= n_partitions {
                    return Err(DeltaError::BadPartition(id, p.partition));
                }
            }
            let live = overlay
                .get(&id.0)
                .copied()
                .unwrap_or_else(|| self.is_live(id));
            match delta {
                ObjectDelta::Insert { .. } => {
                    if live {
                        return Err(DeltaError::DuplicateId(id));
                    }
                    overlay.insert(id.0, true);
                }
                ObjectDelta::Remove { .. } => {
                    if !live {
                        return Err(DeltaError::UnknownId(id));
                    }
                    overlay.insert(id.0, false);
                }
                ObjectDelta::Move { .. } => {
                    if !live {
                        return Err(DeltaError::UnknownId(id));
                    }
                }
            }
        }
        Ok(())
    }

    fn ensure_slot(&mut self, id: ObjectId, fill: IndoorPoint) {
        if id.index() >= self.locs.len() {
            self.objects.resize(id.index() + 1, fill);
            self.locs.resize(id.index() + 1, NO_LOC);
        }
    }

    /// Insert the (validated, slot-backed) object into its leaf bucket;
    /// returns the touched leaf.
    fn insert_live(&mut self, tree: &IpTree, id: ObjectId, at: IndoorPoint) -> NodeIdx {
        let leaf = tree.leaf_of(at.partition);
        let node = tree.node(leaf);
        let data = self
            .leaf_data
            .entry(leaf)
            .or_insert_with(|| LeafObjects::new(node.access_doors.len()));
        let mut row = vec![f64::INFINITY; node.access_doors.len()];
        dist_row(&tree.venue, node, &at, &mut row);
        let slot = data.push(id, &row);
        self.locs[id.index()] = ObjLoc {
            leaf,
            slot,
            live: true,
        };
        self.n_live += 1;
        self.leaf_touches += 1;
        adjust_counts(tree, &mut self.subtree_count, leaf, 1);
        leaf
    }

    /// Tombstone the (validated) live object, compacting or dropping its
    /// leaf bucket under tombstone pressure; returns the touched leaf.
    fn remove_live(&mut self, tree: &IpTree, id: ObjectId) -> NodeIdx {
        let loc = self.locs[id.index()];
        debug_assert!(loc.live, "remove of dead object {id}");
        let data = self.leaf_data.get_mut(&loc.leaf).expect("live leaf bucket");
        data.live[loc.slot as usize] = false;
        data.n_live -= 1;
        self.locs[id.index()].live = false;
        self.n_live -= 1;
        self.leaf_touches += 1;
        adjust_counts(tree, &mut self.subtree_count, loc.leaf, -1);

        let dead = data.objs.len() - data.n_live;
        if data.n_live == 0 {
            self.leaf_data.remove(&loc.leaf);
            self.compactions += 1;
        } else if dead > data.n_live && dead >= 4 {
            let survivors = data.compact();
            for (new_slot, &old_slot) in survivors.iter().enumerate() {
                let oid = self.leaf_data[&loc.leaf].objs[new_slot];
                debug_assert_eq!(
                    self.locs[oid.index()].slot,
                    old_slot,
                    "compaction remap consistent"
                );
                self.locs[oid.index()].slot = new_slot as u32;
            }
            self.compactions += 1;
        }
        loc.leaf
    }

    /// Whether `id` currently names a live object.
    #[inline]
    pub fn is_live(&self, id: ObjectId) -> bool {
        self.locs.get(id.index()).is_some_and(|l| l.live)
    }

    /// The live `(id, position)` set — the input a from-scratch
    /// [`ObjectIndex::build_with_ids`] needs to reproduce this index.
    pub fn live_pairs(&self) -> Vec<(ObjectId, IndoorPoint)> {
        self.locs
            .iter()
            .enumerate()
            .filter(|(_, l)| l.live)
            .map(|(i, _)| (ObjectId(i as u32), self.objects[i]))
            .collect()
    }

    /// Allocated id slots (live + tombstoned + gaps). See
    /// [`ObjectIndex::num_live`] for the live count.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Live objects.
    #[inline]
    pub fn num_live(&self) -> usize {
        self.n_live
    }

    #[inline]
    pub fn object(&self, id: ObjectId) -> &IndoorPoint {
        &self.objects[id.index()]
    }

    /// Maintenance counters (see [`ObjectIndexStats`]).
    pub fn index_stats(&self) -> ObjectIndexStats {
        ObjectIndexStats {
            leaf_builds: self.leaf_builds,
            leaf_touches: self.leaf_touches,
            compactions: self.compactions,
            live: self.n_live,
            slots: self.objects.len(),
        }
    }

    pub fn size_bytes(&self) -> usize {
        self.objects.len() * std::mem::size_of::<IndoorPoint>()
            + self.locs.len() * std::mem::size_of::<ObjLoc>()
            + self
                .leaf_data
                .values()
                .map(|l| {
                    l.objs.len() * 5
                        + l.dist.len() * 8
                        + l.order.iter().map(|o| o.len() * 4).sum::<usize>()
                })
                .sum::<usize>()
            + self.subtree_count.len() * 4
    }
}

/// `row[ad] = min over doors d of Partition(o) of M_leaf(d, ad) + |o, d|`
/// — the per-access-door distance row of one object, straight from the
/// leaf matrix (shared by `build` and incremental inserts).
fn dist_row(venue: &indoor_model::Venue, node: &Node, o: &IndoorPoint, row: &mut [f64]) {
    row.fill(f64::INFINITY);
    for &d in &venue.partition(o.partition).doors {
        let r = node
            .matrix
            .row_index(d)
            .expect("partition door is a row of its leaf matrix");
        let exit = o.distance_to_door(venue, d);
        for (ci, slot) in row.iter_mut().enumerate() {
            let cand = node.matrix.at(r, ci) + exit;
            if cand < *slot {
                *slot = cand;
            }
        }
    }
}

/// Add `delta` to the subtree object count of `leaf` and every ancestor.
fn adjust_counts(tree: &IpTree, counts: &mut [u32], leaf: NodeIdx, delta: i64) {
    let mut cur = leaf;
    loop {
        let c = &mut counts[cur as usize];
        *c = (*c as i64 + delta) as u32;
        let parent = tree.node(cur).parent;
        if parent == NO_NODE {
            break;
        }
        cur = parent;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VipTreeConfig;
    use indoor_graph::{DijkstraEngine, Termination};
    use indoor_synth::{random_venue, workload};
    use std::sync::Arc;

    #[test]
    fn tables_match_dijkstra() {
        let venue = Arc::new(random_venue(23));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let objects = workload::place_objects(&venue, 12, 5);
        let oi = ObjectIndex::build(&tree, &objects);
        assert_eq!(
            oi.subtree_count[tree.root() as usize] as usize,
            objects.len()
        );
        assert_eq!(oi.num_live(), objects.len());
        assert_eq!(
            oi.index_stats().leaf_builds,
            oi.leaf_data.len() as u64,
            "one table build per populated leaf"
        );

        let mut engine = DijkstraEngine::new(venue.num_doors());
        for (&leaf, data) in &oi.leaf_data {
            let node = tree.node(leaf);
            for (ad_idx, &a) in node.access_doors.iter().enumerate() {
                engine.run(venue.d2d(), &[(a.0, 0.0)], Termination::Exhaust);
                for (j, oid) in data.objs.iter().enumerate() {
                    let o = &objects[oid.index()];
                    let want = venue
                        .partition(o.partition)
                        .doors
                        .iter()
                        .map(|&d| {
                            engine.settled_distance(d.0).unwrap_or(f64::INFINITY)
                                + o.distance_to_door(&venue, d)
                        })
                        .fold(f64::INFINITY, f64::min);
                    let got = data.dist_at(ad_idx, j);
                    assert!(
                        (got - want).abs() < 1e-9 || got == want,
                        "dist({a}, o{j}) got {got} want {want}"
                    );
                }
                // Order is ascending.
                let ord = data.order_at(ad_idx);
                assert_eq!(ord.len(), data.objs.len());
                for w in ord.windows(2) {
                    assert!(
                        data.dist_at(ad_idx, w[0] as usize) <= data.dist_at(ad_idx, w[1] as usize)
                    );
                }
            }
        }
    }

    /// Inserts splice into the per-door orders at the same place a
    /// from-scratch build would put them, and tombstoned slots vanish from
    /// candidate emission.
    #[test]
    fn delta_maintains_sorted_orders_and_tombstones() {
        let venue = Arc::new(random_venue(37));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let objects = workload::place_objects(&venue, 20, 9);
        let mut oi = ObjectIndex::build(&tree, &objects[..10]);

        let mut deltas: Vec<ObjectDelta> = (10..20)
            .map(|i| ObjectDelta::Insert {
                id: ObjectId(i as u32),
                at: objects[i],
            })
            .collect();
        deltas.push(ObjectDelta::Remove { id: ObjectId(3) });
        deltas.push(ObjectDelta::Move {
            id: ObjectId(7),
            to: objects[2],
        });
        let report = oi.apply_delta(&tree, &deltas).unwrap();
        assert_eq!(report.inserts, 10);
        assert_eq!(report.removes, 1);
        assert_eq!(report.moves, 1);
        assert_eq!(oi.num_live(), 19);
        assert!(!oi.is_live(ObjectId(3)));
        assert_eq!(
            oi.index_stats().leaf_builds,
            ObjectIndex::build(&tree, &objects[..10])
                .index_stats()
                .leaf_builds,
            "deltas never rebuild leaf tables"
        );

        for data in oi.leaf_data.values() {
            assert_eq!(
                data.live.iter().filter(|&&l| l).count(),
                data.n_live,
                "live count consistent"
            );
            for ad in 0..data.order.len() {
                let ord = data.order_at(ad);
                for w in ord.windows(2) {
                    assert!(
                        data.dist_at(ad, w[0] as usize) <= data.dist_at(ad, w[1] as usize),
                        "order stays sorted after splices"
                    );
                }
            }
        }
        assert_eq!(
            oi.subtree_count[tree.root() as usize] as usize,
            oi.num_live(),
            "root subtree count tracks the live set"
        );
    }

    #[test]
    fn validation_is_atomic() {
        let venue = Arc::new(random_venue(11));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let objects = workload::place_objects(&venue, 6, 1);
        let mut oi = ObjectIndex::build(&tree, &objects);
        let before = oi.live_pairs();

        // Second delta is invalid: the whole batch must bounce.
        let bad = [
            ObjectDelta::Remove { id: ObjectId(0) },
            ObjectDelta::Remove { id: ObjectId(99) },
        ];
        assert_eq!(
            oi.apply_delta(&tree, &bad),
            Err(DeltaError::UnknownId(ObjectId(99)))
        );
        assert_eq!(
            oi.live_pairs(),
            before,
            "failed batch leaves index untouched"
        );

        assert_eq!(
            oi.apply_delta(
                &tree,
                &[ObjectDelta::Insert {
                    id: ObjectId(0),
                    at: objects[1],
                }]
            ),
            Err(DeltaError::DuplicateId(ObjectId(0)))
        );
        // Sequential validity: remove then re-insert the same id is fine.
        let seq = [
            ObjectDelta::Remove { id: ObjectId(0) },
            ObjectDelta::Insert {
                id: ObjectId(0),
                at: objects[2],
            },
        ];
        assert!(oi.apply_delta(&tree, &seq).is_ok());
        // Bad partition id.
        let bad_p = ObjectDelta::Insert {
            id: ObjectId(50),
            at: indoor_model::IndoorPoint::new(
                indoor_model::PartitionId(u32::MAX - 1),
                geometry::Point::new(0.0, 0.0, 0),
            ),
        };
        assert!(matches!(
            oi.apply_delta(&tree, &[bad_p]),
            Err(DeltaError::BadPartition(..))
        ));
    }

    /// Tombstone pressure triggers compaction, and compaction preserves
    /// the live set, slots stay consistent.
    #[test]
    fn compaction_preserves_live_set() {
        let venue = Arc::new(random_venue(29));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let objects = workload::place_objects(&venue, 24, 4);
        let mut oi = ObjectIndex::build(&tree, &objects);

        // Remove most of the objects one by one: some leaf must compact.
        let deltas: Vec<ObjectDelta> = (0..20)
            .map(|i| ObjectDelta::Remove { id: ObjectId(i) })
            .collect();
        oi.apply_delta(&tree, &deltas).unwrap();
        assert!(oi.index_stats().compactions > 0, "pressure must compact");
        assert_eq!(oi.num_live(), 4);

        let live = oi.live_pairs();
        assert_eq!(live.len(), 4);
        for (id, p) in live {
            assert_eq!(oi.object(id), &p);
            let loc = oi.locs[id.index()];
            let data = &oi.leaf_data[&loc.leaf];
            assert_eq!(data.objs[loc.slot as usize], id, "slot remap consistent");
            assert!(data.live[loc.slot as usize]);
        }
        // Draining a leaf entirely removes its bucket.
        let rest: Vec<ObjectDelta> = (20..24)
            .map(|i| ObjectDelta::Remove { id: ObjectId(i) })
            .collect();
        oi.apply_delta(&tree, &rest).unwrap();
        assert!(oi.leaf_data.is_empty());
        assert!(oi.subtree_count.iter().all(|&c| c == 0));
    }
}
