//! Object embedding (§3.4 "Indexing Indoor Objects").
//!
//! Each object records a pointer to the leaf containing its partition;
//! each leaf with objects keeps, per access door, the objects sorted by
//! their distance from that door (enabling early-terminating scans), and
//! every node carries its subtree object count (Algorithm 5 only descends
//! into children that contain objects).

use crate::exec::EpochMarks;
use crate::tree::{IpTree, NodeIdx, NO_NODE};
use indoor_model::{IndoorPoint, ObjectId};
use std::collections::HashMap;

/// Per-leaf object data.
#[derive(Debug, Clone)]
pub(crate) struct LeafObjects {
    pub objs: Vec<ObjectId>,
    /// Access-door-major distances: `dist[ad_idx * objs.len() + j]` is the
    /// global indoor distance from access door `ad_idx` to `objs[j]`.
    pub dist: Vec<f64>,
    /// Access-door-major object orderings by ascending distance.
    pub order: Vec<u32>,
}

impl LeafObjects {
    #[inline]
    pub fn dist_at(&self, ad_idx: usize, obj_idx: usize) -> f64 {
        self.dist[ad_idx * self.objs.len() + obj_idx]
    }

    #[inline]
    pub fn order_at(&self, ad_idx: usize) -> &[u32] {
        let n = self.objs.len();
        &self.order[ad_idx * n..(ad_idx + 1) * n]
    }

    /// Early-terminating scans over the per-access-door sorted lists
    /// (`vec[ad_idx]` is the query's distance to that access door);
    /// candidates within `bound` are collected in `marks` — an
    /// epoch-cleared set, so the scan allocates nothing — and emitted with
    /// their exact distance (min over all access doors).
    pub(crate) fn emit_candidates(
        &self,
        vec: &[f64],
        bound: f64,
        marks: &mut EpochMarks,
        emit: &mut dyn FnMut(ObjectId, f64),
    ) {
        let n = self.objs.len();
        marks.begin(n);
        for (ad_idx, &dq) in vec.iter().enumerate() {
            if !dq.is_finite() {
                continue;
            }
            for &j in self.order_at(ad_idx) {
                if dq + self.dist_at(ad_idx, j as usize) > bound {
                    break;
                }
                marks.mark(j as usize);
            }
        }
        for j in 0..n {
            if !marks.is_marked(j) {
                continue;
            }
            let mut d = f64::INFINITY;
            for (ad_idx, &dq) in vec.iter().enumerate() {
                let cand = dq + self.dist_at(ad_idx, j);
                if cand < d {
                    d = cand;
                }
            }
            emit(self.objs[j], d);
        }
    }
}

/// The object index embedded into an IP/VIP-tree.
#[derive(Debug, Clone)]
pub struct ObjectIndex {
    pub(crate) objects: Vec<IndoorPoint>,
    pub(crate) leaf_data: HashMap<NodeIdx, LeafObjects>,
    pub(crate) subtree_count: Vec<u32>,
}

impl ObjectIndex {
    /// Precompute the per-leaf distance tables from the tree's leaf
    /// matrices: `dist(a, o) = min over doors d of Partition(o) of
    /// dist(a, d) + dist(d, o)`.
    pub fn build(tree: &IpTree, objects: &[IndoorPoint]) -> ObjectIndex {
        let venue = &*tree.venue;
        let mut by_leaf: HashMap<NodeIdx, Vec<ObjectId>> = HashMap::new();
        for (i, o) in objects.iter().enumerate() {
            let leaf = tree.leaf_of(o.partition);
            by_leaf.entry(leaf).or_default().push(ObjectId(i as u32));
        }

        let mut subtree_count = vec![0u32; tree.num_nodes()];
        for (&leaf, objs) in &by_leaf {
            let mut cur = leaf;
            loop {
                subtree_count[cur as usize] += objs.len() as u32;
                let parent = tree.node(cur).parent;
                if parent == NO_NODE {
                    break;
                }
                cur = parent;
            }
        }

        let mut leaf_data = HashMap::with_capacity(by_leaf.len());
        for (leaf, objs) in by_leaf {
            let node = tree.node(leaf);
            let n_ads = node.access_doors.len();
            let n = objs.len();
            let mut dist = vec![f64::INFINITY; n_ads * n];
            for (j, oid) in objs.iter().enumerate() {
                let o = &objects[oid.index()];
                for &d in &venue.partition(o.partition).doors {
                    let row = node
                        .matrix
                        .row_index(d)
                        .expect("partition door is a row of its leaf matrix");
                    let exit = o.distance_to_door(venue, d);
                    for ci in 0..n_ads {
                        let cand = node.matrix.at(row, ci) + exit;
                        let slot = &mut dist[ci * n + j];
                        if cand < *slot {
                            *slot = cand;
                        }
                    }
                }
            }
            let mut order = Vec::with_capacity(n_ads * n);
            for ad in 0..n_ads {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                idx.sort_by(|&a, &b| {
                    dist[ad * n + a as usize].total_cmp(&dist[ad * n + b as usize])
                });
                order.extend_from_slice(&idx);
            }
            leaf_data.insert(leaf, LeafObjects { objs, dist, order });
        }

        ObjectIndex {
            objects: objects.to_vec(),
            leaf_data,
            subtree_count,
        }
    }

    #[inline]
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    #[inline]
    pub fn object(&self, id: ObjectId) -> &IndoorPoint {
        &self.objects[id.index()]
    }

    pub fn size_bytes(&self) -> usize {
        self.objects.len() * std::mem::size_of::<IndoorPoint>()
            + self
                .leaf_data
                .values()
                .map(|l| l.objs.len() * 4 + l.dist.len() * 8 + l.order.len() * 4)
                .sum::<usize>()
            + self.subtree_count.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VipTreeConfig;
    use indoor_graph::{DijkstraEngine, Termination};
    use indoor_synth::{random_venue, workload};
    use std::sync::Arc;

    #[test]
    fn tables_match_dijkstra() {
        let venue = Arc::new(random_venue(23));
        let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
        let objects = workload::place_objects(&venue, 12, 5);
        let oi = ObjectIndex::build(&tree, &objects);
        assert_eq!(
            oi.subtree_count[tree.root() as usize] as usize,
            objects.len()
        );

        let mut engine = DijkstraEngine::new(venue.num_doors());
        for (&leaf, data) in &oi.leaf_data {
            let node = tree.node(leaf);
            for (ad_idx, &a) in node.access_doors.iter().enumerate() {
                engine.run(venue.d2d(), &[(a.0, 0.0)], Termination::Exhaust);
                for (j, oid) in data.objs.iter().enumerate() {
                    let o = &objects[oid.index()];
                    let want = venue
                        .partition(o.partition)
                        .doors
                        .iter()
                        .map(|&d| {
                            engine.settled_distance(d.0).unwrap_or(f64::INFINITY)
                                + o.distance_to_door(&venue, d)
                        })
                        .fold(f64::INFINITY, f64::min);
                    let got = data.dist_at(ad_idx, j);
                    assert!(
                        (got - want).abs() < 1e-9 || got == want,
                        "dist({a}, o{j}) got {got} want {want}"
                    );
                }
                // Order is ascending.
                let ord = data.order_at(ad_idx);
                for w in ord.windows(2) {
                    assert!(
                        data.dist_at(ad_idx, w[0] as usize) <= data.dist_at(ad_idx, w[1] as usize)
                    );
                }
            }
        }
    }
}
