//! Shortest-path recovery (§3.2): replaying the ascent's minimising chain
//! and recursively decomposing each partial edge via next-hop doors
//! (Algorithm 4).
//!
//! Unlike the paper's presentation — which locates the matrix for a door
//! pair through the lowest common ancestor of the doors — we additionally
//! track the *context node* whose matrix produced each partial edge. Every
//! next-hop door is a row/column of that same matrix, so decomposition
//! usually proceeds without any search. When an entry is NULL in a
//! non-leaf matrix (the pair is directly connected at that granularity) we
//! re-resolve the pair in the lowest *other* matrix containing it, banning
//! matrices already tried so the search provably terminates; if no matrix
//! remains (not observed on any workload; tracked by
//! [`IpTree::decompose_fallback_count`]) an exact Dijkstra fallback
//! expands the pair.

use crate::ascent::{Ascent, Provenance};
use crate::tree::{IpTree, NodeIdx};
use indoor_graph::{Termination, NO_VERTEX};
use indoor_model::DoorId;

/// A partial edge: shortest sub-path from `from` to `to` whose matrix
/// entry lives in `ctx`'s distance matrix.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PartialEdge {
    pub from: DoorId,
    pub to: DoorId,
    pub ctx: NodeIdx,
}

impl IpTree {
    /// Replay one ascent into the door chain `s → a*` where `a*` is the
    /// chosen access door (index `target_idx`) of the ascent's last node.
    /// Returns (entry door of the source partition, partial edges bottom-up).
    pub(crate) fn replay_ascent(
        &self,
        asc: &Ascent,
        target_idx: usize,
    ) -> (DoorId, Vec<PartialEdge>) {
        let mut edges: Vec<PartialEdge> = Vec::new();
        let mut level = asc.steps().len() - 1;
        let mut idx = target_idx;
        // Walk provenance downwards, emitting edges top-down, then reverse.
        let entry_door = loop {
            let step = &asc.steps()[level];
            let door = self.node(step.node).access_doors[idx];
            match step.prov[idx] {
                Provenance::Source { via } => {
                    if via != door {
                        edges.push(PartialEdge {
                            from: via,
                            to: door,
                            ctx: asc.steps()[0].node, // the leaf's matrix
                        });
                    }
                    break via;
                }
                Provenance::Child { idx: child_idx } => {
                    let child_step = &asc.steps()[level - 1];
                    let child_door = self.node(child_step.node).access_doors[child_idx as usize];
                    if child_door != door {
                        edges.push(PartialEdge {
                            from: child_door,
                            to: door,
                            ctx: step.node, // the parent matrix combined them
                        });
                    }
                    level -= 1;
                    idx = child_idx as usize;
                }
            }
        };
        edges.reverse();
        (entry_door, edges)
    }

    /// Assemble the full door sequence for a cross-leaf path: the source
    /// ascent chain, the LCA middle edge, and the reversed target chain,
    /// each partial edge expanded via Algorithm 4.
    pub(crate) fn recover_cross_leaf_path(
        &self,
        asc_s: &Ascent,
        i: usize,
        asc_t: &Ascent,
        j: usize,
    ) -> Vec<DoorId> {
        let (s_entry, s_edges) = self.replay_ascent(asc_s, i);
        let (t_entry, t_edges) = self.replay_ascent(asc_t, j);
        let ns = asc_s.last().node;
        let nt = asc_t.last().node;
        let di = self.node(ns).access_doors[i];
        let dj = self.node(nt).access_doors[j];
        let lca = self.node(ns).parent;
        debug_assert_eq!(lca, self.node(nt).parent);

        let mut seq: Vec<DoorId> = vec![s_entry];
        let push_expanded = |seq: &mut Vec<DoorId>, full: Vec<DoorId>| {
            debug_assert_eq!(full.first(), seq.last());
            seq.extend_from_slice(&full[1..]);
        };
        for e in &s_edges {
            let full = self.expand(e.from, e.to, Some(e.ctx));
            push_expanded(&mut seq, full);
        }
        if di != dj {
            let full = self.expand(di, dj, Some(lca));
            push_expanded(&mut seq, full);
        }
        // Target side: edges lead t → dj; reverse each and their order.
        let mut tail: Vec<DoorId> = vec![t_entry];
        for e in &t_edges {
            let full = self.expand(e.from, e.to, Some(e.ctx));
            debug_assert_eq!(full.first(), tail.last());
            tail.extend_from_slice(&full[1..]);
        }
        tail.reverse(); // now dj .. t_entry
        debug_assert_eq!(tail.first(), Some(&dj));
        seq.extend_from_slice(&tail[1..]);
        seq.dedup();
        seq
    }

    /// Expand a door pair into the full shortest-path door sequence
    /// (inclusive of both endpoints). `ctx` is the node whose matrix is
    /// known to contain the pair, if any.
    pub(crate) fn expand(&self, a: DoorId, b: DoorId, ctx: Option<NodeIdx>) -> Vec<DoorId> {
        if a == b {
            return vec![a];
        }
        // Lemma 6: pairs of non-boundary doors only arise as final edges.
        if !self.is_boundary_door(a) && !self.is_boundary_door(b) {
            debug_assert!(self.venue.d2d().arc_weight(a.0, b.0).is_some());
            return vec![a, b];
        }

        let mut banned: Vec<NodeIdx> = Vec::new();
        let mut ctx = ctx;
        loop {
            let node_idx = match ctx.take() {
                Some(n) if !banned.contains(&n) && self.matrix_has_pair(n, a, b) => n,
                _ => match self.lowest_common_matrix(a, b, &banned) {
                    Some(n) => n,
                    None => return self.dijkstra_expand(a, b),
                },
            };
            let node = self.node(node_idx);
            let fwd = node.matrix.row_index(a).zip(node.matrix.col_index(b));
            let Some((row, col)) = fwd else {
                // Only the transposed entry exists (leaf matrices are
                // door × access-door): expand the reverse and flip.
                let mut rev = self.expand(b, a, Some(node_idx));
                rev.reverse();
                return rev;
            };
            match node.matrix.hop_at(row, col) {
                Some(k) if k != a && k != b => {
                    let mut left = self.expand(a, k, Some(node_idx));
                    let right = self.expand(k, b, Some(node_idx));
                    debug_assert_eq!(left.last(), right.first());
                    left.extend_from_slice(&right[1..]);
                    return left;
                }
                _ => {
                    if node.is_leaf() {
                        // Leaf NULL entry: genuinely a final edge.
                        return vec![a, b];
                    }
                    // Non-leaf NULL: the pair is directly connected at this
                    // granularity; resolve it in a finer matrix.
                    banned.push(node_idx);
                }
            }
        }
    }

    /// Does `n`'s matrix contain the pair in either orientation?
    fn matrix_has_pair(&self, n: NodeIdx, a: DoorId, b: DoorId) -> bool {
        let m = &self.node(n).matrix;
        (m.row_index(a).is_some() && m.col_index(b).is_some())
            || (m.row_index(b).is_some() && m.col_index(a).is_some())
    }

    /// All nodes whose matrix contains door `d`: its leaves (rows of leaf
    /// matrices) and the parents of every node that has `d` as an access
    /// door (rows/cols of inner matrices).
    fn matrix_chain(&self, d: DoorId, out: &mut Vec<NodeIdx>) {
        out.clear();
        for leaf in self.door_leaves[d.index()] {
            if leaf == crate::NO_NODE {
                continue;
            }
            if !out.contains(&leaf) {
                out.push(leaf);
            }
            // Climb while `d` stays an access door; each such node's parent
            // holds `d` in its matrix.
            let mut cur = leaf;
            loop {
                let node = self.node(cur);
                if node.ad_index(d).is_none() {
                    break;
                }
                let parent = node.parent;
                if parent == crate::NO_NODE {
                    break;
                }
                if !out.contains(&parent) {
                    out.push(parent);
                }
                cur = parent;
            }
        }
    }

    /// The lowest-level node whose matrix contains both doors, excluding
    /// `banned`.
    fn lowest_common_matrix(&self, a: DoorId, b: DoorId, banned: &[NodeIdx]) -> Option<NodeIdx> {
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        self.matrix_chain(a, &mut ca);
        self.matrix_chain(b, &mut cb);
        ca.iter()
            .filter(|n| cb.contains(n) && !banned.contains(n) && self.matrix_has_pair(**n, a, b))
            .copied()
            .min_by_key(|&n| self.node(n).level)
    }

    /// Exact fallback: Dijkstra between the two doors on the D2D graph.
    fn dijkstra_expand(&self, a: DoorId, b: DoorId) -> Vec<DoorId> {
        self.decompose_fallbacks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut engine = self.engines.checkout();
        engine.run(
            self.venue.d2d(),
            &[(a.0, 0.0)],
            Termination::SettleAll(&[b.0]),
        );
        let mut seq: Vec<DoorId> = Vec::new();
        let mut cur = b.0;
        loop {
            seq.push(DoorId(cur));
            match engine.parent(cur) {
                Some(p) if p != NO_VERTEX => cur = p,
                _ => break,
            }
        }
        seq.reverse();
        debug_assert_eq!(seq.first(), Some(&a));
        seq
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::VipTreeConfig;
    use crate::IpTree;
    use indoor_graph::DijkstraEngine;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(15))]
        #[test]
        fn paths_are_valid_and_length_matches(seed in 0u64..2_000) {
            let venue = Arc::new(random_venue(seed));
            let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for (s, t) in workload::query_pairs(&venue, 20, seed ^ 0x9E) {
                let Some(path) = tree.shortest_path_points(&s, &t) else {
                    continue;
                };
                // Structurally valid and walkable.
                let recomputed = path.validate(&venue).unwrap_or_else(|e| {
                    panic!("seed {seed}: invalid path {e}: {path:?}")
                });
                // Its walked length equals the reported length...
                prop_assert!((recomputed - path.length).abs() < 1e-6 * recomputed.max(1.0),
                    "seed {seed}: reported {} vs walked {recomputed}", path.length);
                // ... and the reported length is the true shortest distance.
                let want = crate::ascent::tests::oracle_distance(&venue, &mut engine, &s, &t)
                    .expect("oracle disagrees on reachability");
                prop_assert!((path.length - want).abs() < 1e-6 * want.max(1.0),
                    "seed {seed}: path length {} vs oracle {want}", path.length);
            }
            prop_assert_eq!(tree.decompose_fallback_count(), 0,
                "decomposition needed Dijkstra fallbacks");
        }
    }
}
