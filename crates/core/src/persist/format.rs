//! On-disk framing shared by snapshots and write-ahead logs.
//!
//! Both file kinds are built from the same primitive: a **CRC-framed
//! section** `[len: u32][crc32: u32][payload: len bytes]`, preceded by an
//! 8-byte magic + format-version header identifying the file kind. The
//! payload bytes are the `indoor_model::wire` encoding of whatever the
//! section carries; the CRC (over the payload only) is what lets recovery
//! distinguish "valid record", "torn tail to truncate", and "corrupt
//! file to refuse".
//!
//! Framing errors surface as [`PersistError`], which wraps the
//! position-carrying [`LoadError`] of `indoor-model` as its `source` —
//! a corrupt byte names its own offset all the way up the error chain.

use crate::tree::BuildError;
use indoor_model::wire::crc32;
use indoor_model::{DeltaError, LoadError};
use std::path::{Path, PathBuf};

/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Magic + format version of snapshot files. Bump the trailing byte on
/// any layout change: old readers reject new files by tag, not by a
/// decode error deep inside a section.
pub(crate) const SNAPSHOT_MAGIC: &[u8; 8] = b"VIPSNAP\x03";

/// Magic + format version of per-venue WAL files.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"VIPWAL\x03\x00";

/// Failures of the persistence subsystem (snapshot save/load, WAL
/// append/replay). Decode-level failures keep the `indoor-model`
/// [`LoadError`] — with its byte offset and expected/found context — as
/// their [`std::error::Error::source`].
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem operation failed.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A section or record payload failed to decode.
    Load { path: PathBuf, source: LoadError },
    /// Structural corruption the decoder could localise (bad magic, CRC
    /// mismatch in a non-tail section, LSN sequence break).
    Corrupt {
        path: PathBuf,
        offset: u64,
        detail: String,
    },
    /// Rebuilding an index from recovered state failed.
    Build(BuildError),
    /// A WAL record failed to re-apply during recovery (only possible if
    /// the log and snapshot disagree — journalled batches were validated
    /// before being appended).
    Replay {
        path: PathBuf,
        lsn: u64,
        source: DeltaError,
    },
    /// Another live service already owns this durability directory
    /// (advisory lock on its `.lock` file). Two writers interleaving
    /// WAL appends would corrupt the history, so the second open fails
    /// loudly instead.
    Locked { path: PathBuf },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            PersistError::Load { path, source } => {
                write!(f, "cannot decode {}: {source}", path.display())
            }
            PersistError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt file {} at byte {offset}: {detail}",
                path.display()
            ),
            PersistError::Build(e) => write!(f, "cannot rebuild index from snapshot: {e}"),
            PersistError::Replay { path, lsn, source } => write!(
                f,
                "WAL record {lsn} of {} failed to replay: {source}",
                path.display()
            ),
            PersistError::Locked { path } => write!(
                f,
                "durability directory {} is locked by another live service",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Load { source, .. } => Some(source),
            PersistError::Build(e) => Some(e),
            PersistError::Replay { source, .. } => Some(source),
            PersistError::Corrupt { .. } | PersistError::Locked { .. } => None,
        }
    }
}

impl PersistError {
    pub(crate) fn io(path: &Path, source: std::io::Error) -> PersistError {
        PersistError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn load(path: &Path, source: LoadError) -> PersistError {
        PersistError::Load {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn corrupt(path: &Path, offset: u64, detail: impl Into<String>) -> PersistError {
        PersistError::Corrupt {
            path: path.to_path_buf(),
            offset,
            detail: detail.into(),
        }
    }
}

/// Append one CRC-framed section to `out`.
pub(crate) fn write_section(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading one frame at the current position.
#[derive(Debug)]
pub(crate) enum FrameRead<'a> {
    /// A complete, CRC-valid frame; the position now points past it.
    Frame(&'a [u8]),
    /// Clean end of buffer (position exactly at the end).
    End,
    /// The bytes from the current position on do not form a valid frame
    /// (short header, short payload, or CRC mismatch) — a torn tail when
    /// it is the last thing in a WAL, corruption anywhere else.
    Torn,
}

/// Read the frame starting at `*pos`, advancing it on success.
pub(crate) fn read_frame<'a>(buf: &'a [u8], pos: &mut usize) -> FrameRead<'a> {
    if *pos == buf.len() {
        return FrameRead::End;
    }
    if buf.len() - *pos < 8 {
        return FrameRead::Torn;
    }
    let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[*pos + 4..*pos + 8].try_into().unwrap());
    if buf.len() - *pos - 8 < len {
        return FrameRead::Torn;
    }
    let payload = &buf[*pos + 8..*pos + 8 + len];
    if crc32(payload) != crc {
        return FrameRead::Torn;
    }
    *pos += 8 + len;
    FrameRead::Frame(payload)
}

/// Validate an 8-byte magic header, advancing past it.
pub(crate) fn read_magic(
    buf: &[u8],
    pos: &mut usize,
    magic: &[u8; 8],
    path: &Path,
) -> Result<(), PersistError> {
    if buf.len() < 8 || &buf[..8] != magic {
        return Err(PersistError::corrupt(
            path,
            0,
            format!(
                "bad magic (expected {:?}, found {:?})",
                String::from_utf8_lossy(magic),
                String::from_utf8_lossy(&buf[..buf.len().min(8)])
            ),
        ));
    }
    *pos = 8;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_detect_tearing() {
        let mut buf = Vec::new();
        write_section(&mut buf, b"hello");
        write_section(&mut buf, b"");
        write_section(&mut buf, b"world!");
        let full = buf.clone();

        let mut pos = 0;
        assert!(matches!(
            read_frame(&full, &mut pos),
            FrameRead::Frame(b"hello")
        ));
        assert!(matches!(read_frame(&full, &mut pos), FrameRead::Frame(b"")));
        assert!(matches!(
            read_frame(&full, &mut pos),
            FrameRead::Frame(b"world!")
        ));
        assert!(matches!(read_frame(&full, &mut pos), FrameRead::End));

        // Any truncation of the last frame — header or payload — is Torn.
        for cut in 1..(8 + 6) {
            let torn = &full[..full.len() - cut];
            let mut pos = 0;
            assert!(matches!(read_frame(torn, &mut pos), FrameRead::Frame(_)));
            assert!(matches!(read_frame(torn, &mut pos), FrameRead::Frame(_)));
            assert!(
                matches!(read_frame(torn, &mut pos), FrameRead::Torn),
                "cut {cut}"
            );
        }

        // A flipped payload byte fails the CRC.
        let mut flipped = full.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let mut pos = 0;
        assert!(matches!(
            read_frame(&flipped, &mut pos),
            FrameRead::Frame(_)
        ));
        assert!(matches!(
            read_frame(&flipped, &mut pos),
            FrameRead::Frame(_)
        ));
        assert!(matches!(read_frame(&flipped, &mut pos), FrameRead::Torn));
    }
}
