//! Durability subsystem: service snapshots + per-venue delta WALs with
//! warm restart.
//!
//! PR 4 made the whole [`IndoorService`](crate::IndoorService) mutable
//! while serving — but volatile: a restart lost every venue, live object
//! set, keyword list and version counter, and index construction is the
//! dominant cost at venue scale (Liu et al.'s experimental analysis of
//! indoor queries), so a cold restart of a many-venue deployment is
//! minutes of rebuild. This module makes restarts warm:
//!
//! * **Snapshots**: a versioned, CRC-sectioned binary file holding every
//!   shard's rebuildable state —
//!   [`IndoorService::save_snapshot`](crate::IndoorService::save_snapshot)
//!   writes it concurrently with serving.
//! * **WAL**: every mutation batch
//!   (`update_objects`/`update_keyword_objects`/`attach_objects`/
//!   `add_venue`/`remove_venue`) appends one CRC-framed record to a
//!   per-venue append-only log, stamped with the shard's version counter
//!   as its LSN.
//! * **Recovery**:
//!   [`IndoorService::open`](crate::IndoorService::open) = load snapshot,
//!   replay each venue's WAL suffix (`LSN > version`), truncate torn
//!   tails, serve. Snapshotting rotates the logs.
//!
//! The **LSN = version invariant** is what ties the two halves together:
//! every mutation path holds its shard's journal lock across *apply +
//! version bump + WAL append*, so the log order is the apply order, the
//! snapshot's captured version is a cut point of that order, and "replay
//! the suffix past the version" is exact — no record is lost, none is
//! applied twice. Kill-and-recover equivalence (recovered answers
//! byte-identical to a never-restarted service) is enforced by proptest
//! in `tests/persistence.rs`; DESIGN.md §10 has the full argument.
//!
//! Durability is opt-in per service:
//! [`IndoorService::new`](crate::IndoorService::new) stays
//! volatile and journal-free; services from `open` journal every
//! acknowledged mutation. A WAL append failure on a durable service is
//! a typed error (`ServiceError::Persist`) and the mutation is **not**
//! applied — journal-before-apply, so memory never diverges from the
//! log. If even the rollback of a partial append fails, the shard
//! poisons itself into a read-only `Degraded` state rather than
//! acknowledging writes it cannot journal.
//!
//! All file I/O goes through the [`storage::Storage`] trait:
//! [`storage::OsStorage`] in production, the deterministic
//! fault-injecting [`storage::FaultStorage`] under test. DESIGN.md §11
//! states the fault model and the recover-or-reject invariant that
//! `tests/fault_injection.rs` enforces.

mod format;
mod recover;
mod snapshot;
pub mod storage;
pub(crate) mod wal;

pub use format::{PersistError, SNAPSHOT_FILE};
pub(crate) use recover::rebuild_from_create;
pub use recover::RecoveryReport;
pub use snapshot::SnapshotReport;
pub use storage::{CrashMode, FaultAt, FaultKind, FaultStorage, OsStorage, Storage, StorageFile};
