//! Warm restart: load the latest snapshot, replay each venue's WAL
//! suffix, truncate torn tails, then serve.
//!
//! [`IndoorService::open`] is the inverse of
//! [`IndoorService::save_snapshot`] plus the journal: every shard is
//! rebuilt from its snapshot state (venue JSON → `Venue` → `VipTree`,
//! object/keyword sets re-attached with their stable ids via
//! `build_with_ids`), then the WAL records with `LSN > version` are
//! re-applied **through the same code paths** the live service used
//! (`apply_object_deltas`, keyword `apply_delta`, wholesale attach) — so
//! the delta-vs-rebuild equivalence contract of `tests/object_deltas.rs`
//! is exactly what makes a recovered service answer byte-identically to
//! one that never went down (`tests/persistence.rs` proves it end to
//! end). Restored `epoch`/`version` counters continue monotonically,
//! which keeps future WAL LSNs and cache stamps well-ordered.
//!
//! Recovery itself is **recover-or-reject**: every read goes through the
//! service's [`Storage`], every structural anomaly beyond a torn tail is
//! a typed [`PersistError`], and a recovery that fails mid-way (even one
//! whose tail-truncation repair write fails — the "double fault" case)
//! returns an error instead of a service built on a half-read history.

use super::format::{PersistError, SNAPSHOT_FILE};
use super::snapshot::{read_snapshot, SlotState};
use super::storage::{OsStorage, Storage};
use super::wal::{self, OwnedWalRecord, WalEntry};
use crate::exec::QueryEngine;
use crate::keywords::KeywordObjects;
use crate::service::{AdmissionConfig, IndoorService, Shard, SyncPolicy};
use crate::vip::VipTree;
use indoor_model::Venue;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

/// What [`IndoorService::open`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether a snapshot file was present and loaded.
    pub snapshot_loaded: bool,
    /// Venues serving after recovery.
    pub venues: usize,
    /// WAL records re-applied past their snapshot states (lifecycle
    /// records included).
    pub replayed_records: usize,
    /// WAL files whose torn final record was truncated.
    pub truncated_tails: usize,
}

/// A shard being rebuilt: the engine plus its restored counters. Also
/// the follower-side bootstrap unit of replication (`crate::repl`
/// rebuilds a replica shard from a shipped `Create` record through
/// exactly this path).
pub(crate) struct Rebuilt {
    pub(crate) engine: Arc<QueryEngine>,
    pub(crate) epoch: u64,
    pub(crate) version: u64,
    pub(crate) cache_capacity: usize,
    pub(crate) admission: AdmissionConfig,
    pub(crate) sync: SyncPolicy,
}

fn rebuild_from_state(state: &SlotState, path: &Path) -> Result<Rebuilt, PersistError> {
    let venue =
        Venue::load_json(state.venue_json.as_slice()).map_err(|e| PersistError::load(path, e))?;
    let tree = VipTree::build(Arc::new(venue), &state.tree).map_err(PersistError::Build)?;
    if let Some(objects) = &state.objects {
        tree.attach_objects_with_ids(objects);
    }
    let engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(state.engine_threads);
    if let Some(keywords) = &state.keywords {
        let kw = KeywordObjects::build_with_ids(engine.tree().ip(), keywords);
        engine.set_keywords(Some(Arc::new(kw)));
    }
    Ok(Rebuilt {
        engine: Arc::new(engine),
        epoch: state.epoch,
        version: state.version,
        cache_capacity: state.cache_capacity,
        admission: state.admission,
        sync: state.sync,
    })
}

pub(crate) fn rebuild_from_create(
    record: &OwnedWalRecord,
    path: &Path,
) -> Result<Rebuilt, PersistError> {
    let OwnedWalRecord::Create {
        tree: config,
        engine_threads,
        cache_capacity,
        admission,
        sync,
        venue_json,
        objects,
        keywords,
    } = record
    else {
        unreachable!("caller matched Create");
    };
    let venue = Venue::load_json(venue_json.as_slice()).map_err(|e| PersistError::load(path, e))?;
    let tree = VipTree::build(Arc::new(venue), config).map_err(PersistError::Build)?;
    // Mirror `add_venue`: positional attach only when non-empty, so a
    // recovered never-attached tree still reports no object index.
    if !objects.is_empty() {
        tree.attach_objects(objects);
    }
    let engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(*engine_threads);
    if !keywords.is_empty() {
        let kw = KeywordObjects::build(engine.tree().ip(), keywords);
        engine.set_keywords(Some(Arc::new(kw)));
    }
    Ok(Rebuilt {
        engine: Arc::new(engine),
        epoch: 0,
        version: 0,
        cache_capacity: *cache_capacity,
        admission: *admission,
        sync: *sync,
    })
}

/// Replay one venue's WAL suffix onto its rebuilt shard.
fn replay(
    slot: usize,
    mut live: Option<Rebuilt>,
    entries: &[WalEntry],
    path: &Path,
    report: &mut RecoveryReport,
) -> Result<Option<Rebuilt>, PersistError> {
    // Slots are never reused, so a log holds at most one lifecycle:
    // Create … Remove (plus racing stragglers after the Remove). If the
    // venue ends up removed, every mutation record in the log is moot —
    // which also covers the crash window between a snapshot rename
    // (recording the slot as empty) and the rotation step that deletes
    // the removed venue's log: the leftover log's pre-Remove mutations
    // must not read as corruption.
    let ends_removed = entries
        .iter()
        .any(|e| matches!(e.record, OwnedWalRecord::Remove));
    let mut removed = false;
    for entry in entries {
        match &entry.record {
            OwnedWalRecord::Create { .. } => {
                // Skipped when snapshot state already covers the venue (a
                // log not rotated yet) — and when the log ends in Remove:
                // building a tree only to drop it at the Remove record
                // would waste the whole venue-construction cost.
                if live.is_none() && !ends_removed {
                    live = Some(rebuild_from_create(&entry.record, path)?);
                    report.replayed_records += 1;
                }
                continue;
            }
            OwnedWalRecord::Remove => {
                live = None;
                removed = true;
                report.replayed_records += 1;
                continue;
            }
            _ => {}
        }
        if removed || (live.is_none() && ends_removed) {
            // Moot mutation: either it raced `remove_venue` and landed
            // after the Remove record, or the snapshot already records
            // the slot as empty and the log (not yet deleted by
            // rotation) still ends in its Remove.
            continue;
        }
        let Some(shard) = live.as_mut() else {
            return Err(PersistError::corrupt(
                path,
                0,
                format!(
                    "mutation record LSN {} for absent venue slot {slot}",
                    entry.lsn
                ),
            ));
        };
        if entry.lsn <= shard.version {
            continue; // the snapshot already includes this record
        }
        if entry.lsn != shard.version + 1 {
            return Err(PersistError::corrupt(
                path,
                0,
                format!(
                    "LSN gap in venue slot {slot}: record {} after version {}",
                    entry.lsn, shard.version
                ),
            ));
        }
        match &entry.record {
            OwnedWalRecord::Deltas(deltas) => {
                shard
                    .engine
                    .tree()
                    .ip()
                    .apply_object_deltas(deltas)
                    .map_err(|e| PersistError::Replay {
                        path: path.to_path_buf(),
                        lsn: entry.lsn,
                        source: e,
                    })?;
            }
            OwnedWalRecord::Attach(objects) => {
                shard.engine.tree().ip().attach_objects(objects);
                shard.epoch += 1;
            }
            OwnedWalRecord::KeywordUpdates(updates) => {
                let ip = shard.engine.tree().ip();
                let mut kw = match shard.engine.keywords() {
                    Some(kw) => (*kw).clone(),
                    None => KeywordObjects::build(ip, &[]),
                };
                kw.apply_delta(ip, updates)
                    .map_err(|e| PersistError::Replay {
                        path: path.to_path_buf(),
                        lsn: entry.lsn,
                        source: e,
                    })?;
                shard.engine.set_keywords(Some(Arc::new(kw)));
            }
            OwnedWalRecord::Create { .. } | OwnedWalRecord::Remove => unreachable!(),
        }
        shard.version = entry.lsn;
        report.replayed_records += 1;
    }
    Ok(live)
}

impl IndoorService {
    /// Open a durable service rooted at `dir` (created if missing):
    /// load `snapshot.bin` if present, replay each venue's WAL suffix
    /// (records with `LSN >` the snapshot's version), truncate torn
    /// tails, and serve. The returned service journals every future
    /// mutation into `dir`; [`IndoorService::save_snapshot`] into the
    /// same `dir` rotates the logs.
    ///
    /// An empty or missing directory yields an empty durable service —
    /// the natural way to *start* a durable deployment.
    pub fn open(dir: impl AsRef<Path>) -> Result<IndoorService, PersistError> {
        Self::open_with_report(dir).map(|(service, _)| service)
    }

    /// As [`IndoorService::open`], also returning what recovery found.
    pub fn open_with_report(
        dir: impl AsRef<Path>,
    ) -> Result<(IndoorService, RecoveryReport), PersistError> {
        Self::open_with_storage(dir, Arc::new(OsStorage))
    }

    /// As [`IndoorService::open_with_report`], with every byte of I/O —
    /// recovery reads, repairs, and all future journalling — routed
    /// through `storage`. This is the injection point the
    /// fault-injection tests drive with
    /// [`FaultStorage`](super::storage::FaultStorage); production code
    /// wants [`IndoorService::open`].
    pub fn open_with_storage(
        dir: impl AsRef<Path>,
        storage: Arc<dyn Storage>,
    ) -> Result<(IndoorService, RecoveryReport), PersistError> {
        let dir = dir.as_ref();
        storage
            .create_dir_all(dir)
            .map_err(|e| PersistError::io(dir, e))?;
        // Single-writer exclusion: two live services appending to the
        // same WALs would interleave LSNs into a history that matches
        // neither. The advisory lock is held for the service's lifetime
        // and released by the OS on drop or crash.
        let lock_path = dir.join(".lock");
        let dir_lock = storage.lock(&lock_path).map_err(|e| {
            if e.kind() == io::ErrorKind::WouldBlock {
                PersistError::Locked {
                    path: dir.to_path_buf(),
                }
            } else {
                PersistError::io(&lock_path, e)
            }
        })?;
        let mut report = RecoveryReport::default();

        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut states: Vec<Option<SlotState>> = if storage.exists(&snapshot_path) {
            report.snapshot_loaded = true;
            read_snapshot(&storage, &snapshot_path)?
        } else {
            Vec::new()
        };

        // Venues created after the last snapshot live only in their WAL.
        let mut max_slot = states.len();
        for name in storage
            .read_dir_names(dir)
            .map_err(|e| PersistError::io(dir, e))?
        {
            if let Some(slot) = wal::slot_of_wal_name(&name) {
                max_slot = max_slot.max(slot + 1);
            }
        }
        states.resize_with(max_slot, || None);

        let mut slots: Vec<Option<Arc<Shard>>> = Vec::with_capacity(states.len());
        for (slot, state) in states.iter().enumerate() {
            let path = wal::wal_path(dir, slot);
            let entries = if storage.exists(&path) {
                let (entries, truncated) = wal::read_and_repair(&storage, &path)?;
                if truncated {
                    report.truncated_tails += 1;
                }
                entries
            } else {
                Vec::new()
            };

            let rebuilt = state
                .as_ref()
                .map(|s| rebuild_from_state(s, &snapshot_path))
                .transpose()?;
            let rebuilt = replay(slot, rebuilt, &entries, &path, &mut report)?;

            slots.push(rebuilt.map(|r| {
                Arc::new(Shard::new(
                    r.engine,
                    r.epoch,
                    r.version,
                    r.cache_capacity,
                    r.admission,
                    r.sync,
                ))
            }));
        }

        // Every surviving slot journals from here on: reopen (or create)
        // its log for appending. Slots that stay `None` keep no journal —
        // their ids are burned, recorded by the snapshot's empty slot or
        // the log's Remove record.
        for (slot, shard) in slots.iter().enumerate() {
            let Some(shard) = shard else { continue };
            let path = wal::wal_path(dir, slot);
            let policy = shard.sync_policy();
            let wal = if storage.exists(&path) {
                wal::VenueWal::open_append(&storage, dir, slot, policy)?
            } else {
                // Snapshot-only venue (log rotated away, then deleted, or
                // an exported snapshot opened in a fresh directory).
                wal::VenueWal::create(&storage, dir, slot, policy)?
            };
            *shard.journal.lock().expect("journal lock") = Some(wal);
        }

        report.venues = slots.iter().flatten().count();
        let service = IndoorService {
            shards: RwLock::new(slots),
            counters: Default::default(),
            deltas_absorbed: Default::default(),
            storage,
            persist_root: Some(dir.to_path_buf()),
            persist_lock: Mutex::new(()),
            _persist_dir_lock: Some(dir_lock),
            registry: crate::telemetry::Registry::new(),
        };
        // Recovered shards are live publishes too: re-create their
        // venue-labelled instruments (counters restart from zero — the
        // registry is process state, not durable state).
        {
            let shards = service.shards.read().expect("shard map lock");
            for (slot, shard) in shards.iter().enumerate() {
                if let Some(shard) = shard {
                    service.wire_telemetry(shard, indoor_model::VenueId::from(slot));
                }
            }
        }
        Ok((service, report))
    }

    /// The durability directory this service journals into (`None` for a
    /// volatile [`IndoorService::new`] service).
    pub fn persist_root(&self) -> Option<&Path> {
        self.persist_root.as_deref()
    }
}
