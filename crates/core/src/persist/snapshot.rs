//! Whole-service snapshots: every venue shard's rebuildable state in one
//! versioned, CRC-sectioned binary file.
//!
//! A snapshot stores, per shard slot: the venue document (the JSON
//! `indoor-venue/2` encoding, embedded as one byte section — trees are
//! deterministic from the venue, so matrices are *rebuilt* on load, which
//! is what keeps snapshots small), the tree/engine/cache/admission
//! configuration, the live object set with its stable [`ObjectId`]s, the
//! live labelled keyword set, and the `epoch`/`version` counters. Empty
//! slots (removed venues) are stored too —
//! [`VenueId`](indoor_model::VenueId)s are never reused, and that
//! invariant must survive a restart.
//!
//! # Consistency
//!
//! [`IndoorService::save_snapshot`] captures each shard under that
//! shard's journal lock — the lock every mutation path holds across
//! *WAL append + apply + version bump* — so a captured `(state, version)`
//! pair is always mutually consistent and the WAL suffix with
//! `LSN > version` is exactly the mutations the snapshot missed.
//! Queries never take the journal lock: snapshotting is concurrent with
//! serving. Serialisation happens *after* the locks drop, from immutable
//! `Arc` snapshots.
//!
//! # Crash durability
//!
//! The file is written to a temp name, fsynced, renamed over
//! `snapshot.bin`, and the directory is fsynced — so a completed
//! `save_snapshot` survives power loss, and an interrupted one leaves
//! the previous snapshot intact (rename without the directory sync is
//! not crash-durable on ext4; see DESIGN.md §11).

use super::format::{self, PersistError, SNAPSHOT_FILE, SNAPSHOT_MAGIC};
use super::storage::Storage;
use super::wal::{self, RotateFailure};
use crate::service::{AdmissionConfig, IndoorService, Shard, SyncPolicy};
use crate::tree::VipTreeConfig;
use indoor_model::wire::{WireReader, WireWriter};
use indoor_model::{IndoorPoint, LoadError, ObjectId};
use std::path::Path;
use std::sync::Arc;

/// What one [`IndoorService::save_snapshot`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotReport {
    /// Registered venues captured (empty slots not counted).
    pub venues: usize,
    /// Bytes of the written snapshot file.
    pub bytes: usize,
    /// WAL records dropped by rotation (0 for a volatile service or when
    /// snapshotting outside the service's durability directory).
    pub wal_records_dropped: usize,
}

/// The rebuildable state of one occupied shard slot.
pub(crate) struct SlotState {
    pub epoch: u64,
    pub version: u64,
    pub tree: VipTreeConfig,
    pub engine_threads: usize,
    pub cache_capacity: usize,
    pub admission: AdmissionConfig,
    pub sync: SyncPolicy,
    pub venue_json: Vec<u8>,
    /// `None` when the tree never had an object set attached.
    pub objects: Option<Vec<(ObjectId, IndoorPoint)>>,
    /// `None` when the engine never had a keyword index attached.
    pub keywords: Option<Vec<(ObjectId, IndoorPoint, Vec<String>)>>,
}

const SLOT_EMPTY: u8 = 0;
const SLOT_VENUE: u8 = 1;

fn encode_slot(state: Option<&SlotState>) -> Vec<u8> {
    let mut w = WireWriter::new();
    let Some(s) = state else {
        w.put_u8(SLOT_EMPTY);
        return w.into_bytes();
    };
    w.put_u8(SLOT_VENUE);
    w.put_u64(s.epoch);
    w.put_u64(s.version);
    wal::encode_config(&mut w, &s.tree);
    w.put_u32(s.engine_threads as u32);
    w.put_u64(s.cache_capacity as u64);
    wal::encode_admission(&mut w, &s.admission);
    wal::encode_sync(&mut w, &s.sync);
    w.put_bytes(&s.venue_json);
    match &s.objects {
        None => w.put_u8(0),
        Some(objects) => {
            w.put_u8(1);
            w.put_u32(objects.len() as u32);
            for (id, p) in objects {
                w.put_u32(id.0);
                w.put_point(p);
            }
        }
    }
    match &s.keywords {
        None => w.put_u8(0),
        Some(keywords) => {
            w.put_u8(1);
            w.put_u32(keywords.len() as u32);
            for (id, p, labels) in keywords {
                w.put_u32(id.0);
                w.put_point(p);
                w.put_labels(labels);
            }
        }
    }
    w.into_bytes()
}

fn decode_slot(payload: &[u8]) -> Result<Option<SlotState>, LoadError> {
    let mut r = WireReader::new(payload);
    match r.get_u8("slot tag")? {
        SLOT_EMPTY => {
            r.finish("end of empty slot")?;
            return Ok(None);
        }
        SLOT_VENUE => {}
        other => {
            return Err(LoadError::Wire {
                offset: 0,
                expected: "slot tag 0 or 1",
                found: format!("tag {other}"),
            })
        }
    }
    let epoch = r.get_u64("epoch")?;
    let version = r.get_u64("version")?;
    let tree = wal::decode_config(&mut r)?;
    let engine_threads = r.get_u32("engine threads")? as usize;
    let cache_capacity = r.get_u64("cache capacity")? as usize;
    let admission = wal::decode_admission(&mut r)?;
    let sync = wal::decode_sync(&mut r)?;
    let venue_json = r.get_bytes("venue json")?.to_vec();
    let objects = match r.get_u8("objects presence flag")? {
        0 => None,
        _ => {
            let n = r.get_u32("object count")? as usize;
            let mut objects = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let id = ObjectId(r.get_u32("object id")?);
                objects.push((id, r.get_point()?));
            }
            Some(objects)
        }
    };
    let keywords = match r.get_u8("keywords presence flag")? {
        0 => None,
        _ => {
            let n = r.get_u32("keyword object count")? as usize;
            let mut keywords = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let id = ObjectId(r.get_u32("keyword object id")?);
                let p = r.get_point()?;
                keywords.push((id, p, r.get_labels()?));
            }
            Some(keywords)
        }
    };
    r.finish("end of slot")?;
    Ok(Some(SlotState {
        epoch,
        version,
        tree,
        engine_threads,
        cache_capacity,
        admission,
        sync,
        venue_json,
        objects,
        keywords,
    }))
}

/// Read a snapshot file back into per-slot states.
pub(crate) fn read_snapshot(
    storage: &Arc<dyn Storage>,
    path: &Path,
) -> Result<Vec<Option<SlotState>>, PersistError> {
    let buf = storage.read(path).map_err(|e| PersistError::io(path, e))?;
    let mut pos = 0usize;
    format::read_magic(&buf, &mut pos, SNAPSHOT_MAGIC, path)?;
    if buf.len() < pos + 4 {
        return Err(PersistError::corrupt(
            path,
            pos as u64,
            "missing slot count",
        ));
    }
    let slots = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
    pos += 4;
    let mut out = Vec::with_capacity(slots.min(65_536));
    for slot in 0..slots {
        match format::read_frame(&buf, &mut pos) {
            format::FrameRead::Frame(payload) => {
                out.push(decode_slot(payload).map_err(|e| PersistError::load(path, e))?);
            }
            _ => {
                return Err(PersistError::corrupt(
                    path,
                    pos as u64,
                    format!("slot section {slot} of {slots} missing or CRC-invalid"),
                ))
            }
        }
    }
    if pos != buf.len() {
        return Err(PersistError::corrupt(
            path,
            pos as u64,
            "trailing bytes after final slot section",
        ));
    }
    Ok(out)
}

/// One shard's state as captured under its journal lock: counters plus
/// `Arc` handles to the immutable copy-on-write snapshots. Cheap to
/// take — serialisation happens later, outside every lock, via
/// [`ShardCapture::into_state`].
struct ShardCapture {
    engine: Arc<crate::exec::QueryEngine>,
    epoch: u64,
    version: u64,
    cache_capacity: usize,
    admission: AdmissionConfig,
    sync: SyncPolicy,
    objects: Option<Arc<crate::objects::ObjectIndex>>,
    keywords: Option<Arc<crate::keywords::KeywordObjects>>,
}

impl ShardCapture {
    /// Capture the shard. Must be called with the shard's journal lock
    /// held, so the `(snapshots, version)` pair is a consistent cut of
    /// the mutation order; does only counter reads and `Arc` clones —
    /// updaters are excluded for nanoseconds, not for the serialisation.
    fn take(shard: &Shard) -> ShardCapture {
        let (engine, epoch, version) = {
            let serving = shard.serving.read().expect("serving lock");
            (serving.engine.clone(), serving.epoch, serving.version)
        };
        let cache_capacity = shard.cache.lock().expect("cache poisoned").capacity();
        let objects = engine.tree().ip().object_index();
        let keywords = engine.keywords();
        ShardCapture {
            engine,
            epoch,
            version,
            cache_capacity,
            admission: shard.admission_config(),
            sync: shard.sync_policy(),
            objects,
            keywords,
        }
    }

    /// Serialise the captured snapshots (venue JSON, live sets). Run
    /// outside every lock; everything `Arc`ed here is immutable.
    fn into_state(self) -> SlotState {
        let ip = self.engine.tree().ip();
        let mut venue_json = Vec::new();
        ip.venue()
            .save_json(&mut venue_json)
            .expect("venue serialises to memory");
        SlotState {
            epoch: self.epoch,
            version: self.version,
            tree: ip.build_config().clone(),
            engine_threads: self.engine.configured_threads(),
            cache_capacity: self.cache_capacity,
            admission: self.admission,
            sync: self.sync,
            venue_json,
            objects: self.objects.map(|oi| oi.live_pairs()),
            keywords: self.keywords.map(|kw| kw.live_labelled()),
        }
    }
}

impl IndoorService {
    /// Persist the whole service into `dir` (created if missing):
    /// `snapshot.bin` holding every venue's rebuildable state, captured
    /// per shard under its journal lock — concurrent with serving, and
    /// consistent with the WAL by construction (the same lock orders the
    /// capture against every `LSN = version` append).
    ///
    /// On a durable service (one from [`IndoorService::open`]) whose
    /// durability directory is `dir`, the write also **rotates** each
    /// venue's WAL: records the snapshot covers (`LSN <= version`) are
    /// dropped, and logs of removed venues are deleted. Snapshotting
    /// into any *other* directory is a pure export and leaves the WALs
    /// alone. The file is written to a temp name, fsynced, renamed and
    /// the directory fsynced, so a completed save survives power loss
    /// and a crash mid-save leaves the previous snapshot intact.
    pub fn save_snapshot(&self, dir: impl AsRef<Path>) -> Result<SnapshotReport, PersistError> {
        let dir = dir.as_ref();
        let storage = self.storage.clone();
        // One snapshot at a time: two racing saves would fight over the
        // temp file and could rotate a WAL past a version the winning
        // (staler) snapshot does not cover. Also excludes a durable
        // `add_venue` mid-publication (reserved slot, unpublished shard).
        let _persist = self.persist_lock.lock().expect("persist lock");
        storage
            .create_dir_all(dir)
            .map_err(|e| PersistError::io(dir, e))?;

        // Stable slot view: concurrent add_venue appends land in the next
        // snapshot; concurrent remove_venue journals a Remove record that
        // out-sorts every version.
        let shards: Vec<Option<Arc<Shard>>> = self.shards.read().expect("shard map lock").clone();
        let captures: Vec<Option<ShardCapture>> = shards
            .iter()
            .map(|shard| {
                shard.as_ref().map(|shard| {
                    // Lock held only for the Arc-clone capture; the
                    // expensive serialisation runs below, outside it.
                    let journal = shard.journal.lock().expect("journal lock");
                    let capture = ShardCapture::take(shard);
                    drop(journal);
                    capture
                })
            })
            .collect();
        let states: Vec<Option<SlotState>> = captures
            .into_iter()
            .map(|c| c.map(ShardCapture::into_state))
            .collect();

        let mut out = Vec::from(SNAPSHOT_MAGIC.as_slice());
        out.extend_from_slice(&(states.len() as u32).to_le_bytes());
        for state in &states {
            let payload = encode_slot(state.as_ref());
            format::write_section(&mut out, &payload);
        }
        let bytes = out.len();
        let tmp = dir.join("snapshot.tmp");
        let path = dir.join(SNAPSHOT_FILE);
        storage
            .write(&tmp, &out)
            .map_err(|e| PersistError::io(&tmp, e))?;
        storage
            .sync_file(&tmp)
            .map_err(|e| PersistError::io(&tmp, e))?;
        storage
            .rename(&tmp, &path)
            .map_err(|e| PersistError::io(&path, e))?;
        storage
            .sync_dir(dir)
            .map_err(|e| PersistError::io(dir, e))?;

        // Rotation only applies when this snapshot is the one recovery
        // would actually load before these WALs.
        let mut wal_records_dropped = 0usize;
        let rotating = self
            .persist_root
            .as_ref()
            .is_some_and(|root| same_dir(root, dir));
        if rotating {
            for (slot, (shard, state)) in shards.iter().zip(&states).enumerate() {
                match (shard, state) {
                    (Some(shard), Some(state)) => {
                        let mut journal = shard.journal.lock().expect("journal lock");
                        if journal.is_some() {
                            match wal::rotate(&storage, dir, slot, state.version, state.sync) {
                                Ok((fresh, dropped)) => {
                                    *journal = Some(fresh);
                                    wal_records_dropped += dropped;
                                }
                                // The old log (and the held append
                                // handle) are still valid — rotation
                                // simply didn't happen this round.
                                Err(RotateFailure::Safe(e)) => return Err(e),
                                // The rename landed but the handle could
                                // not be refreshed: appends through it
                                // would be lost. Stop journalling on this
                                // shard rather than acknowledging writes
                                // into an unlinked file.
                                Err(f @ RotateFailure::HandleInvalidated(_)) => {
                                    shard.degrade(format!(
                                        "WAL rotation of slot {slot} failed after rename; \
                                         append handle may target the unlinked old log"
                                    ));
                                    return Err(f.into_error());
                                }
                            }
                        }
                    }
                    _ => {
                        // Removed venue: the snapshot records the empty
                        // slot, so its log (if any) is spent. The dir
                        // sync makes the deletion crash-durable.
                        let path = wal::wal_path(dir, slot);
                        if storage.exists(&path) {
                            storage
                                .remove_file(&path)
                                .map_err(|e| PersistError::io(&path, e))?;
                            storage
                                .sync_dir(dir)
                                .map_err(|e| PersistError::io(dir, e))?;
                        }
                    }
                }
            }
        }

        Ok(SnapshotReport {
            venues: states.iter().flatten().count(),
            bytes,
            wal_records_dropped,
        })
    }
}

fn same_dir(a: &Path, b: &Path) -> bool {
    match (a.canonicalize(), b.canonicalize()) {
        (Ok(a), Ok(b)) => a == b,
        _ => a == b,
    }
}
