//! The storage abstraction under the durability subsystem, plus a
//! deterministic fault-injection implementation for crash-consistency
//! testing.
//!
//! Every filesystem touch of `persist/` — snapshot writes, WAL appends,
//! renames, directory syncs, advisory locks — goes through the
//! [`Storage`] trait. Production uses [`OsStorage`] (thin `std::fs`
//! calls); tests use [`FaultStorage`], an in-memory filesystem that
//! injects scripted failpoints (ENOSPC after N bytes, torn writes, sync
//! failures, crash-before/after an operation) from a deterministic
//! schedule and can then simulate either a **process crash** (page cache
//! survives) or a **power loss** (only explicitly synced file content and
//! explicitly synced directory entries survive).
//!
//! The split matters because the two crash models bound different
//! guarantees: WAL appends are acknowledged without fsync (process-crash
//! durability — see `VenueWal::append` in `persist::wal`),
//! while snapshots are written tmp → `sync_file` → `rename` →
//! [`Storage::sync_dir`] and therefore survive power loss. DESIGN.md §11
//! states the full contract; `tests/fault_injection.rs` enforces it.

use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An append-cursor file handle (the only write mode `persist/` uses:
/// WAL logs are append-only, everything else is whole-file
/// [`Storage::write`]).
pub trait StorageFile: Send + Debug {
    /// Append `bytes` at the current end of file.
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Push buffered bytes to the OS (page cache) — *not* durable.
    fn flush(&mut self) -> io::Result<()>;
    /// fsync: make previously written content durable.
    fn sync(&mut self) -> io::Result<()>;
}

/// A held advisory lock; released on drop.
pub trait StorageLock: Send + Sync + Debug {}

/// Filesystem surface of the durability subsystem. Implementations must
/// be shareable across threads ([`Arc<dyn Storage>`]).
///
/// Contract highlights (what recovery is allowed to assume):
///
/// * [`Storage::write`] replaces content non-atomically — callers that
///   need atomic replacement write a temp name, [`Storage::sync_file`]
///   it, [`Storage::rename`] over the target, then
///   [`Storage::sync_dir`] the parent.
/// * [`Storage::rename`] is atomic in the *volatile* namespace; the new
///   directory entry is durable only after [`Storage::sync_dir`].
/// * [`Storage::lock`] returns `ErrorKind::WouldBlock` when another live
///   handle holds the lock; the lock dies with its handle (or the
///   process), never staying stale across a crash.
pub trait Storage: Send + Sync + Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create/truncate `path` and write `bytes` (not atomic, not synced).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Create/truncate `path`, returning an append handle.
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Open an existing file for appending.
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>>;
    /// Truncate `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically rename `from` over `to` (volatile namespace).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// File names (not paths) of the entries directly under `path`.
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>>;
    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Current length of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// fsync a file's content by path.
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// fsync a directory: make its current entries (names created,
    /// renamed or removed under it) durable. Rename without this is not
    /// crash-durable on ext4.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Take the advisory lock file at `path`.
    fn lock(&self, path: &Path) -> io::Result<Box<dyn StorageLock>>;
}

// ---------------------------------------------------------------------------
// OsStorage
// ---------------------------------------------------------------------------

/// Production [`Storage`]: direct `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsStorage;

#[derive(Debug)]
struct OsFile(std::fs::File);

impl StorageFile for OsFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(bytes)
    }
    fn flush(&mut self) -> io::Result<()> {
        use std::io::Write;
        self.0.flush()
    }
    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

/// Advisory lock backed by [`std::fs::File::try_lock`]; the OS releases
/// it when the handle drops (so a crash never leaves a stale lock).
#[derive(Debug)]
struct OsLock(#[allow(dead_code)] std::fs::File);

impl StorageLock for OsLock {}

impl Storage for OsStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(OsFile(std::fs::File::create(path)?)))
    }
    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        Ok(Box::new(OsFile(
            std::fs::OpenOptions::new().append(true).open(path)?,
        )))
    }
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }
    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to make its entries durable (ext4 requires it after rename).
        std::fs::File::open(path)?.sync_all()
    }
    fn lock(&self, path: &Path) -> io::Result<Box<dyn StorageLock>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.try_lock().map_err(|e| match e {
            std::fs::TryLockError::WouldBlock => io::Error::from(io::ErrorKind::WouldBlock),
            std::fs::TryLockError::Error(e) => e,
        })?;
        Ok(Box::new(OsLock(file)))
    }
}

// ---------------------------------------------------------------------------
// FaultStorage
// ---------------------------------------------------------------------------

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write persists only `keep` bytes, then fails with
    /// `StorageFull`. **Not** a crash: the caller sees the error and
    /// later operations succeed (the rollback path is live).
    Enospc { keep: usize },
    /// Torn write: `keep` bytes land, then the process crashes — the
    /// operation errors and every subsequent operation fails until
    /// [`FaultStorage::crash`] resets.
    TornWrite { keep: usize },
    /// The sync/flush fails with an I/O error; not a crash, and nothing
    /// becomes durable.
    SyncFail,
    /// Crash before the operation takes any effect (e.g.
    /// crash-before-rename).
    CrashBefore,
    /// The operation completes in the volatile namespace, then the
    /// process crashes (e.g. crash-after-rename-before-dir-sync).
    CrashAfter,
}

/// Which crash semantics [`FaultStorage::crash`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Process crash: the page cache survives — every volatile write is
    /// still there on reopen.
    Process,
    /// Power loss: only synced file content under directory entries made
    /// durable by [`Storage::sync_dir`] survives.
    Power,
}

/// Where an armed failpoint fires.
#[derive(Debug, Clone)]
pub enum FaultAt {
    /// The `n`-th fault-eligible operation (mutating or syncing; reads
    /// are exempt), counted from 0 by [`FaultStorage::ops`].
    Op(u64),
    /// The first eligible operation whose primary path contains this
    /// substring (e.g. `"venue-0.wal.tmp"` for a rotation's temp write).
    PathContains(String),
}

#[derive(Debug, Clone)]
struct ArmedFault {
    at: FaultAt,
    kind: FaultKind,
}

#[derive(Debug, Default, Clone)]
struct Inode {
    data: Vec<u8>,
    /// Content as of the last fsync of this inode (what power loss
    /// reverts to).
    synced: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemFs {
    next_inode: u64,
    inodes: HashMap<u64, Inode>,
    /// Volatile namespace: directory entry → inode.
    files: HashMap<PathBuf, u64>,
    /// Durable namespace: entries as of the last `sync_dir` of their
    /// parent directory.
    durable: HashMap<PathBuf, u64>,
    dirs: HashSet<PathBuf>,
    /// Held advisory locks (path → unique token).
    locked: HashMap<PathBuf, u64>,
    next_lock_token: u64,
    ops: u64,
    plan: Vec<ArmedFault>,
    crashed: bool,
}

fn eio(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

impl MemFs {
    fn inode_of(&self, path: &Path) -> io::Result<u64> {
        self.files
            .get(path)
            .copied()
            .ok_or_else(|| io::Error::from(io::ErrorKind::NotFound))
    }

    fn new_inode(&mut self) -> u64 {
        let id = self.next_inode;
        self.next_inode += 1;
        self.inodes.insert(id, Inode::default());
        id
    }

    /// Gate every fault-eligible operation: fail hard after a crash,
    /// advance the op counter, and fire the first matching armed fault
    /// (one-shot). Returns the fault to apply, if any.
    fn enter_op(&mut self, path: &Path) -> io::Result<Option<FaultKind>> {
        if self.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        let op = self.ops;
        self.ops += 1;
        let hit = self.plan.iter().position(|f| match &f.at {
            FaultAt::Op(n) => *n == op,
            FaultAt::PathContains(s) => path.to_string_lossy().contains(s.as_str()),
        });
        Ok(hit.map(|i| self.plan.remove(i).kind))
    }
}

/// Deterministic in-memory [`Storage`] with scripted failpoints. Clone
/// handles share the same filesystem, so a test can keep one for
/// [`FaultStorage::set_fault`] / [`FaultStorage::crash`] while the
/// service owns another as its `Arc<dyn Storage>`.
#[derive(Debug, Default, Clone)]
pub struct FaultStorage {
    fs: Arc<Mutex<MemFs>>,
}

impl FaultStorage {
    /// An empty in-memory filesystem with no faults armed.
    pub fn new() -> FaultStorage {
        FaultStorage::default()
    }

    /// Arm a one-shot failpoint. Multiple armed faults fire
    /// independently, each at its own matching operation.
    pub fn set_fault(&self, at: FaultAt, kind: FaultKind) {
        self.fs
            .lock()
            .expect("fault fs lock")
            .plan
            .push(ArmedFault { at, kind });
    }

    /// Fault-eligible operations performed so far (the schedule domain
    /// for [`FaultAt::Op`]).
    pub fn ops(&self) -> u64 {
        self.fs.lock().expect("fault fs lock").ops
    }

    /// Whether a crash-kind fault has fired (every operation now fails).
    pub fn crashed(&self) -> bool {
        self.fs.lock().expect("fault fs lock").crashed
    }

    /// Simulate the machine coming back up: release every advisory lock,
    /// clear armed faults and the crashed flag, and — under
    /// [`CrashMode::Power`] — revert the filesystem to its durable image
    /// (synced directory entries pointing at synced content).
    pub fn crash(&self, mode: CrashMode) {
        let mut fs = self.fs.lock().expect("fault fs lock");
        fs.locked.clear();
        fs.plan.clear();
        fs.crashed = false;
        if mode == CrashMode::Power {
            fs.files = fs.durable.clone();
            let live: HashSet<u64> = fs.files.values().copied().collect();
            for (id, inode) in fs.inodes.iter_mut() {
                if live.contains(id) {
                    inode.data = inode.synced.clone();
                }
            }
        }
    }

    /// The volatile content of `path` (test observability; bypasses the
    /// fault schedule and the crashed flag).
    pub fn peek(&self, path: &Path) -> Option<Vec<u8>> {
        let fs = self.fs.lock().expect("fault fs lock");
        let id = fs.files.get(path)?;
        Some(fs.inodes[id].data.clone())
    }
}

/// Apply a write-shaped fault: land `keep` bytes of `bytes` via `apply`,
/// then return the fault's error (setting `crashed` for crash kinds).
fn faulted_write(
    fs: &mut MemFs,
    kind: FaultKind,
    bytes: &[u8],
    mut apply: impl FnMut(&mut MemFs, &[u8]),
) -> io::Result<()> {
    match kind {
        FaultKind::Enospc { keep } => {
            apply(fs, &bytes[..keep.min(bytes.len())]);
            Err(io::Error::from(io::ErrorKind::StorageFull))
        }
        FaultKind::TornWrite { keep } => {
            apply(fs, &bytes[..keep.min(bytes.len())]);
            fs.crashed = true;
            Err(eio("simulated crash: torn write"))
        }
        FaultKind::SyncFail => Err(eio("simulated sync failure")),
        FaultKind::CrashBefore => {
            fs.crashed = true;
            Err(eio("simulated crash before write"))
        }
        FaultKind::CrashAfter => {
            apply(fs, bytes);
            fs.crashed = true;
            Err(eio("simulated crash after write"))
        }
    }
}

/// Apply a non-write fault (rename, remove, truncate, create …): the
/// operation either happens fully (`CrashAfter`) or not at all.
fn faulted_op(fs: &mut MemFs, kind: FaultKind, apply: impl FnOnce(&mut MemFs)) -> io::Result<()> {
    match kind {
        FaultKind::Enospc { .. } => Err(io::Error::from(io::ErrorKind::StorageFull)),
        FaultKind::SyncFail => Err(eio("simulated I/O failure")),
        FaultKind::TornWrite { .. } | FaultKind::CrashBefore => {
            fs.crashed = true;
            Err(eio("simulated crash before operation"))
        }
        FaultKind::CrashAfter => {
            apply(fs);
            fs.crashed = true;
            Err(eio("simulated crash after operation"))
        }
    }
}

#[derive(Debug)]
struct FaultFile {
    fs: Arc<Mutex<MemFs>>,
    path: PathBuf,
}

impl StorageFile for FaultFile {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(&self.path)?;
        let id = fs.inode_of(&self.path)?;
        let append = |fs: &mut MemFs, b: &[u8]| {
            fs.inodes
                .get_mut(&id)
                .expect("inode")
                .data
                .extend_from_slice(b)
        };
        match fault {
            None => {
                append(&mut fs, bytes);
                Ok(())
            }
            Some(kind) => faulted_write(&mut fs, kind, bytes, append),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        match fs.enter_op(&self.path)? {
            None => Ok(()),
            Some(kind) => faulted_op(&mut fs, kind, |_| {}),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(&self.path)?;
        let id = fs.inode_of(&self.path)?;
        let sync = |fs: &mut MemFs| {
            let inode = fs.inodes.get_mut(&id).expect("inode");
            inode.synced = inode.data.clone();
        };
        match fault {
            None => {
                sync(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, sync),
        }
    }
}

#[derive(Debug)]
struct FaultLock {
    fs: Arc<Mutex<MemFs>>,
    path: PathBuf,
    token: u64,
}

impl StorageLock for FaultLock {}

impl Drop for FaultLock {
    fn drop(&mut self) {
        let mut fs = self.fs.lock().expect("fault fs lock");
        // Only release if this handle still owns the lock — a crash()
        // may already have cleared it and a reopened service re-taken it.
        if fs.locked.get(&self.path) == Some(&self.token) {
            fs.locked.remove(&self.path);
        }
    }
}

impl Storage for FaultStorage {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = self.fs.lock().expect("fault fs lock");
        if fs.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        let id = fs.inode_of(path)?;
        Ok(fs.inodes[&id].data.clone())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        // create/truncate allocates a fresh inode, like O_CREAT|O_TRUNC
        // replacing via a new file: the durable entry (if any) keeps
        // pointing at the old inode until the parent dir is synced.
        let write = |fs: &mut MemFs, b: &[u8]| {
            let id = fs.new_inode();
            fs.inodes.get_mut(&id).expect("inode").data = b.to_vec();
            fs.files.insert(path.to_path_buf(), id);
        };
        match fault {
            None => {
                write(&mut fs, bytes);
                Ok(())
            }
            Some(kind) => faulted_write(&mut fs, kind, bytes, write),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        let create = |fs: &mut MemFs| {
            let id = fs.new_inode();
            fs.files.insert(path.to_path_buf(), id);
        };
        match fault {
            None => create(&mut fs),
            Some(kind) => faulted_op(&mut fs, kind, create)?,
        }
        Ok(Box::new(FaultFile {
            fs: self.fs.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Box<dyn StorageFile>> {
        let fs = self.fs.lock().expect("fault fs lock");
        if fs.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        fs.inode_of(path)?;
        Ok(Box::new(FaultFile {
            fs: self.fs.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        let id = fs.inode_of(path)?;
        let truncate = |fs: &mut MemFs| {
            fs.inodes
                .get_mut(&id)
                .expect("inode")
                .data
                .truncate(len as usize);
        };
        match fault {
            None => {
                truncate(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, truncate),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(to)?;
        let id = fs.inode_of(from)?;
        let from = from.to_path_buf();
        let to = to.to_path_buf();
        let rename = move |fs: &mut MemFs| {
            fs.files.remove(&from);
            fs.files.insert(to.clone(), id);
        };
        match fault {
            None => {
                rename(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, rename),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        fs.inode_of(path)?;
        let path = path.to_path_buf();
        let remove = move |fs: &mut MemFs| {
            fs.files.remove(&path);
        };
        match fault {
            None => {
                remove(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, remove),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        if fs.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        // Directory creation is modelled as immediately durable — the
        // torture harness targets file-level crash consistency.
        let mut p = Some(path);
        while let Some(cur) = p {
            fs.dirs.insert(cur.to_path_buf());
            p = cur.parent();
        }
        Ok(())
    }

    fn read_dir_names(&self, path: &Path) -> io::Result<Vec<String>> {
        let fs = self.fs.lock().expect("fault fs lock");
        if fs.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        let mut names: Vec<String> = fs
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .filter_map(|p| p.file_name()?.to_str().map(str::to_string))
            .collect();
        names.sort();
        Ok(names)
    }

    fn exists(&self, path: &Path) -> bool {
        let fs = self.fs.lock().expect("fault fs lock");
        fs.files.contains_key(path) || fs.dirs.contains(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let fs = self.fs.lock().expect("fault fs lock");
        let id = fs.inode_of(path)?;
        Ok(fs.inodes[&id].data.len() as u64)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        let id = fs.inode_of(path)?;
        let sync = |fs: &mut MemFs| {
            let inode = fs.inodes.get_mut(&id).expect("inode");
            inode.synced = inode.data.clone();
        };
        match fault {
            None => {
                sync(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, sync),
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        let fault = fs.enter_op(path)?;
        let path = path.to_path_buf();
        let sync = move |fs: &mut MemFs| {
            // Durable entries under `path` become exactly the volatile
            // ones; entries under other directories are untouched.
            fs.durable.retain(|p, _| p.parent() != Some(&path));
            let adds: Vec<(PathBuf, u64)> = fs
                .files
                .iter()
                .filter(|(p, _)| p.parent() == Some(path.as_path()))
                .map(|(p, id)| (p.clone(), *id))
                .collect();
            fs.durable.extend(adds);
        };
        match fault {
            None => {
                sync(&mut fs);
                Ok(())
            }
            Some(kind) => faulted_op(&mut fs, kind, sync),
        }
    }

    fn lock(&self, path: &Path) -> io::Result<Box<dyn StorageLock>> {
        let mut fs = self.fs.lock().expect("fault fs lock");
        if fs.crashed {
            return Err(eio("simulated crash: storage is down"));
        }
        if fs.locked.contains_key(path) {
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        let token = fs.next_lock_token;
        fs.next_lock_token += 1;
        fs.locked.insert(path.to_path_buf(), token);
        if !fs.files.contains_key(path) {
            let id = fs.new_inode();
            fs.files.insert(path.to_path_buf(), id);
        }
        Ok(Box::new(FaultLock {
            fs: self.fs.clone(),
            path: path.to_path_buf(),
            token,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn enospc_lands_partial_bytes_without_crashing() {
        let s = FaultStorage::new();
        s.create_dir_all(&p("/d")).unwrap();
        let mut f = s.create(&p("/d/a")).unwrap();
        f.write_all(b"hello").unwrap();
        s.set_fault(FaultAt::Op(s.ops()), FaultKind::Enospc { keep: 2 });
        let err = f.write_all(b"world").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!s.crashed());
        assert_eq!(s.peek(&p("/d/a")).unwrap(), b"hellowo");
        // Rollback path stays live: truncate back, keep appending.
        s.truncate(&p("/d/a"), 5).unwrap();
        f.write_all(b"!").unwrap();
        assert_eq!(s.peek(&p("/d/a")).unwrap(), b"hello!");
    }

    #[test]
    fn torn_write_crashes_and_blocks_every_later_op() {
        let s = FaultStorage::new();
        s.create_dir_all(&p("/d")).unwrap();
        let mut f = s.create(&p("/d/a")).unwrap();
        s.set_fault(FaultAt::Op(s.ops()), FaultKind::TornWrite { keep: 3 });
        f.write_all(b"abcdef").unwrap_err();
        assert!(s.crashed());
        assert!(s.write(&p("/d/b"), b"x").is_err());
        assert!(s.read(&p("/d/a")).is_err());
        // Process crash keeps the torn bytes.
        s.crash(CrashMode::Process);
        assert_eq!(s.read(&p("/d/a")).unwrap(), b"abc");
    }

    #[test]
    fn power_loss_reverts_to_synced_entries_and_content() {
        let s = FaultStorage::new();
        let d = p("/d");
        s.create_dir_all(&d).unwrap();
        // a: synced content + synced entry → survives.
        s.write(&d.join("a"), b"AAAA").unwrap();
        s.sync_file(&d.join("a")).unwrap();
        s.sync_dir(&d).unwrap();
        // b: written after the dir sync → entry not durable → gone.
        s.write(&d.join("b"), b"BBBB").unwrap();
        // a gets more (unsynced) content via a fresh inode (write =
        // create/truncate): power loss reverts to the synced inode.
        s.write(&d.join("a"), b"AAAA-more").unwrap();
        s.crash(CrashMode::Power);
        assert_eq!(s.read(&d.join("a")).unwrap(), b"AAAA");
        assert!(!s.exists(&d.join("b")));
    }

    #[test]
    fn rename_without_dir_sync_is_not_power_durable() {
        let s = FaultStorage::new();
        let d = p("/d");
        s.create_dir_all(&d).unwrap();
        s.write(&d.join("t"), b"old").unwrap();
        s.sync_file(&d.join("t")).unwrap();
        s.rename(&d.join("t"), &d.join("f")).unwrap();
        // No sync_dir: the rename is volatile-only.
        s.crash(CrashMode::Power);
        assert!(!s.exists(&d.join("f")), "unsynced rename must roll back");
        // With the sync, it sticks.
        s.write(&d.join("t"), b"new").unwrap();
        s.sync_file(&d.join("t")).unwrap();
        s.rename(&d.join("t"), &d.join("f")).unwrap();
        s.sync_dir(&d).unwrap();
        s.crash(CrashMode::Power);
        assert_eq!(s.read(&d.join("f")).unwrap(), b"new");
    }

    #[test]
    fn crash_after_rename_applies_the_rename_then_fails() {
        let s = FaultStorage::new();
        let d = p("/d");
        s.create_dir_all(&d).unwrap();
        s.write(&d.join("t"), b"v").unwrap();
        s.set_fault(FaultAt::PathContains("final".into()), FaultKind::CrashAfter);
        s.rename(&d.join("t"), &d.join("final")).unwrap_err();
        assert!(s.crashed());
        s.crash(CrashMode::Process);
        assert_eq!(s.read(&d.join("final")).unwrap(), b"v");
    }

    #[test]
    fn locks_exclude_and_release_on_crash() {
        let s = FaultStorage::new();
        s.create_dir_all(&p("/d")).unwrap();
        let held = s.lock(&p("/d/.lock")).unwrap();
        let err = s.lock(&p("/d/.lock")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        s.crash(CrashMode::Process);
        let reheld = s.lock(&p("/d/.lock")).unwrap();
        // The pre-crash handle's drop must not free the new owner's lock.
        drop(held);
        assert!(s.lock(&p("/d/.lock")).is_err());
        drop(reheld);
        assert!(s.lock(&p("/d/.lock")).is_ok());
    }
}
