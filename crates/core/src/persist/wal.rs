//! Per-venue write-ahead log: one append-only file of CRC-framed,
//! LSN-stamped mutation records.
//!
//! Every mutating [`IndoorService`](crate::IndoorService) entry point
//! appends one record per acknowledged batch; the **LSN is the shard's
//! version counter** after the batch (venue-lifecycle records use the
//! reserved LSNs 0 for `Create` and `u64::MAX` for `Remove`). Recovery
//! replays the suffix of each log past its snapshot's version — see
//! `persist::recover` — and [`read_and_repair`] physically truncates a
//! torn tail (a partially written final record) before replay, which is
//! the crash-atomicity story: a record is either fully framed and
//! CRC-valid, or it never happened.
//!
//! All file I/O routes through the [`Storage`] abstraction, so the same
//! code paths run against the OS filesystem in production and against
//! the fault-injecting in-memory filesystem in
//! `tests/fault_injection.rs`.

use super::format::{self, FrameRead, PersistError, WAL_MAGIC};
use super::storage::{Storage, StorageFile};
use crate::service::{AdmissionConfig, OverloadPolicy, SyncPolicy};
use crate::tree::VipTreeConfig;
use indoor_model::wire::{WireReader, WireWriter};
use indoor_model::{IndoorPoint, LoadError, ObjectDelta, ObjectUpdate};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// LSN of a venue's `Create` record (before any mutation).
pub(crate) const LSN_CREATE: u64 = 0;
/// LSN of a venue's `Remove` record: sorts after every version, so a
/// removal is replayed no matter when the last snapshot was taken.
pub(crate) const LSN_REMOVE: u64 = u64::MAX;

/// A mutation record, borrowed for appending.
pub(crate) enum WalRecord<'a> {
    /// Venue registered: everything needed to rebuild the shard from
    /// nothing (`add_venue` semantics, config included).
    Create {
        tree: &'a VipTreeConfig,
        engine_threads: usize,
        cache_capacity: usize,
        admission: &'a AdmissionConfig,
        sync: SyncPolicy,
        venue_json: &'a [u8],
        objects: &'a [IndoorPoint],
        keywords: &'a [(IndoorPoint, Vec<String>)],
    },
    /// An `update_objects` batch.
    Deltas(&'a [ObjectDelta]),
    /// An `update_keyword_objects` batch.
    KeywordUpdates(&'a [ObjectUpdate]),
    /// An `attach_objects` wholesale replacement (positional ids).
    Attach(&'a [IndoorPoint]),
    /// Venue unregistered.
    Remove,
}

/// A decoded record (owned), as replayed by recovery.
#[derive(Debug)]
pub(crate) enum OwnedWalRecord {
    Create {
        tree: VipTreeConfig,
        engine_threads: usize,
        cache_capacity: usize,
        admission: AdmissionConfig,
        sync: SyncPolicy,
        venue_json: Vec<u8>,
        objects: Vec<IndoorPoint>,
        keywords: Vec<(IndoorPoint, Vec<String>)>,
    },
    Deltas(Vec<ObjectDelta>),
    KeywordUpdates(Vec<ObjectUpdate>),
    Attach(Vec<IndoorPoint>),
    Remove,
}

/// One replayable log entry.
#[derive(Debug)]
pub(crate) struct WalEntry {
    pub lsn: u64,
    pub record: OwnedWalRecord,
}

const TAG_CREATE: u8 = 0;
const TAG_DELTAS: u8 = 1;
const TAG_KEYWORDS: u8 = 2;
const TAG_ATTACH: u8 = 3;
const TAG_REMOVE: u8 = 4;

const POLICY_SHED: u8 = 0;
const POLICY_BLOCK: u8 = 1;

/// Tree-config wire layout, shared by WAL `Create` records and snapshot
/// slots — one definition, so the two file kinds cannot drift apart.
pub(crate) fn encode_config(w: &mut WireWriter, cfg: &VipTreeConfig) {
    w.put_u32(cfg.min_degree as u32);
    w.put_u8(cfg.use_superior_doors as u8);
    w.put_u32(cfg.threads as u32);
}

pub(crate) fn decode_config(r: &mut WireReader<'_>) -> Result<VipTreeConfig, LoadError> {
    Ok(VipTreeConfig {
        min_degree: r.get_u32("tree min_degree")? as usize,
        use_superior_doors: r.get_u8("tree use_superior_doors flag")? != 0,
        threads: r.get_u32("tree build threads")? as usize,
    })
}

/// Admission-control wire layout, shared like [`encode_config`].
pub(crate) fn encode_admission(w: &mut WireWriter, a: &AdmissionConfig) {
    w.put_u64(a.max_in_flight as u64);
    match a.policy {
        OverloadPolicy::Shed => {
            w.put_u8(POLICY_SHED);
            w.put_u64(0);
        }
        OverloadPolicy::Block { timeout } => {
            w.put_u8(POLICY_BLOCK);
            w.put_u64(timeout.as_millis() as u64);
        }
    }
}

const SYNC_NEVER: u8 = 0;
const SYNC_PER_APPEND: u8 = 1;
const SYNC_GROUP_COMMIT: u8 = 2;
const SYNC_EVERY_N: u8 = 3;

/// Sync-policy wire layout (tag + one u64 parameter), shared by WAL
/// `Create` records and snapshot slots like [`encode_config`].
pub(crate) fn encode_sync(w: &mut WireWriter, s: &SyncPolicy) {
    match s {
        SyncPolicy::Never => {
            w.put_u8(SYNC_NEVER);
            w.put_u64(0);
        }
        SyncPolicy::PerAppend => {
            w.put_u8(SYNC_PER_APPEND);
            w.put_u64(0);
        }
        SyncPolicy::GroupCommit { max_delay } => {
            w.put_u8(SYNC_GROUP_COMMIT);
            w.put_u64(max_delay.as_micros() as u64);
        }
        SyncPolicy::EveryN { n } => {
            w.put_u8(SYNC_EVERY_N);
            w.put_u64(*n as u64);
        }
    }
}

pub(crate) fn decode_sync(r: &mut WireReader<'_>) -> Result<SyncPolicy, LoadError> {
    let tag = r.get_u8("sync policy tag")?;
    let param = r.get_u64("sync policy parameter")?;
    Ok(match tag {
        SYNC_NEVER => SyncPolicy::Never,
        SYNC_PER_APPEND => SyncPolicy::PerAppend,
        SYNC_GROUP_COMMIT => SyncPolicy::GroupCommit {
            max_delay: Duration::from_micros(param),
        },
        SYNC_EVERY_N => SyncPolicy::EveryN { n: param as u32 },
        other => {
            return Err(LoadError::Wire {
                offset: 0,
                expected: "sync policy tag 0..=3",
                found: format!("tag {other}"),
            })
        }
    })
}

pub(crate) fn decode_admission(r: &mut WireReader<'_>) -> Result<AdmissionConfig, LoadError> {
    let max_in_flight = r.get_u64("admission max_in_flight")? as usize;
    let tag = r.get_u8("admission policy tag")?;
    let timeout_ms = r.get_u64("admission block timeout ms")?;
    let policy = match tag {
        POLICY_SHED => OverloadPolicy::Shed,
        POLICY_BLOCK => OverloadPolicy::Block {
            timeout: Duration::from_millis(timeout_ms),
        },
        other => {
            return Err(LoadError::Wire {
                offset: 0,
                expected: "admission policy tag 0 or 1",
                found: format!("tag {other}"),
            })
        }
    };
    Ok(AdmissionConfig {
        max_in_flight,
        policy,
    })
}

/// Encode `record` (with its LSN) into a frame payload.
pub(crate) fn encode_record(lsn: u64, record: &WalRecord<'_>) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u64(lsn);
    match record {
        WalRecord::Create {
            tree,
            engine_threads,
            cache_capacity,
            admission,
            sync,
            venue_json,
            objects,
            keywords,
        } => {
            w.put_u8(TAG_CREATE);
            encode_config(&mut w, tree);
            w.put_u32(*engine_threads as u32);
            w.put_u64(*cache_capacity as u64);
            encode_admission(&mut w, admission);
            encode_sync(&mut w, sync);
            w.put_bytes(venue_json);
            w.put_points(objects);
            w.put_u32(keywords.len() as u32);
            for (p, labels) in *keywords {
                w.put_point(p);
                w.put_labels(labels);
            }
        }
        WalRecord::Deltas(deltas) => {
            w.put_u8(TAG_DELTAS);
            w.put_u32(deltas.len() as u32);
            for d in *deltas {
                w.put_delta(d);
            }
        }
        WalRecord::KeywordUpdates(updates) => {
            w.put_u8(TAG_KEYWORDS);
            w.put_u32(updates.len() as u32);
            for u in *updates {
                w.put_update(u);
            }
        }
        WalRecord::Attach(objects) => {
            w.put_u8(TAG_ATTACH);
            w.put_points(objects);
        }
        WalRecord::Remove => w.put_u8(TAG_REMOVE),
    }
    w.into_bytes()
}

/// Decode one frame payload back into an entry.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalEntry, LoadError> {
    let mut r = WireReader::new(payload);
    let lsn = r.get_u64("record LSN")?;
    let record = match r.get_u8("record kind tag")? {
        TAG_CREATE => {
            let tree = decode_config(&mut r)?;
            let engine_threads = r.get_u32("engine threads")? as usize;
            let cache_capacity = r.get_u64("cache capacity")? as usize;
            let admission = decode_admission(&mut r)?;
            let sync = decode_sync(&mut r)?;
            let venue_json = r.get_bytes("venue json")?.to_vec();
            let objects = r.get_points()?;
            let n = r.get_u32("keyword object count")? as usize;
            let mut keywords = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                let p = r.get_point()?;
                keywords.push((p, r.get_labels()?));
            }
            OwnedWalRecord::Create {
                tree,
                engine_threads,
                cache_capacity,
                admission,
                sync,
                venue_json,
                objects,
                keywords,
            }
        }
        TAG_DELTAS => {
            let n = r.get_u32("delta count")? as usize;
            let mut deltas = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                deltas.push(r.get_delta()?);
            }
            OwnedWalRecord::Deltas(deltas)
        }
        TAG_KEYWORDS => {
            let n = r.get_u32("update count")? as usize;
            let mut updates = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                updates.push(r.get_update()?);
            }
            OwnedWalRecord::KeywordUpdates(updates)
        }
        TAG_ATTACH => OwnedWalRecord::Attach(r.get_points()?),
        TAG_REMOVE => OwnedWalRecord::Remove,
        other => {
            return Err(LoadError::Wire {
                offset: 8,
                expected: "record kind tag 0..=4",
                found: format!("tag {other}"),
            })
        }
    };
    r.finish("end of record")?;
    Ok(WalEntry { lsn, record })
}

/// Append handle to one venue's log file.
#[derive(Debug)]
pub(crate) struct VenueWal {
    path: PathBuf,
    file: Box<dyn StorageFile>,
    /// Length of the clean record boundary: past bytes of every fully
    /// acknowledged frame. A failed append truncates back to this, so a
    /// partial frame never stays in a *live* log.
    len: u64,
    storage: Arc<dyn Storage>,
    /// Set when a failed append could not be rolled back — the log tail
    /// is in an unknown state and further appends must be refused.
    poisoned: bool,
    /// When acknowledged appends are fsynced (see [`SyncPolicy`]).
    policy: SyncPolicy,
    /// Acked appends since the last fsync ([`SyncPolicy::EveryN`]).
    appends_since_sync: u32,
    /// When the last fsync happened ([`SyncPolicy::GroupCommit`]).
    last_sync: Instant,
}

/// `dir/venue-<slot>.wal`.
pub(crate) fn wal_path(dir: &Path, slot: usize) -> PathBuf {
    dir.join(format!("venue-{slot}.wal"))
}

/// Parse a `venue-<slot>.wal` file name back to its slot.
pub(crate) fn slot_of_wal_name(name: &str) -> Option<usize> {
    name.strip_prefix("venue-")?
        .strip_suffix(".wal")?
        .parse()
        .ok()
}

impl VenueWal {
    /// Create (truncating) the log for `slot` with a fresh magic header,
    /// then fsync `dir` so the new file *name* is crash-durable (the
    /// header content follows the append durability policy).
    pub fn create(
        storage: &Arc<dyn Storage>,
        dir: &Path,
        slot: usize,
        policy: SyncPolicy,
    ) -> Result<VenueWal, PersistError> {
        let path = wal_path(dir, slot);
        let mut file = storage
            .create(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        file.write_all(WAL_MAGIC)
            .and_then(|_| file.flush())
            .map_err(|e| PersistError::io(&path, e))?;
        storage
            .sync_dir(dir)
            .map_err(|e| PersistError::io(dir, e))?;
        Ok(VenueWal {
            path,
            file,
            len: WAL_MAGIC.len() as u64,
            storage: storage.clone(),
            poisoned: false,
            policy,
            appends_since_sync: 0,
            last_sync: Instant::now(),
        })
    }

    /// Open an existing (already repaired) log for appending.
    pub fn open_append(
        storage: &Arc<dyn Storage>,
        dir: &Path,
        slot: usize,
        policy: SyncPolicy,
    ) -> Result<VenueWal, PersistError> {
        let path = wal_path(dir, slot);
        let len = storage
            .file_len(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        let file = storage
            .open_append(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        Ok(VenueWal {
            path,
            file,
            len,
            storage: storage.clone(),
            poisoned: false,
            policy,
            appends_since_sync: 0,
            last_sync: Instant::now(),
        })
    }

    /// Append one record. The frame reaches the kernel in a single
    /// `write_all`, so a **process** crash leaves at worst one torn tail
    /// frame — exactly what [`read_and_repair`] truncates. Whether the
    /// record is also fsynced before the append is acknowledged — power-
    /// crash durability — is the handle's [`SyncPolicy`]: `PerAppend`
    /// syncs every record, `EveryN`/`GroupCommit` amortise the sync over
    /// a bounded window of acked records, `Never` (the default) leaves
    /// tail records in the page cache.
    ///
    /// On failure — a short write *or* a failed due fsync — the frame is
    /// truncated away, so the log stays on a clean record boundary and
    /// the *next* append is well-formed (the mutation was never
    /// acknowledged either way). If that rollback itself fails, the
    /// handle is **poisoned**: the tail is unknowable and every further
    /// append is refused (the service surfaces this as a `Degraded`
    /// shard).
    pub fn append(&mut self, lsn: u64, record: &WalRecord<'_>) -> Result<(), PersistError> {
        if self.poisoned {
            return Err(PersistError::io(
                &self.path,
                std::io::Error::other("journal poisoned by an earlier unrolled-back append"),
            ));
        }
        let payload = encode_record(lsn, record);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        format::write_section(&mut frame, &payload);
        let written = self
            .file
            .write_all(&frame)
            .and_then(|_| self.file.flush())
            .and_then(|_| {
                if self.sync_due() {
                    self.file.sync()?;
                    self.appends_since_sync = 0;
                    self.last_sync = Instant::now();
                }
                Ok(())
            });
        match written {
            Ok(()) => {
                self.len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                if self.storage.truncate(&self.path, self.len).is_err() {
                    self.poisoned = true;
                }
                Err(PersistError::io(&self.path, e))
            }
        }
    }

    /// Whether this append must fsync before being acknowledged. Counter
    /// updates for `EveryN` happen here (the sync itself resets them).
    fn sync_due(&mut self) -> bool {
        match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::PerAppend => true,
            SyncPolicy::EveryN { n } => {
                self.appends_since_sync += 1;
                self.appends_since_sync >= n.max(1)
            }
            SyncPolicy::GroupCommit { max_delay } => self.last_sync.elapsed() >= max_delay,
        }
    }

    /// Whether a failed rollback left the tail in an unknown state.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Read the raw frame payloads of `path` with `LSN >= from_lsn`, in log
/// order, **without** decoding the records (replication ships the bytes
/// verbatim, so a follower applies exactly what the leader journalled).
/// A torn tail is skipped, not repaired: the caller holds the journal
/// lock of a live log, so a torn final frame can only be a concurrent
/// crash artefact that recovery will repair on restart.
pub(crate) fn read_raw_suffix(
    storage: &Arc<dyn Storage>,
    path: &Path,
    from_lsn: u64,
) -> Result<Vec<crate::repl::WalEntry>, PersistError> {
    let buf = storage.read(path).map_err(|e| PersistError::io(path, e))?;
    if buf.len() < 8 {
        return Ok(Vec::new());
    }
    let mut pos = 0usize;
    format::read_magic(&buf, &mut pos, WAL_MAGIC, path)?;
    let mut out = Vec::new();
    while let FrameRead::Frame(payload) = format::read_frame(&buf, &mut pos) {
        let lsn = WireReader::new(payload)
            .get_u64("record LSN")
            .map_err(|e| PersistError::load(path, e))?;
        if lsn >= from_lsn {
            out.push((lsn, Arc::from(payload)));
        }
    }
    Ok(out)
}

/// Read every valid record of `path`, physically truncating a torn tail.
/// Returns the entries plus whether a truncation happened.
pub(crate) fn read_and_repair(
    storage: &Arc<dyn Storage>,
    path: &Path,
) -> Result<(Vec<WalEntry>, bool), PersistError> {
    let buf = storage.read(path).map_err(|e| PersistError::io(path, e))?;

    // A file shorter than the magic is a torn *header* — a crash between
    // creating the file and writing its 8 magic bytes (the same
    // append-crash window the frame rule covers). The creation was never
    // acknowledged, so repair by rewriting a clean header rather than
    // refusing to open the whole service. A full-length but wrong magic
    // stays an error: that is a different format, not a crash artefact.
    if buf.len() < 8 {
        storage
            .write(path, WAL_MAGIC)
            .map_err(|e| PersistError::io(path, e))?;
        return Ok((Vec::new(), true));
    }
    let mut pos = 0usize;
    format::read_magic(&buf, &mut pos, WAL_MAGIC, path)?;
    let mut entries = Vec::new();
    let mut truncated = false;
    loop {
        let frame_start = pos;
        match format::read_frame(&buf, &mut pos) {
            FrameRead::Frame(payload) => {
                let entry = decode_record(payload).map_err(|e| PersistError::load(path, e))?;
                entries.push(entry);
            }
            FrameRead::End => break,
            FrameRead::Torn => {
                // Torn tail: drop the partial frame (and anything framed
                // after it — frame boundaries past a bad frame are
                // meaningless) so the next append starts clean.
                storage
                    .truncate(path, frame_start as u64)
                    .map_err(|e| PersistError::io(path, e))?;
                truncated = true;
                break;
            }
        }
    }
    Ok((entries, truncated))
}

/// Why a [`rotate`] failed, split by blast radius.
pub(crate) enum RotateFailure {
    /// Failure before the rename: the old log and the caller's append
    /// handle are both still valid — the rotation simply didn't happen.
    Safe(PersistError),
    /// Failure after the rename took effect: the caller's append handle
    /// may point at the *replaced* (unlinked) log, so acknowledging
    /// further appends through it would silently lose them. The caller
    /// must stop journalling through that handle (degrade the shard).
    HandleInvalidated(PersistError),
}

impl RotateFailure {
    pub(crate) fn into_error(self) -> PersistError {
        match self {
            RotateFailure::Safe(e) | RotateFailure::HandleInvalidated(e) => e,
        }
    }
}

/// Rewrite the log for `slot` keeping only entries with `lsn >
/// keep_after` (plus nothing else — `Create` at LSN 0 and every record
/// the snapshot already covers are dropped), returning a fresh append
/// handle. Kept records are copied as their **raw, already-CRC-valid
/// frame bytes** — only the 8-byte LSN prefix of each payload is
/// decoded, so rotation of a long suffix is a memcpy and can never
/// rewrite (or drift) a record's encoding. Atomic and crash-durable:
/// written to a temp file, fsynced, renamed over the old log, parent
/// directory fsynced.
pub(crate) fn rotate(
    storage: &Arc<dyn Storage>,
    dir: &Path,
    slot: usize,
    keep_after: u64,
    policy: SyncPolicy,
) -> Result<(VenueWal, usize), RotateFailure> {
    let path = wal_path(dir, slot);
    let buf = storage
        .read(&path)
        .map_err(|e| RotateFailure::Safe(PersistError::io(&path, e)))?;
    let mut pos = 0usize;
    let mut out = Vec::from(WAL_MAGIC.as_slice());
    let mut dropped = 0usize;
    if buf.len() >= 8 {
        format::read_magic(&buf, &mut pos, WAL_MAGIC, &path).map_err(RotateFailure::Safe)?;
        loop {
            let frame_start = pos;
            match format::read_frame(&buf, &mut pos) {
                FrameRead::Frame(payload) => {
                    let lsn = WireReader::new(payload)
                        .get_u64("record LSN")
                        .map_err(|e| RotateFailure::Safe(PersistError::load(&path, e)))?;
                    if lsn > keep_after {
                        out.extend_from_slice(&buf[frame_start..pos]);
                    } else {
                        dropped += 1;
                    }
                }
                FrameRead::End => break,
                // Live logs are clean (appends complete under the journal
                // lock); drop a torn tail defensively, like recovery.
                FrameRead::Torn => break,
            }
        }
    }
    let tmp = dir.join(format!("venue-{slot}.wal.tmp"));
    storage
        .write(&tmp, &out)
        .map_err(|e| RotateFailure::Safe(PersistError::io(&tmp, e)))?;
    storage
        .sync_file(&tmp)
        .map_err(|e| RotateFailure::Safe(PersistError::io(&tmp, e)))?;
    storage
        .rename(&tmp, &path)
        .map_err(|e| RotateFailure::Safe(PersistError::io(&path, e)))?;
    // Past the rename, the old append handle may point at the unlinked
    // pre-rotation log — failures from here invalidate it.
    storage
        .sync_dir(dir)
        .map_err(|e| RotateFailure::HandleInvalidated(PersistError::io(dir, e)))?;
    let wal = VenueWal::open_append(storage, dir, slot, policy)
        .map_err(RotateFailure::HandleInvalidated)?;
    Ok((wal, dropped))
}
