//! WAL-shipping replication: leader-side log subscriptions and
//! follower-side record apply.
//!
//! The durability subsystem already makes every acknowledged mutation a
//! CRC-framed WAL record whose **LSN is the shard's version counter**
//! (see `persist::wal`). Replication is therefore not a new log — it is
//! the same log, shipped: a follower that has applied through version
//! `v` needs exactly the records with `LSN > v`, which is a suffix fetch
//! of the leader's per-venue WAL plus a tail of live appends.
//!
//! # Leader side
//!
//! [`IndoorService::wal_subscribe`] runs entirely under the venue's
//! journal lock: it reads the on-disk suffix (`LSN >= from_lsn`, as raw
//! already-CRC-valid payload bytes — shipped verbatim, never
//! re-encoded), registers a live tap, and captures the current version —
//! one atomic cut of the log. Because every `journal_append` publishes
//! to the taps *under the same lock*, the backlog and the live stream
//! compose with **no gap and no duplicate**: the first live record is
//! always `backlog.last().lsn + 1`.
//!
//! A suffix that has been rotated away (snapshotting drops records the
//! snapshot covers), a volatile venue, or a `from_lsn` ahead of the
//! leader all fail with the typed [`ServiceError::Replication`] — the
//! follower must bootstrap from a snapshot instead.
//!
//! # Follower side
//!
//! [`IndoorService::apply_replicated`] decodes one shipped payload and
//! applies it **through the same code paths recovery replays** — delta
//! batches via `apply_object_deltas`, keyword updates via the keyword
//! index's `apply_delta`, wholesale attaches, venue create/remove — so
//! the replica's answers are byte-identical to the leader's for every
//! query kind (the same equivalence contract `tests/persistence.rs`
//! proves for restart). Records must arrive contiguously
//! (`LSN == version + 1`); a gap is a typed error, never a silent skip.
//! Followers are volatile by construction: a durable follower would
//! re-journal shipped records under its own LSNs and is refused.
//!
//! Lag accounting: each applied record (and each
//! [`IndoorService::note_leader_version`] report from the stream head)
//! advances the shard's `leader_version` high-water mark;
//! `venue_stats().replication_lag` is `leader_version - version`,
//! reaching 0 when the follower has caught up.

use crate::persist::wal::{self, OwnedWalRecord, LSN_REMOVE};
use crate::persist::{rebuild_from_create, PersistError};
use crate::service::{IndoorService, ServiceError, Shard};
use indoor_model::VenueId;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};

/// One shipped WAL record: `(lsn, payload)`, the frame payload exactly
/// as journalled.
pub type WalEntry = (u64, Arc<[u8]>);

/// One venue's replication stream, cut atomically at subscribe time.
///
/// Records are `(lsn, payload)` pairs where `payload` is the WAL
/// record's frame payload exactly as journalled (decode with the
/// follower's [`IndoorService::apply_replicated`]). Dropping [`live`]'s
/// receiver unsubscribes: the leader prunes closed taps on its next
/// append.
///
/// [`live`]: WalSubscription::live
#[derive(Debug)]
pub struct WalSubscription {
    /// The venue this stream replicates.
    pub venue: VenueId,
    /// The leader's version at subscribe time — the catch-up target: a
    /// follower that applies the whole backlog reaches exactly this
    /// version, and every live record continues from it.
    pub version: u64,
    /// On-disk records with `LSN >= from_lsn`, in log order, verified
    /// contiguous through [`version`](WalSubscription::version).
    pub backlog: Vec<WalEntry>,
    /// Every append after the cut, in log order.
    pub live: mpsc::Receiver<WalEntry>,
}

fn repl_err(venue: VenueId, detail: impl Into<String>) -> ServiceError {
    ServiceError::Replication(venue, Arc::from(detail.into()))
}

impl IndoorService {
    /// Subscribe to a venue's WAL from `from_lsn` (the first LSN the
    /// follower still needs: `0` replays the venue from its `Create`
    /// record, `v + 1` resumes a follower already at version `v`).
    ///
    /// Fails with [`ServiceError::Replication`] when the venue is
    /// volatile (nothing is journalled), when the requested suffix was
    /// rotated away by a snapshot (bootstrap from the snapshot instead),
    /// or when `from_lsn` is ahead of the leader; with
    /// [`ServiceError::Degraded`] when the venue's journal can no longer
    /// be trusted.
    pub fn wal_subscribe(
        &self,
        venue: VenueId,
        from_lsn: u64,
    ) -> Result<WalSubscription, ServiceError> {
        let shard = self.shard(venue)?;
        // The journal lock is the cut: version read, suffix read and tap
        // registration all happen under it, so the backlog ends exactly
        // where the live stream begins.
        let journal = shard.journal.lock().expect("journal lock");
        if let Some(reason) = shard.degraded_reason() {
            return Err(ServiceError::Degraded(venue, reason));
        }
        if journal.is_none() {
            return Err(repl_err(
                venue,
                "venue is volatile — only durable services serve replication streams",
            ));
        }
        let root = self
            .persist_root
            .as_ref()
            .expect("journalled shard implies persist root");
        let version = shard.serving.read().expect("serving lock").version;
        let path = wal::wal_path(root, venue.index());
        let backlog = wal::read_raw_suffix(&self.storage, &path, from_lsn)
            .map_err(|e| ServiceError::Persist(venue, Arc::new(e)))?;

        // Contiguity proof: the kept records must cover from_lsn ..=
        // version with no holes (a hole means rotation dropped part of
        // the requested suffix; an empty overhang means the follower is
        // ahead of this leader).
        let mut expected = from_lsn;
        for (lsn, _) in &backlog {
            if *lsn == LSN_REMOVE {
                continue; // a racing removal ships fine out of sequence
            }
            if *lsn != expected {
                return Err(repl_err(
                    venue,
                    format!(
                        "WAL suffix from LSN {from_lsn} unavailable: next on disk is \
                         {lsn}, expected {expected} (rotated away — bootstrap from a snapshot)"
                    ),
                ));
            }
            expected += 1;
        }
        if expected != version + 1 {
            return Err(repl_err(
                venue,
                format!(
                    "WAL suffix from LSN {from_lsn} unavailable: log covers through \
                     {}, leader version is {version}",
                    expected.wrapping_sub(1)
                ),
            ));
        }

        let (tx, rx) = mpsc::channel();
        shard.repl_taps.lock().expect("repl taps lock").push(tx);
        drop(journal);
        Ok(WalSubscription {
            venue,
            version,
            backlog,
            live: rx,
        })
    }

    /// Record the leader's version as reported by a replication stream
    /// head, so [`ShardStats::replication_lag`] is meaningful before the
    /// first record lands. Monotonic (a stale report never regresses it).
    ///
    /// [`ShardStats::replication_lag`]: crate::ShardStats::replication_lag
    pub fn note_leader_version(&self, venue: VenueId, version: u64) -> Result<(), ServiceError> {
        let shard = self.shard(venue)?;
        shard.leader_version.fetch_max(version, Ordering::AcqRel);
        Ok(())
    }

    /// Apply one shipped WAL record to this (follower) service,
    /// returning the venue's version after the apply.
    ///
    /// `payload` is a record exactly as the leader journalled it (a
    /// [`WalSubscription`] backlog/live element). `Create` registers the
    /// replica under the **leader's venue id** — follower slot indices
    /// mirror the leader's, holes and all; mutations must extend the
    /// replica contiguously (`LSN == version + 1`) or fail with
    /// [`ServiceError::Replication`] leaving the replica untouched.
    ///
    /// Only volatile services may apply: a durable follower would
    /// re-journal shipped records under its own LSNs, silently forking
    /// the history. Such calls are refused.
    pub fn apply_replicated(&self, venue: VenueId, payload: &[u8]) -> Result<u64, ServiceError> {
        if self.persist_root.is_some() {
            return Err(repl_err(
                venue,
                "followers must be volatile (a durable follower would re-journal \
                 shipped records under its own LSNs)",
            ));
        }
        let entry = wal::decode_record(payload)
            .map_err(|e| repl_err(venue, format!("undecodable replicated record: {e}")))?;
        let lsn = entry.lsn;
        match &entry.record {
            OwnedWalRecord::Create { .. } => {
                let r =
                    rebuild_from_create(&entry.record, Path::new("<replicated>")).map_err(|e| {
                        match e {
                            PersistError::Build(b) => ServiceError::Build(b),
                            other => repl_err(venue, format!("replica rebuild failed: {other}")),
                        }
                    })?;
                let shard = Arc::new(Shard::new(
                    r.engine,
                    r.epoch,
                    r.version,
                    r.cache_capacity,
                    r.admission,
                    r.sync,
                ));
                let mut shards = self.shards.write().expect("shard map lock");
                if shards.len() <= venue.index() {
                    shards.resize_with(venue.index() + 1, || None);
                }
                let slot = &mut shards[venue.index()];
                if slot.is_some() {
                    return Err(repl_err(venue, "Create for an already-registered venue"));
                }
                self.wire_telemetry(&shard, venue);
                *slot = Some(shard);
                Ok(0)
            }
            OwnedWalRecord::Remove => {
                let mut shards = self.shards.write().expect("shard map lock");
                match shards.get_mut(venue.index()) {
                    Some(slot @ Some(_)) => {
                        *slot = None;
                        self.registry
                            .remove_labeled("venue", &venue.index().to_string());
                        Ok(LSN_REMOVE)
                    }
                    _ => Err(repl_err(venue, "Remove for an absent venue")),
                }
            }
            mutation => {
                let shard = self.shard(venue)?;
                // The journal mutex doubles as the replica's apply-order
                // lock (its journal is always None on a follower).
                let journal = shard.journal.lock().expect("journal lock");
                let version = shard.serving.read().expect("serving lock").version;
                if lsn != version + 1 {
                    return Err(repl_err(
                        venue,
                        format!(
                            "replication gap: record LSN {lsn} against replica version {version}"
                        ),
                    ));
                }
                let engine = shard.engine();
                match mutation {
                    OwnedWalRecord::Deltas(deltas) => {
                        engine
                            .tree()
                            .ip()
                            .apply_object_deltas(deltas)
                            .map_err(|e| ServiceError::Delta(venue, e))?;
                    }
                    OwnedWalRecord::Attach(objects) => {
                        engine.tree().ip().attach_objects(objects);
                        shard.serving.write().expect("serving lock").epoch += 1;
                        shard.cache.lock().expect("cache poisoned").clear();
                    }
                    OwnedWalRecord::KeywordUpdates(updates) => {
                        let ip = engine.tree().ip();
                        let mut kw = match engine.keywords() {
                            Some(kw) => (*kw).clone(),
                            None => crate::keywords::KeywordObjects::build(ip, &[]),
                        };
                        kw.apply_delta(ip, updates)
                            .map_err(|e| ServiceError::Delta(venue, e))?;
                        engine.set_keywords(Some(Arc::new(kw)));
                    }
                    OwnedWalRecord::Create { .. } | OwnedWalRecord::Remove => unreachable!(),
                }
                shard.serving.write().expect("serving lock").version = lsn;
                shard.leader_version.fetch_max(lsn, Ordering::AcqRel);
                drop(journal);
                Ok(lsn)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::storage::{FaultStorage, Storage};
    use crate::service::ShardConfig;
    use indoor_model::{ObjectDelta, ObjectId, QueryRequest};
    use indoor_synth::{random_venue, workload};
    use std::path::PathBuf;

    fn durable_leader() -> (IndoorService, FaultStorage) {
        let storage = FaultStorage::new();
        let shared: Arc<dyn Storage> = Arc::new(storage.clone());
        let (leader, _) =
            IndoorService::open_with_storage(PathBuf::from("/leader"), shared).unwrap();
        (leader, storage)
    }

    fn assert_replica_matches(
        leader: &IndoorService,
        follower: &IndoorService,
        id: VenueId,
        venue: &indoor_model::Venue,
        seed: u64,
    ) {
        assert_eq!(leader.version(id).unwrap(), follower.version(id).unwrap());
        for q in workload::query_points(venue, 3, seed) {
            let req = QueryRequest::Knn { q, k: 3 };
            assert_eq!(
                leader.execute(id, &req).unwrap(),
                follower.execute(id, &req).unwrap()
            );
        }
        for (s, t) in workload::query_pairs(venue, 2, seed ^ 1) {
            let req = QueryRequest::ShortestPath { s, t };
            assert_eq!(
                leader.execute(id, &req).unwrap(),
                follower.execute(id, &req).unwrap()
            );
        }
    }

    #[test]
    fn backlog_plus_live_tail_yields_byte_identical_replica() {
        let (leader, _storage) = durable_leader();
        let venue = Arc::new(random_venue(71));
        let objects = workload::place_objects(&venue, 12, 71);
        let id = leader
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: objects.clone(),
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        leader
            .update_objects(
                id,
                &[ObjectDelta::Move {
                    id: ObjectId(0),
                    to: objects[1],
                }],
            )
            .unwrap();

        // Catch up from the very beginning: Create + one delta.
        let sub = leader.wal_subscribe(id, 0).unwrap();
        assert_eq!(sub.version, 1);
        assert_eq!(sub.backlog.len(), 2);

        let follower = IndoorService::new();
        follower.note_leader_version(id, sub.version).ok();
        for (_, payload) in &sub.backlog {
            follower.apply_replicated(id, payload).unwrap();
        }
        assert_replica_matches(&leader, &follower, id, &venue, 5);
        assert_eq!(follower.venue_stats(id).unwrap().replication_lag, 0);

        // Live tail: a mutation after the cut arrives over the tap with
        // no gap and no duplicate.
        leader
            .update_objects(
                id,
                &[ObjectDelta::Move {
                    id: ObjectId(0),
                    to: objects[2],
                }],
            )
            .unwrap();
        let (lsn, payload) = sub.live.try_recv().expect("live record published");
        assert_eq!(lsn, 2);
        assert_eq!(follower.apply_replicated(id, &payload).unwrap(), 2);
        assert_replica_matches(&leader, &follower, id, &venue, 6);
        assert_eq!(follower.venue_stats(id).unwrap().replication_lag, 0);
        // Leaders report no lag either.
        assert_eq!(leader.venue_stats(id).unwrap().replication_lag, 0);
    }

    #[test]
    fn subscribe_refuses_volatile_rotated_and_ahead() {
        // Volatile leader: nothing journalled to ship.
        let volatile = IndoorService::new();
        let venue = Arc::new(random_venue(73));
        let id = volatile
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        assert!(matches!(
            volatile.wal_subscribe(id, 0),
            Err(ServiceError::Replication(..))
        ));

        // Rotated-away suffix: the snapshot absorbed the Create record.
        let (leader, _storage) = durable_leader();
        let objects = workload::place_objects(&venue, 8, 73);
        let id = leader
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: objects.clone(),
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        leader
            .update_objects(
                id,
                &[ObjectDelta::Move {
                    id: ObjectId(0),
                    to: objects[1],
                }],
            )
            .unwrap();
        leader.save_snapshot("/leader").unwrap();
        assert!(matches!(
            leader.wal_subscribe(id, 0),
            Err(ServiceError::Replication(..))
        ));
        // A follower already at the leader's version subscribes fine
        // (empty backlog, live tail only).
        let sub = leader.wal_subscribe(id, 2).unwrap();
        assert_eq!(sub.version, 1);
        assert!(sub.backlog.is_empty());
        // Ahead of the leader: refused.
        assert!(matches!(
            leader.wal_subscribe(id, 3),
            Err(ServiceError::Replication(..))
        ));
    }

    #[test]
    fn apply_rejects_gaps_and_durable_followers() {
        let (leader, _storage) = durable_leader();
        let venue = Arc::new(random_venue(79));
        let objects = workload::place_objects(&venue, 8, 79);
        let id = leader
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: objects.clone(),
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        for &to in &objects[1..4] {
            leader
                .update_objects(
                    id,
                    &[ObjectDelta::Move {
                        id: ObjectId(0),
                        to,
                    }],
                )
                .unwrap();
        }
        let sub = leader.wal_subscribe(id, 0).unwrap();

        let follower = IndoorService::new();
        follower.apply_replicated(id, &sub.backlog[0].1).unwrap();
        // Skipping LSN 1 and applying LSN 2 is a typed gap error; the
        // replica stays at version 0.
        assert!(matches!(
            follower.apply_replicated(id, &sub.backlog[2].1),
            Err(ServiceError::Replication(..))
        ));
        assert_eq!(follower.version(id).unwrap(), 0);
        assert_eq!(follower.apply_replicated(id, &sub.backlog[1].1), Ok(1));

        // A durable service refuses to be a follower outright.
        let storage2 = FaultStorage::new();
        let shared2: Arc<dyn Storage> = Arc::new(storage2.clone());
        let (durable, _) =
            IndoorService::open_with_storage(PathBuf::from("/follower"), shared2).unwrap();
        assert!(matches!(
            durable.apply_replicated(id, &sub.backlog[0].1),
            Err(ServiceError::Replication(..))
        ));
    }
}
