//! Bounded retry with capped exponential backoff — the one overload
//! client policy shared by every front-end.
//!
//! Both the scenario lab's closed-loop clients and the network client
//! face the same situation: [`ServiceError::Overloaded`] /
//! [`ServiceError::Timeout`] (or their wire mirrors) are *transient*
//! rejections — the correct reaction is to back off and retry a bounded
//! number of times, then drop. Duplicating that loop invites the two
//! callers to drift (different caps, different growth, different
//! fairness); [`RetryPolicy::run`] is the single implementation.
//!
//! [`ServiceError::Overloaded`]: crate::ServiceError::Overloaded
//! [`ServiceError::Timeout`]: crate::ServiceError::Timeout

use std::time::Duration;

/// How a client reacts to transient rejections: up to `retries`
/// re-attempts, sleeping `backoff` before the first and doubling up to
/// `max_backoff` between subsequent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-attempts after the first try (0 = fail fast).
    pub retries: u32,
    /// Sleep before the first retry. `Duration::ZERO` spins (test use).
    pub backoff: Duration,
    /// Cap on the doubling backoff. Values below `backoff` clamp to it.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// A patient closed-loop client: 64 retries from 20 µs doubling to a
    /// 1 ms cap — it outwaits bursts but gives up inside ~70 ms when a
    /// shard stays saturated.
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 64,
            backoff: Duration::from_micros(20),
            max_backoff: Duration::from_millis(1),
        }
    }
}

impl RetryPolicy {
    /// No retries: every rejection surfaces immediately.
    pub const fn fail_fast() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Run `op`, retrying errors `retryable` accepts under this policy.
    /// Returns the first success, the first non-retryable error, or —
    /// after the budget is spent — the last retryable error.
    pub fn run<T, E>(
        &self,
        retryable: impl Fn(&E) -> bool,
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut wait = self.backoff;
        let cap = self.max_backoff.max(self.backoff);
        let mut remaining = self.retries;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if remaining > 0 && retryable(&e) => {
                    remaining -= 1;
                    if !wait.is_zero() {
                        std::thread::sleep(wait);
                    }
                    wait = (wait * 2).min(cap);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant() -> RetryPolicy {
        RetryPolicy {
            retries: 5,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    #[test]
    fn succeeds_after_transient_rejections() {
        let mut calls = 0;
        let out: Result<u32, &str> = instant().run(
            |_| true,
            || {
                calls += 1;
                if calls < 4 {
                    Err("busy")
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 4);
    }

    #[test]
    fn exhausts_budget_then_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), &str> = instant().run(
            |_| true,
            || {
                calls += 1;
                Err("busy")
            },
        );
        assert_eq!(out, Err("busy"));
        assert_eq!(calls, 6, "first try + 5 retries");
    }

    #[test]
    fn non_retryable_errors_surface_immediately() {
        let mut calls = 0;
        let out: Result<(), &str> = instant().run(
            |e| *e == "busy",
            || {
                calls += 1;
                Err("gone")
            },
        );
        assert_eq!(out, Err("gone"));
        assert_eq!(calls, 1);
    }

    #[test]
    fn fail_fast_never_retries() {
        let mut calls = 0;
        let out: Result<(), &str> = RetryPolicy::fail_fast().run(
            |_| true,
            || {
                calls += 1;
                Err("busy")
            },
        );
        assert_eq!(out, Err("busy"));
        assert_eq!(calls, 1);
    }
}
