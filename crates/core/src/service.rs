//! Multi-venue serving front-end: a router of typed query requests over
//! per-venue [`QueryEngine`] shards, fronted by an epoch-keyed result
//! cache and per-query-kind counters.
//!
//! A deployment rarely serves one building: a campus directory answers
//! kNN lookups for one venue while routing evacuation paths in another.
//! [`IndoorService`] owns one shard per venue — each with its own
//! `Arc<VipTree>`, [`ScratchPool`](crate::ScratchPool) and Dijkstra
//! engine pool, so venues never contend — and routes every
//! `(VenueId, QueryRequest)` to its shard.
//!
//! # Caching and invalidation
//!
//! Batch answers are deterministic (bit-identical to the serial loop), so
//! responses are cached under the logical key `(shard epoch, request)`
//! (stored as epoch-stamped entries so probes borrow the request instead
//! of cloning it). The epoch bumps on every
//! [`IndoorService::attach_objects`], which makes a stale hit
//! *impossible by construction*: an entry only counts as a hit when its
//! stamp equals the current epoch, and no entry written before the bump
//! carries the new one. The bump also clears the map to bound memory —
//! but correctness never depends on the clear (see DESIGN.md, "Typed
//! requests, the service layer, and the epoch-keyed cache").
//!
//! # Concurrency
//!
//! The offline container bans tokio; batches fan out with hand-rolled
//! primitives instead — one scoped worker thread per shard with work,
//! results flowing back over an [`std::sync::mpsc`] channel tagged with
//! their input slot, so output order is the input order regardless of
//! shard scheduling.

use crate::exec::{QueryEngine, TreeHandle};
use crate::keywords::KeywordObjects;
use crate::tree::{BuildError, VipTreeConfig};
use crate::vip::VipTree;
use indoor_model::{IndoorPoint, QueryKind, QueryRequest, QueryResponse, Venue, VenueId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Cached answers are epoch-keyed: logically the cache maps
/// `(shard epoch, request) → response`, stored as request → epoch-stamped
/// response so probes can borrow the request (`map.get(req)`) instead of
/// cloning it into a composite key. A stored entry only counts as a hit
/// when its stamp equals the shard's current epoch — the epoch component
/// is what makes invalidation structural rather than housekeeping.
type Cache = HashMap<QueryRequest, (u64, QueryResponse)>;

/// Per-venue construction parameters for [`IndoorService::add_venue`].
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Tree construction parameters.
    pub tree: VipTreeConfig,
    /// Worker threads for this shard's batch execution (0 = all cores).
    pub threads: usize,
    /// Objects to attach for kNN/range queries.
    pub objects: Vec<IndoorPoint>,
    /// Labelled objects for keyword-kNN. When non-empty, the shard builds
    /// a [`KeywordObjects`] index and threads it through its engine
    /// automatically — including across `attach_objects` rebuilds, so
    /// keyword requests keep working without callers re-attaching it.
    pub keywords: Vec<(IndoorPoint, Vec<String>)>,
}

/// Errors from routing requests to venue shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The request named a venue id no shard is registered under.
    UnknownVenue(VenueId),
    /// `attach_objects` needs exclusive ownership of the venue's tree,
    /// but a caller still holds a handle cloned out of
    /// [`IndoorService::engine`] / [`QueryEngine::tree`]. The shard is
    /// untouched and keeps serving; retry once the handle is dropped.
    SharedIndex(VenueId),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownVenue(v) => write!(f, "no venue registered under id {v}"),
            ServiceError::SharedIndex(v) => write!(
                f,
                "cannot attach objects to venue {v}: its tree handle is still shared"
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One venue's serving state. `engine` is `Some` outside of
/// `attach_objects`, which briefly takes it to regain `&mut` access to
/// the tree (the engine holds the only `Arc` clone).
#[derive(Debug)]
struct Shard {
    engine: Option<QueryEngine>,
    keywords: Option<Arc<KeywordObjects>>,
    threads: usize,
    epoch: u64,
    cache: Mutex<Cache>,
}

impl Shard {
    #[inline]
    fn engine(&self) -> &QueryEngine {
        self.engine.as_ref().expect("shard engine present")
    }

    /// Build this shard's engine around a tree, re-threading the keyword
    /// index automatically.
    fn make_engine(&self, tree: Arc<VipTree>) -> QueryEngine {
        let mut engine = QueryEngine::for_vip(tree).with_threads(self.threads);
        if let Some(kw) = &self.keywords {
            engine = engine.with_keywords(kw.clone());
        }
        engine
    }
}

/// Lock-free per-kind counters; snapshot via [`IndoorService::stats`].
#[derive(Debug, Default)]
struct KindCounters {
    queries: AtomicU64,
    hits: AtomicU64,
    latency_ns: AtomicU64,
}

/// Snapshot of one query kind's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindStats {
    pub kind: QueryKind,
    /// Requests answered (hits + misses).
    pub queries: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Total serving latency. Batch misses apportion the batch's wall
    /// time equally over its requests.
    pub latency_ns: u64,
}

impl KindStats {
    /// Fraction of requests served from cache (0 when none seen).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean serving latency in nanoseconds (0 when none seen).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.latency_ns as f64 / self.queries as f64
        }
    }
}

/// Point-in-time snapshot of a service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Registered venue shards.
    pub venues: usize,
    /// Live result-cache entries summed over shards.
    pub cached_entries: usize,
    /// Per-kind counters, indexed by [`QueryKind::index`].
    pub kinds: [KindStats; QueryKind::COUNT],
}

impl ServiceStats {
    /// The counters of one query kind.
    pub fn kind(&self, kind: QueryKind) -> &KindStats {
        &self.kinds[kind.index()]
    }

    /// Requests answered across all kinds.
    pub fn total_queries(&self) -> u64 {
        self.kinds.iter().map(|k| k.queries).sum()
    }

    /// Cache hits across all kinds.
    pub fn total_cache_hits(&self) -> u64 {
        self.kinds.iter().map(|k| k.cache_hits).sum()
    }

    /// Overall cache hit rate (0 when no requests seen).
    pub fn hit_rate(&self) -> f64 {
        let q = self.total_queries();
        if q == 0 {
            0.0
        } else {
            self.total_cache_hits() as f64 / q as f64
        }
    }
}

/// Multi-venue query service: routes typed requests to per-venue engine
/// shards through an epoch-keyed result cache.
///
/// ```
/// use indoor_synth::{random_venue, workload};
/// use std::sync::Arc;
/// use vip_tree::{IndoorService, ShardConfig};
/// use indoor_model::QueryRequest;
///
/// let venue = Arc::new(random_venue(5));
/// let mut service = IndoorService::new();
/// let id = service
///     .add_venue(
///         venue.clone(),
///         ShardConfig {
///             objects: workload::place_objects(&venue, 10, 1),
///             ..ShardConfig::default()
///         },
///     )
///     .unwrap();
/// let q = workload::query_points(&venue, 1, 2)[0];
/// let req = QueryRequest::Knn { q, k: 3 };
/// let first = service.execute(id, &req).unwrap();
/// let second = service.execute(id, &req).unwrap(); // served from cache
/// assert_eq!(first, second);
/// assert_eq!(service.stats().total_cache_hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct IndoorService {
    shards: Vec<Shard>,
    counters: [KindCounters; QueryKind::COUNT],
}

impl IndoorService {
    /// An empty service; add venues with [`IndoorService::add_venue`].
    pub fn new() -> IndoorService {
        IndoorService::default()
    }

    /// Build a VIP-tree shard for `venue` and register it, returning the
    /// id requests route by. Objects and keyword objects from the config
    /// are attached before the shard serves its first query.
    pub fn add_venue(
        &mut self,
        venue: Arc<Venue>,
        config: ShardConfig,
    ) -> Result<VenueId, BuildError> {
        let mut tree = VipTree::build(venue, &config.tree)?;
        if !config.objects.is_empty() {
            tree.attach_objects(&config.objects);
        }
        let keywords = if config.keywords.is_empty() {
            None
        } else {
            Some(Arc::new(KeywordObjects::build(
                tree.ip_tree(),
                &config.keywords,
            )))
        };
        let mut engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(config.threads);
        if let Some(kw) = &keywords {
            engine = engine.with_keywords(kw.clone());
        }
        let id = VenueId::from(self.shards.len());
        self.shards.push(Shard {
            engine: Some(engine),
            keywords,
            threads: config.threads,
            epoch: 0,
            cache: Mutex::default(),
        });
        Ok(id)
    }

    /// Number of registered venues.
    pub fn venue_count(&self) -> usize {
        self.shards.len()
    }

    /// The ids of all registered venues.
    pub fn venues(&self) -> impl Iterator<Item = VenueId> + '_ {
        (0..self.shards.len()).map(VenueId::from)
    }

    /// A venue's query engine (for direct, uncached access).
    pub fn engine(&self, venue: VenueId) -> Result<&QueryEngine, ServiceError> {
        self.shard(venue).map(Shard::engine)
    }

    /// A venue's current cache epoch (bumped by every
    /// [`IndoorService::attach_objects`]).
    pub fn epoch(&self, venue: VenueId) -> Result<u64, ServiceError> {
        self.shard(venue).map(|s| s.epoch)
    }

    fn shard(&self, venue: VenueId) -> Result<&Shard, ServiceError> {
        self.shards
            .get(venue.index())
            .ok_or(ServiceError::UnknownVenue(venue))
    }

    /// Replace a venue's object set (§3.4 object workload churn).
    ///
    /// Rebuilds the shard's object index, bumps the cache epoch (making
    /// every previously cached answer unreachable), and re-threads the
    /// shard's keyword index through the fresh engine automatically.
    ///
    /// Requires exclusive ownership of the venue's tree: if a caller
    /// still holds a handle cloned out of [`IndoorService::engine`],
    /// this returns [`ServiceError::SharedIndex`] and the shard keeps
    /// serving its current objects unchanged.
    pub fn attach_objects(
        &mut self,
        venue: VenueId,
        objects: &[IndoorPoint],
    ) -> Result<(), ServiceError> {
        let shard = self
            .shards
            .get_mut(venue.index())
            .ok_or(ServiceError::UnknownVenue(venue))?;
        let engine = shard.engine.take().expect("shard engine present");
        let TreeHandle::Vip(tree) = engine.into_tree() else {
            unreachable!("service shards are VIP-backed");
        };
        let mut tree = match Arc::try_unwrap(tree) {
            Ok(tree) => tree,
            Err(shared) => {
                // A caller-held clone blocks `&mut` access; restore the
                // shard untouched and report, rather than panic.
                shard.engine = Some(shard.make_engine(shared));
                return Err(ServiceError::SharedIndex(venue));
            }
        };
        tree.attach_objects(objects);
        shard.epoch += 1;
        shard.cache.get_mut().expect("cache poisoned").clear();
        shard.engine = Some(shard.make_engine(Arc::new(tree)));
        Ok(())
    }

    fn record(&self, kind: QueryKind, hit: bool, elapsed: Duration) {
        let c = &self.counters[kind.index()];
        c.queries.fetch_add(1, Ordering::Relaxed);
        if hit {
            c.hits.fetch_add(1, Ordering::Relaxed);
        }
        c.latency_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Answer one request for one venue, through the cache.
    pub fn execute(
        &self,
        venue: VenueId,
        req: &QueryRequest,
    ) -> Result<QueryResponse, ServiceError> {
        let shard = self.shard(venue)?;
        let t0 = Instant::now();
        // Borrowed probe: no request clone (and no allocation) on a hit.
        let hit = shard
            .cache
            .lock()
            .expect("cache poisoned")
            .get(req)
            .and_then(|(epoch, resp)| (*epoch == shard.epoch).then(|| resp.clone()));
        if let Some(resp) = hit {
            self.record(req.kind(), true, t0.elapsed());
            return Ok(resp);
        }
        let resp = shard.engine().execute(req);
        shard
            .cache
            .lock()
            .expect("cache poisoned")
            .insert(req.clone(), (shard.epoch, resp.clone()));
        self.record(req.kind(), false, t0.elapsed());
        Ok(resp)
    }

    /// Answer a heterogeneous multi-venue batch; slot `i` answers
    /// `reqs[i]`, identical to calling [`IndoorService::execute`] per
    /// slot (unknown venues answer `Err` without disturbing the rest).
    ///
    /// One scoped worker per venue shard with work; each answers its
    /// slots (cache first, then one engine batch over the misses) and
    /// streams `(slot, response)` back over an mpsc channel.
    pub fn execute_batch(
        &self,
        reqs: &[(VenueId, QueryRequest)],
    ) -> Vec<Result<QueryResponse, ServiceError>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut out: Vec<Option<Result<QueryResponse, ServiceError>>> = vec![None; reqs.len()];
        for (slot, (venue, _)) in reqs.iter().enumerate() {
            match by_shard.get_mut(venue.index()) {
                Some(slots) => slots.push(slot),
                None => out[slot] = Some(Err(ServiceError::UnknownVenue(*venue))),
            }
        }

        let (tx, rx) = mpsc::channel::<(usize, QueryResponse)>();
        std::thread::scope(|scope| {
            for (shard, slots) in self.shards.iter().zip(&by_shard) {
                if slots.is_empty() {
                    continue;
                }
                let tx = tx.clone();
                scope.spawn(move || self.serve_shard_slots(shard, slots, reqs, &tx));
            }
            drop(tx);
            for (slot, resp) in rx {
                debug_assert!(out[slot].is_none(), "slot answered twice");
                out[slot] = Some(Ok(resp));
            }
        });
        out.into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect()
    }

    /// Worker body of [`IndoorService::execute_batch`] for one shard.
    fn serve_shard_slots(
        &self,
        shard: &Shard,
        slots: &[usize],
        reqs: &[(VenueId, QueryRequest)],
        tx: &mpsc::Sender<(usize, QueryResponse)>,
    ) {
        // Probe under the lock, but clone/record/send outside it so an
        // all-hit batch doesn't starve concurrent `execute` callers.
        let t0 = Instant::now();
        let mut hits: Vec<(usize, QueryResponse)> = Vec::new();
        let mut miss_slots: Vec<usize> = Vec::new();
        {
            let cache = shard.cache.lock().expect("cache poisoned");
            for &slot in slots {
                match cache
                    .get(&reqs[slot].1)
                    .and_then(|(epoch, resp)| (*epoch == shard.epoch).then_some(resp))
                {
                    Some(resp) => hits.push((slot, resp.clone())),
                    None => miss_slots.push(slot),
                }
            }
        }
        if !hits.is_empty() {
            // Apportion the probe loop's wall time equally over the hits.
            let per_hit = t0.elapsed() / hits.len() as u32;
            for (slot, resp) in hits {
                self.record(reqs[slot].1.kind(), true, per_hit);
                let _ = tx.send((slot, resp));
            }
        }
        if miss_slots.is_empty() {
            return;
        }

        // Duplicate requests in one cold batch (the kiosk-repeat workload
        // the cache exists for) compute once and fan out to every slot.
        let mut unique: Vec<QueryRequest> = Vec::with_capacity(miss_slots.len());
        let mut slots_of: HashMap<&QueryRequest, Vec<usize>> = HashMap::new();
        for &slot in &miss_slots {
            let req = &reqs[slot].1;
            match slots_of.entry(req) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    unique.push(req.clone());
                    e.insert(vec![slot]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(slot),
            }
        }
        let t0 = Instant::now();
        let resps = shard.engine().execute_batch(&unique);
        // Apportion the batch's wall time equally over its requests.
        let per_query = t0.elapsed() / miss_slots.len() as u32;
        let mut cache = shard.cache.lock().expect("cache poisoned");
        for (req, resp) in unique.iter().zip(resps) {
            for &slot in &slots_of[req] {
                self.record(req.kind(), false, per_query);
                let _ = tx.send((slot, resp.clone()));
            }
            cache.insert(req.clone(), (shard.epoch, resp));
        }
    }

    /// Snapshot the per-kind counters and cache occupancy.
    pub fn stats(&self) -> ServiceStats {
        let kinds = QueryKind::ALL.map(|kind| {
            let c = &self.counters[kind.index()];
            KindStats {
                kind,
                queries: c.queries.load(Ordering::Relaxed),
                cache_hits: c.hits.load(Ordering::Relaxed),
                latency_ns: c.latency_ns.load(Ordering::Relaxed),
            }
        });
        ServiceStats {
            venues: self.shards.len(),
            cached_entries: self
                .shards
                .iter()
                .map(|s| s.cache.lock().expect("cache poisoned").len())
                .sum(),
            kinds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_synth::{random_venue, workload};

    fn service_with_one_venue(seed: u64) -> (IndoorService, VenueId, Arc<Venue>) {
        let venue = Arc::new(random_venue(seed));
        let mut service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: workload::place_objects(&venue, 12, seed ^ 0x7),
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        (service, id, venue)
    }

    #[test]
    fn unknown_venue_is_an_error() {
        let (service, id, venue) = service_with_one_venue(21);
        let q = workload::query_points(&venue, 1, 3)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        assert!(service.execute(id, &req).is_ok());
        let bogus = VenueId(99);
        assert_eq!(
            service.execute(bogus, &req),
            Err(ServiceError::UnknownVenue(bogus))
        );
        let batch = service.execute_batch(&[(bogus, req.clone()), (id, req)]);
        assert_eq!(batch[0], Err(ServiceError::UnknownVenue(bogus)));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn cache_hits_are_counted_per_kind() {
        let (service, id, venue) = service_with_one_venue(22);
        let q = workload::query_points(&venue, 1, 5)[0];
        let knn = QueryRequest::Knn { q, k: 3 };
        let range = QueryRequest::Range { q, radius: 70.0 };
        for _ in 0..3 {
            service.execute(id, &knn).unwrap();
        }
        service.execute(id, &range).unwrap();
        let stats = service.stats();
        assert_eq!(stats.kind(QueryKind::Knn).queries, 3);
        assert_eq!(stats.kind(QueryKind::Knn).cache_hits, 2);
        assert_eq!(stats.kind(QueryKind::Range).queries, 1);
        assert_eq!(stats.kind(QueryKind::Range).cache_hits, 0);
        assert_eq!(stats.cached_entries, 2);
        assert!((stats.kind(QueryKind::Knn).hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.venues, 1);
    }

    #[test]
    fn batch_matches_per_slot_execute() {
        let (service, id, venue) = service_with_one_venue(23);
        let points = workload::query_points(&venue, 6, 9);
        let pairs = workload::query_pairs(&venue, 3, 10);
        let mut reqs: Vec<(VenueId, QueryRequest)> = Vec::new();
        for q in &points {
            reqs.push((id, QueryRequest::Knn { q: *q, k: 2 }));
            reqs.push((
                id,
                QueryRequest::Range {
                    q: *q,
                    radius: 90.0,
                },
            ));
        }
        for (s, t) in &pairs {
            reqs.push((id, QueryRequest::ShortestDistance { s: *s, t: *t }));
            reqs.push((id, QueryRequest::ShortestPath { s: *s, t: *t }));
        }
        let got = service.execute_batch(&reqs);
        for (slot, (venue, req)) in reqs.iter().enumerate() {
            assert_eq!(
                got[slot].as_ref().unwrap(),
                &service.execute(*venue, req).unwrap(),
                "slot {slot}"
            );
        }
    }
}
