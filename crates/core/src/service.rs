//! Multi-venue serving front-end: a router of typed query requests over
//! per-venue [`QueryEngine`] shards, fronted by a bounded, version-keyed
//! result cache, per-query-kind counters, and per-shard admission
//! control.
//!
//! A deployment rarely serves one building: a campus directory answers
//! kNN lookups for one venue while routing evacuation paths in another.
//! [`IndoorService`] owns one shard per venue — each with its own
//! `Arc<VipTree>`, [`ScratchPool`](crate::ScratchPool) and Dijkstra
//! engine pool, so venues never contend — and routes every
//! `(VenueId, QueryRequest)` to its shard.
//!
//! # Live mutation under `&self`
//!
//! Every mutating entry point — [`IndoorService::add_venue`],
//! [`IndoorService::remove_venue`], [`IndoorService::attach_objects`]
//! (wholesale replacement) and [`IndoorService::update_objects`]
//! (incremental [`ObjectDelta`] batches) — takes `&self`: the shard map
//! sits behind an `RwLock` and each shard's serving state behind its own,
//! so churn on one venue runs concurrently with `execute_batch` on every
//! other (and only briefly gates new queries on its own). There is no
//! service-wide pause and no "tree handle still shared" failure mode:
//! object sets swap *inside* the shared tree (see
//! [`IpTree::attach_objects`](crate::IpTree::attach_objects)), so
//! in-flight queries finish on the snapshot they started with.
//!
//! # Caching and invalidation
//!
//! Batch answers are deterministic (bit-identical to the serial loop), so
//! responses are cached under the logical key `(stamp, request)`. The
//! stamp is the **data generation** of what the answer depends on: the
//! tree's object-snapshot generation for kNN/range, the engine's
//! keyword-snapshot generation for keyword-kNN, and a constant for
//! shortest-distance/path answers (venue geometry is immutable while
//! registered, so those survive object churn). A stale hit is
//! *impossible by construction*: an entry only counts as a hit when its
//! stamp equals the current generation, every mutation path — including
//! out-of-band swaps through a handle from [`IndoorService::engine`] —
//! bumps the generation only **after** the new snapshot is swapped in,
//! and queries capture their stamps before computing, so an answer is
//! never stamped newer than the snapshot that produced it. The
//! venue-level `epoch`/`version` counters are observability; rebuilds
//! also clear the map, but deltas rely purely on stamps + eviction (see
//! DESIGN.md, "Object deltas and the service version counter").
//!
//! The per-shard cache is **bounded**: a clock (second-chance) sweep
//! evicts unreferenced entries once `cache_capacity` is reached, with
//! eviction counts surfaced through [`ServiceStats`].
//!
//! # Durability and degradation
//!
//! On a durable service ([`IndoorService::open`]) every mutation is
//! **journal-before-apply**: the WAL record at `LSN = version + 1` is
//! written first, and only on success does the in-memory snapshot swap
//! and the version bump. A failed append therefore leaves the shard
//! exactly as it was — surfaced as [`ServiceError::Persist`] — and
//! memory can never run ahead of the log. If even the rollback of a
//! partial append fails (the log's tail is in an unknown state), the
//! shard poisons itself: reads keep serving the last good snapshot, but
//! every further mutation fails with [`ServiceError::Degraded`] rather
//! than acknowledging writes the log does not hold. DESIGN.md §11 states
//! the full fault model.
//!
//! # Overload admission
//!
//! Each shard optionally bounds its in-flight queries
//! ([`AdmissionConfig`]): beyond `max_in_flight`, arrivals are shed
//! ([`ServiceError::Overloaded`]) or parked up to a deadline
//! ([`OverloadPolicy::Block`], failing with [`ServiceError::Timeout`]).
//! Batches admit with the weight of their slot share, so a saturated
//! shard sheds whole batch shares instead of admitting unbounded work.
//! Shed/timeout counts and live occupancy surface through
//! [`ServiceStats`].
//!
//! # Concurrency
//!
//! The offline container bans tokio; batches fan out with hand-rolled
//! primitives instead — one scoped worker thread per shard with work,
//! results flowing back over an [`std::sync::mpsc`] channel tagged with
//! their input slot, so output order is the input order regardless of
//! shard scheduling.

use crate::exec::{AdmissionGate, AdmissionPermit, AdmitError, QueryEngine};
use crate::keywords::KeywordObjects;
use crate::objects::{DeltaReport, ObjectIndex};
use crate::persist::storage::{OsStorage, Storage, StorageLock};
use crate::persist::wal::{self, VenueWal, WalRecord, LSN_CREATE, LSN_REMOVE};
use crate::persist::PersistError;
use crate::tree::{BuildError, VipTreeConfig};
use crate::vip::VipTree;
use indoor_model::{
    wire, DeltaError, IndoorPoint, ObjectDelta, ObjectUpdate, QueryKind, QueryRequest,
    QueryResponse, Venue, VenueId,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Default per-shard result-cache capacity (entries) when
/// [`ShardConfig::cache_capacity`] is 0.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Stamp of answers that do not depend on the object set (shortest
/// distance/path): venue geometry is immutable while registered, so these
/// entries survive every object mutation.
const STABLE_STAMP: u64 = u64::MAX;

/// Bounded result cache with clock (second-chance) eviction.
///
/// Entries are stamped; a probe only hits when the entry's stamp equals
/// the expected one, so version bumps invalidate structurally — dead
/// entries are reclaimed by the clock sweep rather than an O(n) purge.
#[derive(Debug)]
pub(crate) struct ClockCache {
    map: HashMap<QueryRequest, CacheEntry>,
    /// Insertion ring the clock hand sweeps; always in sync with `map`.
    ring: Vec<QueryRequest>,
    hand: usize,
    capacity: usize,
    evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    stamp: u64,
    referenced: bool,
    resp: QueryResponse,
}

impl ClockCache {
    /// Configured capacity in entries (persisted by service snapshots).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn new(capacity: usize) -> ClockCache {
        ClockCache {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    fn probe(&mut self, req: &QueryRequest, stamp: u64) -> Option<QueryResponse> {
        let e = self.map.get_mut(req)?;
        if e.stamp != stamp {
            return None;
        }
        e.referenced = true;
        Some(e.resp.clone())
    }

    fn insert(&mut self, req: QueryRequest, stamp: u64, resp: QueryResponse) {
        if let Some(e) = self.map.get_mut(&req) {
            // Re-insert under a fresh stamp revives the slot in place.
            e.stamp = stamp;
            e.resp = resp;
            e.referenced = true;
            return;
        }
        if self.ring.len() < self.capacity {
            self.ring.push(req.clone());
            self.map.insert(
                req,
                CacheEntry {
                    stamp,
                    referenced: false,
                    resp,
                },
            );
            return;
        }
        // Clock sweep: grant every referenced entry a second chance; the
        // sweep terminates because it clears flags as it goes.
        loop {
            let victim = self.ring[self.hand].clone();
            let e = self.map.get_mut(&victim).expect("ring key in map");
            if e.referenced {
                e.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
                continue;
            }
            self.map.remove(&victim);
            self.ring[self.hand] = req.clone();
            self.map.insert(
                req,
                CacheEntry {
                    stamp,
                    referenced: false,
                    resp,
                },
            );
            self.evictions += 1;
            self.hand = (self.hand + 1) % self.capacity;
            return;
        }
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.ring.clear();
        self.hand = 0;
    }
}

/// What a shard does with arrivals beyond its in-flight budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Fail fast with [`ServiceError::Overloaded`] — the caller retries,
    /// degrades, or routes elsewhere. The right default for latency-bound
    /// front-ends: a shed request costs microseconds, a queued one costs
    /// the whole backlog.
    Shed,
    /// Park the arrival until capacity frees, up to `timeout`; then fail
    /// with [`ServiceError::Timeout`]. For callers that prefer bounded
    /// waiting over retry loops.
    Block { timeout: Duration },
}

/// Per-venue admission control: a bound on concurrently executing
/// queries (batch shares weigh their slot count) plus the overload
/// policy. Persisted with the venue on a durable service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum in-flight query weight; **0 = unbounded** (no gate at
    /// all — the un-gated fast path is exactly the pre-admission code).
    pub max_in_flight: usize,
    /// What to do at the bound.
    pub policy: OverloadPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_in_flight: 0,
            policy: OverloadPolicy::Shed,
        }
    }
}

/// When an acknowledged WAL append becomes **power-crash** durable.
///
/// Every policy already guarantees process-crash durability (each record
/// reaches the kernel in one `write_all` before the mutation is
/// acknowledged); the policy decides when `fsync` pushes it past the
/// page cache. Persisted with the venue, applied to every append of its
/// journal. See DESIGN.md §13 for the ack-durability contract per
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync on append (the pre-policy behaviour and the default):
    /// an OS crash or power loss may drop acknowledged tail records —
    /// recovery falls back to the last synced state.
    #[default]
    Never,
    /// fsync before acknowledging every append: an acked write survives
    /// power loss. The strongest — and slowest — contract.
    PerAppend,
    /// fsync on the first append at least `max_delay` after the previous
    /// sync: bounds the power-loss exposure window to roughly
    /// `max_delay` of acknowledged writes without paying a sync per
    /// append. `max_delay` of zero degenerates to [`SyncPolicy::PerAppend`].
    GroupCommit { max_delay: Duration },
    /// fsync every `n`-th append (`n` of 0 behaves as 1): at most `n - 1`
    /// acknowledged records are exposed to power loss.
    EveryN { n: u32 },
}

/// Per-venue construction parameters for [`IndoorService::add_venue`].
#[derive(Debug, Clone, Default)]
pub struct ShardConfig {
    /// Tree construction parameters.
    pub tree: VipTreeConfig,
    /// Worker threads for this shard's batch execution (0 = all cores).
    pub threads: usize,
    /// Objects to attach for kNN/range queries.
    pub objects: Vec<IndoorPoint>,
    /// Labelled objects for keyword-kNN. When non-empty, the shard builds
    /// a [`KeywordObjects`] index and threads it through its engine
    /// automatically; [`IndoorService::update_keyword_objects`] maintains
    /// it incrementally afterwards.
    pub keywords: Vec<(IndoorPoint, Vec<String>)>,
    /// Result-cache capacity in entries (0 = [`DEFAULT_CACHE_CAPACITY`]).
    pub cache_capacity: usize,
    /// In-flight query budget and overload policy (default: unbounded).
    pub admission: AdmissionConfig,
    /// When acknowledged WAL appends become power-crash durable
    /// (default: [`SyncPolicy::Never`]). Ignored on a volatile service.
    pub sync: SyncPolicy,
}

impl ShardConfig {
    /// Serialise to the WAL `Create` record's field encoding — the
    /// canonical opaque-bytes form venue-admin wire frames carry, so the
    /// network layer never mirrors this struct field by field.
    pub fn encode_wire(&self) -> Vec<u8> {
        let mut w = wire::WireWriter::new();
        wal::encode_config(&mut w, &self.tree);
        w.put_u32(self.threads as u32);
        w.put_u64(self.cache_capacity as u64);
        wal::encode_admission(&mut w, &self.admission);
        wal::encode_sync(&mut w, &self.sync);
        w.put_points(&self.objects);
        w.put_u32(self.keywords.len() as u32);
        for (p, labels) in &self.keywords {
            w.put_point(p);
            w.put_labels(labels);
        }
        w.into_bytes()
    }

    /// Inverse of [`ShardConfig::encode_wire`]; rejects trailing bytes.
    pub fn decode_wire(bytes: &[u8]) -> Result<ShardConfig, indoor_model::LoadError> {
        let mut r = wire::WireReader::new(bytes);
        let tree = wal::decode_config(&mut r)?;
        let threads = r.get_u32("engine threads")? as usize;
        let cache_capacity = r.get_u64("cache capacity")? as usize;
        let admission = wal::decode_admission(&mut r)?;
        let sync = wal::decode_sync(&mut r)?;
        let objects = r.get_points()?;
        let n = r.get_u32("keyword object count")? as usize;
        let mut keywords = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let p = r.get_point()?;
            keywords.push((p, r.get_labels()?));
        }
        r.finish("end of shard config")?;
        Ok(ShardConfig {
            tree,
            threads,
            objects,
            keywords,
            cache_capacity,
            admission,
            sync,
        })
    }
}

/// Errors from routing requests to venue shards.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The request named a venue id no shard is registered under (never
    /// registered, or removed).
    UnknownVenue(VenueId),
    /// An object delta batch failed validation; the venue's object set is
    /// untouched.
    Delta(VenueId, DeltaError),
    /// Venue index construction failed ([`IndoorService::add_venue`]).
    Build(BuildError),
    /// A durable mutation could not be journalled; it was **not**
    /// applied — the venue still serves its previous state
    /// (journal-before-apply).
    Persist(VenueId, Arc<PersistError>),
    /// The shard's journal is in an unknown state (a failed append could
    /// not be rolled back, or a WAL rotation broke its append handle):
    /// the venue serves reads from its last good snapshot but refuses
    /// every mutation. Recover by restarting ([`IndoorService::open`]
    /// replays the verified log).
    Degraded(VenueId, Arc<str>),
    /// Shed at admission: the venue's in-flight budget was full
    /// ([`OverloadPolicy::Shed`]). The query did not execute.
    Overloaded {
        venue: VenueId,
        in_flight: usize,
        limit: usize,
    },
    /// The venue's in-flight budget stayed full for the whole
    /// [`OverloadPolicy::Block`] timeout. The query did not execute.
    Timeout {
        venue: VenueId,
        in_flight: usize,
        limit: usize,
    },
    /// A replication request could not be served or applied: the
    /// requested WAL suffix was rotated away, the subscription target is
    /// volatile, or a shipped record does not extend the replica's
    /// history contiguously. See [`IndoorService::wal_subscribe`] and
    /// [`IndoorService::apply_replicated`].
    Replication(VenueId, Arc<str>),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownVenue(v) => write!(f, "no venue registered under id {v}"),
            ServiceError::Delta(v, e) => write!(f, "object delta rejected for venue {v}: {e}"),
            ServiceError::Build(e) => write!(f, "cannot build venue index: {e}"),
            ServiceError::Persist(v, e) => {
                write!(f, "durable mutation of venue {v} not journalled: {e}")
            }
            ServiceError::Degraded(v, reason) => {
                write!(f, "venue {v} is degraded (read-only): {reason}")
            }
            ServiceError::Overloaded {
                venue,
                in_flight,
                limit,
            } => write!(
                f,
                "venue {venue} overloaded: {in_flight} in flight at limit {limit}, request shed"
            ),
            ServiceError::Timeout {
                venue,
                in_flight,
                limit,
            } => write!(
                f,
                "venue {venue} admission timed out: {in_flight} in flight at limit {limit}"
            ),
            ServiceError::Replication(v, detail) => {
                write!(f, "replication of venue {v} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Persist(_, e) => Some(e.as_ref()),
            ServiceError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl PartialEq for ServiceError {
    fn eq(&self, other: &ServiceError) -> bool {
        use ServiceError::*;
        match (self, other) {
            (UnknownVenue(a), UnknownVenue(b)) => a == b,
            (Delta(v, e), Delta(w, f)) => v == w && e == f,
            (Build(a), Build(b)) => a == b,
            // PersistError is not PartialEq (it wraps io::Error); the
            // rendered message is the observable identity.
            (Persist(v, e), Persist(w, f)) => v == w && e.to_string() == f.to_string(),
            (Degraded(v, r), Degraded(w, s)) => v == w && r == s,
            (
                Overloaded {
                    venue: v,
                    in_flight: i,
                    limit: l,
                },
                Overloaded {
                    venue: w,
                    in_flight: j,
                    limit: m,
                },
            ) => v == w && i == j && l == m,
            (
                Timeout {
                    venue: v,
                    in_flight: i,
                    limit: l,
                },
                Timeout {
                    venue: w,
                    in_flight: j,
                    limit: m,
                },
            ) => v == w && i == j && l == m,
            (Replication(v, d), Replication(w, e)) => v == w && d == e,
            _ => false,
        }
    }
}

/// A shard's swappable serving state. Captured (engine + version) under
/// one read-lock acquisition so answers are always stamped with the
/// version of the snapshot that computed them.
#[derive(Debug)]
pub(crate) struct Serving {
    pub(crate) engine: Arc<QueryEngine>,
    /// Wholesale rebuild count (bumped by `attach_objects`) —
    /// observability, mirrored from the pre-delta-era contract.
    pub(crate) epoch: u64,
    /// Object-mutation count (rebuilds, deltas and keyword updates
    /// alike) — observability, and the **LSN** of the WAL record each
    /// mutation appends on a durable service. Cache correctness keys on
    /// the *data* generation counters
    /// ([`crate::IpTree::objects_generation`],
    /// [`QueryEngine::keywords_generation`]), which bump on every swap no
    /// matter who triggers it, so even out-of-band mutation through a
    /// handle from [`IndoorService::engine`] invalidates structurally.
    pub(crate) version: u64,
}

/// One shard's serving-phase histograms, shared with the service's
/// telemetry [`crate::telemetry::Registry`] (which exports them). Set
/// once when the shard is published; every record site guards on the
/// global sampling gate.
#[derive(Debug)]
pub(crate) struct ShardTelemetry {
    /// Time spent taking an admission permit (µs) — includes blocking
    /// waits under [`OverloadPolicy::Block`], and the failed attempts of
    /// shed/timed-out requests.
    admission_wait_us: Arc<crate::telemetry::Histogram>,
    /// Result-cache probe time (µs), including the cache-lock wait.
    cache_probe_us: Arc<crate::telemetry::Histogram>,
    /// WAL append + fsync time (µs) per the shard's [`SyncPolicy`].
    wal_append_us: Arc<crate::telemetry::Histogram>,
    /// End-to-end serving latency per query kind (µs), indexed by
    /// [`QueryKind::index`]. Batch misses apportion wall time equally,
    /// matching [`KindStats::latency_ns`].
    query_latency_us: [Arc<crate::telemetry::Histogram>; QueryKind::COUNT],
}

/// A shard's admission state: the optional gate plus shed/timeout tallies.
#[derive(Debug)]
struct AdmissionControl {
    config: AdmissionConfig,
    /// `None` when `max_in_flight` is 0 — unbounded shards pay zero
    /// admission cost.
    gate: Option<AdmissionGate>,
    shed: AtomicU64,
    timeouts: AtomicU64,
}

/// One venue's serving state.
#[derive(Debug)]
pub(crate) struct Shard {
    pub(crate) serving: RwLock<Serving>,
    pub(crate) cache: Mutex<ClockCache>,
    /// The shard's WAL append handle (`None` on a volatile service) —
    /// and, crucially, the **mutation-ordering lock**: every mutating
    /// path holds it across *WAL append + apply + version bump*, so log
    /// order is apply order (the LSN = version invariant), and a
    /// snapshot capture under the same lock is a consistent cut of that
    /// order. Queries never take it.
    pub(crate) journal: Mutex<Option<VenueWal>>,
    /// `Some(reason)` once the shard has entered read-only degraded mode
    /// (its journal can no longer be trusted). Sticky until restart.
    degraded: Mutex<Option<Arc<str>>>,
    admission: AdmissionControl,
    /// The journal's append-durability policy (persisted with the venue).
    sync: SyncPolicy,
    /// Live replication subscribers: every successful journal append is
    /// published here (under the journal lock, so subscribers see exactly
    /// the log order). Closed receivers are pruned lazily on publish.
    pub(crate) repl_taps: Mutex<Vec<std::sync::mpsc::Sender<crate::repl::WalEntry>>>,
    /// On a **follower** shard: the leader's version as last reported by
    /// the replication stream (0 on a leader). `venue_stats` surfaces
    /// `leader_version - version` as the follower's lag.
    pub(crate) leader_version: AtomicU64,
    /// Serving-phase histograms, wired once when the shard is published
    /// into a service (never on bare engine tests — those run untimed).
    tel: std::sync::OnceLock<Arc<ShardTelemetry>>,
}

impl Shard {
    pub(crate) fn new(
        engine: Arc<QueryEngine>,
        epoch: u64,
        version: u64,
        cache_capacity: usize,
        admission: AdmissionConfig,
        sync: SyncPolicy,
    ) -> Shard {
        let capacity = if cache_capacity == 0 {
            DEFAULT_CACHE_CAPACITY
        } else {
            cache_capacity
        };
        Shard {
            serving: RwLock::new(Serving {
                engine,
                epoch,
                version,
            }),
            cache: Mutex::new(ClockCache::new(capacity)),
            journal: Mutex::new(None),
            degraded: Mutex::new(None),
            admission: AdmissionControl {
                gate: (admission.max_in_flight > 0)
                    .then(|| AdmissionGate::new(admission.max_in_flight)),
                config: admission,
                shed: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
            },
            sync,
            repl_taps: Mutex::new(Vec::new()),
            leader_version: AtomicU64::new(0),
            tel: std::sync::OnceLock::new(),
        }
    }

    /// Attach the shard's serving-phase histograms (first call wins).
    pub(crate) fn set_telemetry(&self, tel: Arc<ShardTelemetry>) {
        let _ = self.tel.set(tel);
    }

    /// The shard's telemetry sink, iff wired **and** the global sampling
    /// gate is open. Every serving-path timer goes through this, so
    /// `telemetry::set_sampling(false)` (or the `telemetry-off` feature)
    /// drops the instrumentation to a load + branch.
    #[inline]
    fn tel(&self) -> Option<&ShardTelemetry> {
        if !crate::telemetry::sampling_enabled() {
            return None;
        }
        self.tel.get().map(|t| t.as_ref())
    }

    /// The currently serving engine.
    pub(crate) fn engine(&self) -> Arc<QueryEngine> {
        self.serving.read().expect("serving lock").engine.clone()
    }

    /// This shard's admission configuration (persisted by snapshots).
    pub(crate) fn admission_config(&self) -> AdmissionConfig {
        self.admission.config
    }

    /// This shard's append-durability policy (persisted by snapshots).
    pub(crate) fn sync_policy(&self) -> SyncPolicy {
        self.sync
    }

    /// Enter read-only degraded mode. Sticky: the first reason wins and
    /// later failures do not overwrite it.
    pub(crate) fn degrade(&self, reason: impl Into<String>) {
        let mut d = self.degraded.lock().expect("degraded lock");
        if d.is_none() {
            *d = Some(Arc::from(reason.into()));
        }
    }

    pub(crate) fn degraded_reason(&self) -> Option<Arc<str>> {
        self.degraded.lock().expect("degraded lock").clone()
    }

    /// Take an admission permit of `weight`, or the typed overload error.
    /// `Ok(None)` means the shard is unbounded.
    fn admit(
        &self,
        venue: VenueId,
        weight: usize,
    ) -> Result<Option<AdmissionPermit<'_>>, ServiceError> {
        let Some(gate) = &self.admission.gate else {
            return Ok(None);
        };
        let t0 = self.tel().map(|_| Instant::now());
        let attempt = match self.admission.config.policy {
            OverloadPolicy::Shed => gate.try_admit(weight),
            OverloadPolicy::Block { timeout } => gate.admit_within(weight, timeout),
        };
        if let (Some(t0), Some(tel)) = (t0, self.tel()) {
            tel.admission_wait_us
                .record(t0.elapsed().as_micros() as u64);
        }
        attempt.map(Some).map_err(|e| match e {
            AdmitError::Overloaded { in_flight, limit } => {
                self.admission.shed.fetch_add(1, Ordering::Relaxed);
                ServiceError::Overloaded {
                    venue,
                    in_flight,
                    limit,
                }
            }
            AdmitError::Timeout { in_flight, limit } => {
                self.admission.timeouts.fetch_add(1, Ordering::Relaxed);
                ServiceError::Timeout {
                    venue,
                    in_flight,
                    limit,
                }
            }
        })
    }
}

/// Refuse mutations on a degraded shard (reads stay open).
fn ensure_writable(shard: &Shard, venue: VenueId) -> Result<(), ServiceError> {
    match shard.degraded_reason() {
        Some(reason) => Err(ServiceError::Degraded(venue, reason)),
        None => Ok(()),
    }
}

/// Append one record to the shard's journal (no-op when volatile). On
/// failure the caller's mutation **must not** be applied; if the append's
/// own rollback also failed the journal is poisoned and the shard drops
/// into degraded mode here.
fn journal_append(
    shard: &Shard,
    journal: &mut Option<VenueWal>,
    venue: VenueId,
    lsn: u64,
    record: &WalRecord<'_>,
) -> Result<(), ServiceError> {
    let Some(wal) = journal.as_mut() else {
        return Ok(());
    };
    let t0 = shard.tel().map(|_| Instant::now());
    let appended = wal.append(lsn, record);
    if let (Some(t0), Some(tel)) = (t0, shard.tel()) {
        tel.wal_append_us.record(t0.elapsed().as_micros() as u64);
    }
    match appended {
        Ok(()) => {
            // Publish to live replication subscribers. Still under the
            // journal lock (the caller holds it across append + apply),
            // so taps observe exactly the log order with no gaps between
            // a subscriber's suffix fetch and its live tail. The payload
            // is re-encoded once and shared.
            let mut taps = shard.repl_taps.lock().expect("repl taps lock");
            if !taps.is_empty() {
                let payload: Arc<[u8]> = wal::encode_record(lsn, record).into();
                taps.retain(|tap| tap.send((lsn, payload.clone())).is_ok());
            }
            Ok(())
        }
        Err(e) => {
            if wal.poisoned() {
                shard.degrade(format!(
                    "WAL append of LSN {lsn} failed and its rollback failed: {e}"
                ));
            }
            Err(ServiceError::Persist(venue, Arc::new(e)))
        }
    }
}

/// The cache stamps of one serving moment: captured **before** probing
/// or computing, so an answer is never stamped newer than the snapshot
/// that produced it.
#[derive(Clone, Copy)]
struct Stamps {
    objects: u64,
    keywords: u64,
}

impl Stamps {
    fn capture(engine: &QueryEngine) -> Stamps {
        Stamps {
            objects: engine.tree().ip().objects_generation(),
            keywords: engine.keywords_generation(),
        }
    }

    fn for_kind(&self, kind: QueryKind) -> u64 {
        match kind {
            QueryKind::ShortestDistance | QueryKind::ShortestPath => STABLE_STAMP,
            QueryKind::Knn | QueryKind::Range => self.objects,
            QueryKind::KnnKeyword => self.keywords,
        }
    }
}

/// Lock-free per-kind counters; snapshot via [`IndoorService::stats`].
#[derive(Debug, Default)]
pub(crate) struct KindCounters {
    queries: AtomicU64,
    hits: AtomicU64,
    latency_ns: AtomicU64,
}

/// Snapshot of one query kind's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KindStats {
    pub kind: QueryKind,
    /// Requests answered (hits + misses).
    pub queries: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Total serving latency. Batch misses apportion the batch's wall
    /// time equally over its requests.
    pub latency_ns: u64,
}

impl KindStats {
    /// Fraction of requests served from cache (0 when none seen).
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.queries as f64
        }
    }

    /// Mean serving latency in nanoseconds (0 when none seen).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.latency_ns as f64 / self.queries as f64
        }
    }
}

/// Point-in-time snapshot of a service's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Registered venue shards.
    pub venues: usize,
    /// Live result-cache entries summed over shards (includes entries
    /// whose stamp has gone stale but which eviction has not reclaimed
    /// yet).
    pub cached_entries: usize,
    /// Result-cache capacity summed over shards.
    pub cache_capacity: usize,
    /// Clock-eviction count summed over shards.
    pub evictions: u64,
    /// In-flight query weight currently admitted, summed over bounded
    /// shards (unbounded shards report 0 — they do not track occupancy).
    pub in_flight: usize,
    /// Admission capacity summed over bounded shards.
    pub admission_capacity: usize,
    /// Requests shed at admission ([`OverloadPolicy::Shed`]).
    pub shed: u64,
    /// Requests that timed out waiting for admission
    /// ([`OverloadPolicy::Block`]).
    pub admission_timeouts: u64,
    /// Venues in read-only degraded mode.
    pub degraded_venues: usize,
    /// Individual object deltas absorbed across all venues (batch sizes
    /// summed over [`IndoorService::update_objects`] and
    /// [`IndoorService::update_keyword_objects`]; rejected batches count
    /// nothing).
    pub deltas_absorbed: u64,
    /// Per-kind counters, indexed by [`QueryKind::index`].
    pub kinds: [KindStats; QueryKind::COUNT],
}

impl ServiceStats {
    /// The counters of one query kind.
    pub fn kind(&self, kind: QueryKind) -> &KindStats {
        &self.kinds[kind.index()]
    }

    /// Requests answered across all kinds.
    pub fn total_queries(&self) -> u64 {
        self.kinds.iter().map(|k| k.queries).sum()
    }

    /// Cache hits across all kinds.
    pub fn total_cache_hits(&self) -> u64 {
        self.kinds.iter().map(|k| k.cache_hits).sum()
    }

    /// Overall cache hit rate (0 when no requests seen).
    pub fn hit_rate(&self) -> f64 {
        let q = self.total_queries();
        if q == 0 {
            0.0
        } else {
            self.total_cache_hits() as f64 / q as f64
        }
    }
}

/// Point-in-time snapshot of **one** venue shard, from
/// [`IndoorService::venue_stats`] — the per-venue view the scenario lab
/// reads to tell a flash-crowd victim from its idle neighbours (the
/// aggregate [`ServiceStats`] sums these over shards).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    pub venue: VenueId,
    /// Rebuild epoch (bumps on [`IndoorService::attach_objects`]).
    pub epoch: u64,
    /// Object-set version (bumps on every object mutation).
    pub version: u64,
    /// Live result-cache entries (including stale-but-unevicted ones).
    pub cached_entries: usize,
    /// Result-cache capacity.
    pub cache_capacity: usize,
    /// Clock-eviction count.
    pub evictions: u64,
    /// Admitted in-flight query weight (0 on an unbounded shard).
    pub in_flight: usize,
    /// Admission capacity (0 = unbounded).
    pub admission_capacity: usize,
    /// Requests shed at this shard's gate.
    pub shed: u64,
    /// Requests that timed out waiting at this shard's gate.
    pub admission_timeouts: u64,
    /// On a replication **follower**: applied-LSN gap behind the leader
    /// (`leader version − local version` at the last stream report).
    /// Always 0 on a leader and on venues never fed by a follower.
    pub replication_lag: u64,
    /// Why the shard is read-only, if it is.
    pub degraded: Option<String>,
    /// The shard's object-index anatomy
    /// ([`crate::objects::ObjectIndexStats`] folded in): leaf pages built
    /// over the venue's lifetime.
    pub object_leaf_builds: u64,
    /// Object-index leaf pages touched by delta application.
    pub object_leaf_touches: u64,
    /// Object-index compaction passes.
    pub object_compactions: u64,
    /// Live objects in the index.
    pub live_objects: usize,
    /// Allocated object slots (live + tombstoned).
    pub object_slots: usize,
    /// Leaf door-grids built so far (lazy: ≤ leaf count until every leaf
    /// has served an own-leaf scan or an audit forced the rest).
    pub leaf_grid_builds: u64,
}

/// Multi-venue query service: routes typed requests to per-venue engine
/// shards through a bounded, version-keyed result cache. All mutating
/// entry points take `&self` (see the module docs).
///
/// ```
/// use indoor_synth::{random_venue, workload};
/// use std::sync::Arc;
/// use vip_tree::{IndoorService, ShardConfig};
/// use indoor_model::{ObjectDelta, ObjectId, QueryRequest};
///
/// let venue = Arc::new(random_venue(5));
/// let objects = workload::place_objects(&venue, 10, 1);
/// let service = IndoorService::new();
/// let id = service
///     .add_venue(
///         venue.clone(),
///         ShardConfig {
///             objects: objects.clone(),
///             ..ShardConfig::default()
///         },
///     )
///     .unwrap();
/// let q = workload::query_points(&venue, 1, 2)[0];
/// let req = QueryRequest::Knn { q, k: 3 };
/// let first = service.execute(id, &req).unwrap();
/// let second = service.execute(id, &req).unwrap(); // served from cache
/// assert_eq!(first, second);
/// assert_eq!(service.stats().total_cache_hits(), 1);
///
/// // Live churn, no &mut: move one object, version bumps, cache misses.
/// service
///     .update_objects(id, &[ObjectDelta::Move { id: ObjectId(0), to: objects[1] }])
///     .unwrap();
/// assert_eq!(service.version(id).unwrap(), 1);
/// ```
#[derive(Debug)]
pub struct IndoorService {
    /// Slot = `VenueId`; removed venues leave a `None` (ids are never
    /// reused, so a stale id can never alias a new venue).
    pub(crate) shards: RwLock<Vec<Option<Arc<Shard>>>>,
    pub(crate) counters: [KindCounters; QueryKind::COUNT],
    /// Individual deltas absorbed service-wide (see
    /// [`ServiceStats::deltas_absorbed`]). Service-level, not per-shard:
    /// it survives venue removal, so throughput accounting never loses
    /// history when a venue retires mid-run.
    pub(crate) deltas_absorbed: AtomicU64,
    /// Every byte of persistence I/O routes through here —
    /// [`OsStorage`] in production, a fault-injecting test double in the
    /// crash-consistency tests.
    pub(crate) storage: Arc<dyn Storage>,
    /// Durability directory ([`IndoorService::open`]); `None` for a
    /// volatile service. When set, every mutation journals into
    /// per-venue WALs under this directory.
    pub(crate) persist_root: Option<PathBuf>,
    /// Serialises whole-service persistence transitions: snapshot
    /// save/rotation and durable venue registration (which publishes a
    /// slot in two steps). Never taken by queries or per-venue mutations.
    pub(crate) persist_lock: Mutex<()>,
    /// Advisory lock on the durability directory's `.lock` file, held
    /// for the service's lifetime so a second `open` of the same
    /// directory fails instead of interleaving WAL appends. Released
    /// when the handle drops (so a crash never leaves a stale lock).
    pub(crate) _persist_dir_lock: Option<Box<dyn StorageLock>>,
    /// All named telemetry instruments (DESIGN.md §15). Venue-labelled
    /// instruments are created when a shard is published
    /// ([`IndoorService::wire_telemetry`]) and retired with the venue;
    /// [`IndoorService::metrics_snapshot`] gathers the lot.
    pub(crate) registry: crate::telemetry::Registry,
}

impl Default for IndoorService {
    fn default() -> IndoorService {
        IndoorService {
            shards: RwLock::default(),
            counters: Default::default(),
            deltas_absorbed: AtomicU64::new(0),
            storage: Arc::new(OsStorage),
            persist_root: None,
            persist_lock: Mutex::new(()),
            _persist_dir_lock: None,
            registry: crate::telemetry::Registry::new(),
        }
    }
}

impl IndoorService {
    /// An empty service; add venues with [`IndoorService::add_venue`].
    pub fn new() -> IndoorService {
        IndoorService::default()
    }

    /// Create the venue-labelled instruments for a shard being published
    /// (DESIGN.md §15 names) and wire them into the shard (serving-phase
    /// histograms) and its engine (per-query phase timings and hot-path
    /// counters). Called at every publish site — `add_venue` (both
    /// paths), recovery, and replicated venue birth — and idempotent per
    /// venue: the registry get-or-creates by `(name, labels)`, so
    /// re-publishing re-attaches to the same series.
    pub(crate) fn wire_telemetry(&self, shard: &Shard, venue: VenueId) {
        let v = venue.index().to_string();
        let vl: &[(&str, &str)] = &[("venue", &v)];
        let reg = &self.registry;
        let query_latency_us = QueryKind::ALL.map(|kind| {
            reg.histogram(
                "indoor_query_latency_us",
                "End-to-end serving latency by query kind (us)",
                &[("venue", &v), ("kind", kind.label())],
            )
        });
        shard.set_telemetry(Arc::new(ShardTelemetry {
            admission_wait_us: reg.histogram(
                "indoor_admission_wait_us",
                "Admission permit wait, including shed and timed-out attempts (us)",
                vl,
            ),
            cache_probe_us: reg.histogram(
                "indoor_cache_probe_us",
                "Result-cache probe time, including the cache lock wait (us)",
                vl,
            ),
            wal_append_us: reg.histogram(
                "indoor_wal_append_us",
                "WAL append + fsync time under the shard's sync policy (us)",
                vl,
            ),
            query_latency_us,
        }));
        shard
            .engine()
            .set_telemetry(Arc::new(crate::exec::EngineTelemetry {
                descent_us: reg.histogram(
                    "indoor_phase_descent_us",
                    "Per-query tree descent/ascent phase time (us)",
                    vl,
                ),
                leaf_fold_us: reg.histogram(
                    "indoor_phase_leaf_fold_us",
                    "Per-query own-leaf door-grid fold phase time (us)",
                    vl,
                ),
                heap_us: reg.histogram(
                    "indoor_phase_heap_us",
                    "Per-query result heap drain/sort phase time (us)",
                    vl,
                ),
                nodes_pushed: reg.counter(
                    "indoor_nodes_pushed_total",
                    "Branch-and-bound candidates pushed",
                    vl,
                ),
                nodes_pruned: reg.counter(
                    "indoor_nodes_pruned_total",
                    "Candidates pruned by the admissible lower bound",
                    vl,
                ),
                slab_rows: reg.counter(
                    "indoor_slab_rows_total",
                    "SoA distance-slab rows walked",
                    vl,
                ),
                kbest_updates: reg.counter(
                    "indoor_kbest_updates_total",
                    "k-best set insertions during leaf scans",
                    vl,
                ),
                traced_queries: reg.counter(
                    "indoor_traced_queries_total",
                    "Queries that ran with tracing sampled on",
                    vl,
                ),
            }));
    }

    /// Build a VIP-tree shard for `venue` and register it, returning the
    /// id requests route by. Objects and keyword objects from the config
    /// are attached before the shard serves its first query. The build
    /// runs outside the shard-map lock, so a live service keeps serving
    /// every existing venue while a new one is constructed.
    ///
    /// On a durable service the venue's birth is journalled before the
    /// shard is published; a journalling failure returns
    /// [`ServiceError::Persist`] with the venue unregistered (its
    /// reserved id stays burned — ids are never reused).
    pub fn add_venue(
        &self,
        venue: Arc<Venue>,
        config: ShardConfig,
    ) -> Result<VenueId, ServiceError> {
        let tree = VipTree::build(venue.clone(), &config.tree).map_err(ServiceError::Build)?;
        if !config.objects.is_empty() {
            tree.attach_objects(&config.objects);
        }
        let mut engine = QueryEngine::for_vip(Arc::new(tree)).with_threads(config.threads);
        if !config.keywords.is_empty() {
            let kw = KeywordObjects::build(engine.tree().ip(), &config.keywords);
            engine = engine.with_keywords(Arc::new(kw));
        }
        let capacity = if config.cache_capacity == 0 {
            DEFAULT_CACHE_CAPACITY
        } else {
            config.cache_capacity
        };
        let shard = Arc::new(Shard::new(
            Arc::new(engine),
            0,
            0,
            capacity,
            config.admission,
            config.sync,
        ));
        let Some(root) = &self.persist_root else {
            let mut shards = self.shards.write().expect("shard map lock");
            let id = VenueId::from(shards.len());
            self.wire_telemetry(&shard, id);
            shards.push(Some(shard));
            return Ok(id);
        };
        // A durable service journals the venue's birth: everything needed
        // to rebuild this shard if no snapshot ever covers it. The file
        // I/O must not run under the shard-map write lock (it would stall
        // query routing to *every* venue), so the slot is reserved first
        // (pushed as `None` — unroutable, and burned if journalling
        // fails, consistent with ids never being reused) and the shard
        // published only after the Create record is written.
        // `persist_lock` excludes a concurrent `save_snapshot` from
        // observing the reserved-but-unpublished slot and deleting the
        // fresh log as a removed venue's.
        let _persist = self.persist_lock.lock().expect("persist lock");
        let mut venue_json = Vec::new();
        venue
            .save_json(&mut venue_json)
            .expect("venue serialises to memory");
        let id = {
            let mut shards = self.shards.write().expect("shard map lock");
            let id = VenueId::from(shards.len());
            shards.push(None);
            id
        };
        let record = WalRecord::Create {
            tree: &config.tree,
            engine_threads: config.threads,
            cache_capacity: capacity,
            admission: &config.admission,
            sync: config.sync,
            venue_json: &venue_json,
            objects: &config.objects,
            keywords: &config.keywords,
        };
        let created = VenueWal::create(&self.storage, root, id.index(), config.sync)
            .and_then(|mut wal| wal.append(LSN_CREATE, &record).map(|()| wal));
        let wal = match created {
            Ok(wal) => wal,
            Err(e) => {
                // Best-effort cleanup of the partial log: recovery would
                // treat a magic-only or torn-tailed log as an empty slot
                // anyway, this just keeps the directory tidy.
                let path = wal::wal_path(root, id.index());
                if self.storage.exists(&path) {
                    let _ = self.storage.remove_file(&path);
                    let _ = self.storage.sync_dir(root);
                }
                return Err(ServiceError::Persist(id, Arc::new(e)));
            }
        };
        *shard.journal.lock().expect("journal lock") = Some(wal);
        self.wire_telemetry(&shard, id);
        self.shards.write().expect("shard map lock")[id.index()] = Some(shard);
        Ok(id)
    }

    /// Unregister a venue. Its id is never reused; in-flight batches that
    /// already routed to the shard finish normally. On a durable service
    /// the removal is journalled (LSN `u64::MAX`, so it replays no matter
    /// when the last snapshot was taken) and survives a restart — and a
    /// journalling failure leaves the venue registered and serving.
    pub fn remove_venue(&self, venue: VenueId) -> Result<(), ServiceError> {
        // Journal the removal before unrouting, and outside the map write
        // lock (file I/O must not stall query routing). If a concurrent
        // mutation wins the journal lock first, its record lands before
        // the Remove; records that lose and land after it are skipped by
        // replay (the venue is gone either way).
        let shard = self.shard(venue)?;
        let mut journal = shard.journal.lock().expect("journal lock");
        ensure_writable(&shard, venue)?;
        journal_append(&shard, &mut journal, venue, LSN_REMOVE, &WalRecord::Remove)?;
        drop(journal);
        let mut shards = self.shards.write().expect("shard map lock");
        let unrouted = match shards.get_mut(venue.index()) {
            Some(slot @ Some(_)) => {
                *slot = None;
                Ok(())
            }
            // A racing remove_venue of the same id beat us to the slot.
            _ => Err(ServiceError::UnknownVenue(venue)),
        };
        drop(shards);
        if unrouted.is_ok() {
            // Retire the venue's series so the exposition page stops
            // carrying a removed venue forever.
            self.registry
                .remove_labeled("venue", &venue.index().to_string());
        }
        unrouted
    }

    /// Whether this service journals mutations (it was opened from a
    /// persist directory). Replication leaders must be durable — a
    /// volatile service has no WAL to ship — and followers volatile.
    pub fn is_durable(&self) -> bool {
        self.persist_root.is_some()
    }

    /// Number of registered venues.
    pub fn venue_count(&self) -> usize {
        self.shards
            .read()
            .expect("shard map lock")
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// The ids of all registered venues.
    pub fn venues(&self) -> Vec<VenueId> {
        self.shards
            .read()
            .expect("shard map lock")
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| VenueId::from(i)))
            .collect()
    }

    /// A venue's query engine (for direct, uncached access). Mutating the
    /// underlying tree or keyword index through this handle is safe for
    /// the cache — stamps derive from the data generation counters, which
    /// bump on every swap — but prefer the service's typed entry points,
    /// which also maintain the venue's epoch/version observability.
    ///
    /// On a **durable** service ([`IndoorService::open`]) out-of-band
    /// mutation through this handle additionally **bypasses the WAL**:
    /// the change serves immediately but is not journalled, so it will
    /// not survive a restart (and is silently shadowed by the next
    /// snapshot). Durable services must churn through the service's own
    /// mutation methods.
    pub fn engine(&self, venue: VenueId) -> Result<Arc<QueryEngine>, ServiceError> {
        Ok(self.shard(venue)?.engine())
    }

    /// A venue's rebuild epoch (bumped by every
    /// [`IndoorService::attach_objects`]).
    pub fn epoch(&self, venue: VenueId) -> Result<u64, ServiceError> {
        Ok(self
            .shard(venue)?
            .serving
            .read()
            .expect("serving lock")
            .epoch)
    }

    /// A venue's object-set version (bumped by every object mutation:
    /// rebuilds **and** delta batches).
    pub fn version(&self, venue: VenueId) -> Result<u64, ServiceError> {
        Ok(self
            .shard(venue)?
            .serving
            .read()
            .expect("serving lock")
            .version)
    }

    /// Why a venue is read-only, if it is. `None` = serving mutations
    /// normally. A degraded venue keeps answering queries from its last
    /// good snapshot; restart the service to recover it from the
    /// verified log.
    pub fn degraded(&self, venue: VenueId) -> Result<Option<String>, ServiceError> {
        Ok(self.shard(venue)?.degraded_reason().map(|r| r.to_string()))
    }

    pub(crate) fn shard(&self, venue: VenueId) -> Result<Arc<Shard>, ServiceError> {
        self.shards
            .read()
            .expect("shard map lock")
            .get(venue.index())
            .and_then(|s| s.clone())
            .ok_or(ServiceError::UnknownVenue(venue))
    }

    /// Replace a venue's object set wholesale (§3.4 overnight churn).
    ///
    /// The replacement index is built outside every lock, journalled,
    /// swapped into the shared tree, and the rebuild epoch + object
    /// version bump — making every previously cached object answer
    /// unreachable. The keyword index is untouched (it has its own
    /// object set; see [`IndoorService::update_keyword_objects`]). Runs
    /// under `&self`: concurrent queries finish on the snapshot they
    /// started with, and other venues never notice.
    pub fn attach_objects(
        &self,
        venue: VenueId,
        objects: &[IndoorPoint],
    ) -> Result<(), ServiceError> {
        let shard = self.shard(venue)?;
        let engine = shard.engine();
        // Built outside every lock; `install_objects` swaps and bumps the
        // tree's object generation — queries never stall on the build.
        let oi = ObjectIndex::build(engine.tree().ip(), objects);
        // Journal lock held across append + apply + bump: LSN = version,
        // and journal-before-apply — a failed append changes nothing.
        let mut journal = shard.journal.lock().expect("journal lock");
        ensure_writable(&shard, venue)?;
        let lsn = shard.serving.read().expect("serving lock").version + 1;
        journal_append(
            &shard,
            &mut journal,
            venue,
            lsn,
            &WalRecord::Attach(objects),
        )?;
        engine.tree().ip().install_objects(oi);
        let mut s = shard.serving.write().expect("serving lock");
        s.epoch += 1;
        s.version = lsn;
        drop(s);
        drop(journal);
        // Memory hygiene only — correctness is carried by the stamps.
        shard.cache.lock().expect("cache poisoned").clear();
        Ok(())
    }

    /// Absorb an incremental object-delta batch into a venue (the
    /// live-service churn path: insert/remove/move against stable ids).
    ///
    /// Only the leaves the deltas land in are touched
    /// ([`ObjectIndex::apply_delta`]); the object version bumps (epoch —
    /// the rebuild counter — does not), cached object answers go
    /// structurally stale, and cached shortest-distance/path answers
    /// survive untouched. Validation is atomic: an invalid batch leaves
    /// the venue unchanged — and so does a batch whose WAL record fails
    /// to journal (the prepared snapshot is discarded unpublished).
    pub fn update_objects(
        &self,
        venue: VenueId,
        deltas: &[ObjectDelta],
    ) -> Result<DeltaReport, ServiceError> {
        let shard = self.shard(venue)?;
        // Journal lock held across append + apply + bump so log order is
        // apply order (LSN = version); a rejected batch journals nothing,
        // an unjournalled batch applies nothing. Still applied outside
        // the serving lock: the tree serialises updaters itself and its
        // generation counter carries the cache stamps, so the
        // copy-on-write clone never gates this venue's queries.
        let mut journal = shard.journal.lock().expect("journal lock");
        ensure_writable(&shard, venue)?;
        let engine = shard.engine();
        let prepared = engine
            .tree()
            .ip()
            .prepare_object_deltas(deltas)
            .map_err(|e| ServiceError::Delta(venue, e))?;
        let lsn = shard.serving.read().expect("serving lock").version + 1;
        journal_append(&shard, &mut journal, venue, lsn, &WalRecord::Deltas(deltas))?;
        let report = prepared.install();
        shard.serving.write().expect("serving lock").version = lsn;
        drop(journal);
        self.deltas_absorbed
            .fetch_add(deltas.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    /// Absorb labelled deltas into a venue's keyword index (building one
    /// from empty if the venue has none), re-threading inverted lists for
    /// the touched objects only. Bumps the object version like
    /// [`IndoorService::update_objects`]. Keyword updaters are serialised
    /// under the journal lock (the keyword index has no tree-side updater
    /// mutex), so concurrent keyword batches never lose deltas.
    pub fn update_keyword_objects(
        &self,
        venue: VenueId,
        updates: &[ObjectUpdate],
    ) -> Result<DeltaReport, ServiceError> {
        let shard = self.shard(venue)?;
        let mut journal = shard.journal.lock().expect("journal lock");
        ensure_writable(&shard, venue)?;
        let engine = shard.engine();
        let tree_ip = engine.tree().ip();
        let mut kw = match engine.keywords() {
            Some(kw) => (*kw).clone(),
            None => KeywordObjects::build(tree_ip, &[]),
        };
        let report = kw
            .apply_delta(tree_ip, updates)
            .map_err(|e| ServiceError::Delta(venue, e))?;
        let lsn = shard.serving.read().expect("serving lock").version + 1;
        journal_append(
            &shard,
            &mut journal,
            venue,
            lsn,
            &WalRecord::KeywordUpdates(updates),
        )?;
        engine.set_keywords(Some(Arc::new(kw)));
        shard.serving.write().expect("serving lock").version = lsn;
        drop(journal);
        self.deltas_absorbed
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        Ok(report)
    }

    fn record(&self, kind: QueryKind, hit: bool, elapsed: Duration) {
        let c = &self.counters[kind.index()];
        c.queries.fetch_add(1, Ordering::Relaxed);
        if hit {
            c.hits.fetch_add(1, Ordering::Relaxed);
        }
        c.latency_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Answer one request for one venue, through the admission gate and
    /// the cache. A shed or timed-out request returns the typed overload
    /// error without executing (cache probes count as execution: a hit
    /// still takes a permit — admission bounds *work started*, and probe
    /// cost is work).
    pub fn execute(
        &self,
        venue: VenueId,
        req: &QueryRequest,
    ) -> Result<QueryResponse, ServiceError> {
        let shard = self.shard(venue)?;
        let _permit = shard.admit(venue, 1)?;
        let t0 = Instant::now();
        let engine = shard.engine();
        // Stamps captured before computing: the answer is never stamped
        // newer than the snapshot that produced it (the stale-hit proof).
        let stamp = Stamps::capture(&engine).for_kind(req.kind());
        // Borrowed probe: no request clone (and no allocation) on a hit.
        let hit = shard
            .cache
            .lock()
            .expect("cache poisoned")
            .probe(req, stamp);
        // Probe time measured from `t0` — the stamp capture it includes
        // is part of the probe path, and reusing the request timestamp
        // keeps the always-on cost to one clock read plus one record.
        if let Some(tel) = shard.tel() {
            tel.cache_probe_us.record(t0.elapsed().as_micros() as u64);
        }
        if let Some(resp) = hit {
            let elapsed = t0.elapsed();
            if let Some(tel) = shard.tel() {
                tel.query_latency_us[req.kind().index()].record(elapsed.as_micros() as u64);
            }
            self.record(req.kind(), true, elapsed);
            return Ok(resp);
        }
        let resp = engine.execute(req);
        shard
            .cache
            .lock()
            .expect("cache poisoned")
            .insert(req.clone(), stamp, resp.clone());
        let elapsed = t0.elapsed();
        if let Some(tel) = shard.tel() {
            tel.query_latency_us[req.kind().index()].record(elapsed.as_micros() as u64);
        }
        self.record(req.kind(), false, elapsed);
        Ok(resp)
    }

    /// Answer a heterogeneous multi-venue batch; slot `i` answers
    /// `reqs[i]`, identical to calling [`IndoorService::execute`] per
    /// slot (unknown venues answer `Err` without disturbing the rest,
    /// and a saturated venue sheds its whole batch share — every slot
    /// routed to it answers the overload error).
    ///
    /// One scoped worker per venue shard with work; each admits its slot
    /// share's weight, answers its slots (cache first, then one engine
    /// batch over the misses) and streams `(slot, result)` back over an
    /// mpsc channel.
    pub fn execute_batch(
        &self,
        reqs: &[(VenueId, QueryRequest)],
    ) -> Vec<Result<QueryResponse, ServiceError>> {
        // Snapshot the shard map once: venue removal mid-batch cannot
        // strand a slot.
        let shards: Vec<Option<Arc<Shard>>> = self.shards.read().expect("shard map lock").clone();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shards.len()];
        let mut out: Vec<Option<Result<QueryResponse, ServiceError>>> = vec![None; reqs.len()];
        for (slot, (venue, _)) in reqs.iter().enumerate() {
            match shards.get(venue.index()).and_then(|s| s.as_ref()) {
                Some(_) => by_shard[venue.index()].push(slot),
                None => out[slot] = Some(Err(ServiceError::UnknownVenue(*venue))),
            }
        }

        let (tx, rx) = mpsc::channel::<(usize, Result<QueryResponse, ServiceError>)>();
        std::thread::scope(|scope| {
            for (index, (shard, slots)) in shards.iter().zip(&by_shard).enumerate() {
                let Some(shard) = shard else { continue };
                if slots.is_empty() {
                    continue;
                }
                let venue = VenueId::from(index);
                let tx = tx.clone();
                scope.spawn(move || self.serve_shard_slots(shard, venue, slots, reqs, &tx));
            }
            drop(tx);
            for (slot, resp) in rx {
                debug_assert!(out[slot].is_none(), "slot answered twice");
                out[slot] = Some(resp);
            }
        });
        out.into_iter()
            .map(|r| r.expect("every slot answered"))
            .collect()
    }

    /// Worker body of [`IndoorService::execute_batch`] for one shard.
    fn serve_shard_slots(
        &self,
        shard: &Shard,
        venue: VenueId,
        slots: &[usize],
        reqs: &[(VenueId, QueryRequest)],
        tx: &mpsc::Sender<(usize, Result<QueryResponse, ServiceError>)>,
    ) {
        // The whole slot share admits as one unit (weight = slot count):
        // a saturated shard rejects the share up front instead of
        // starting unbounded work. Oversized shares still admit on an
        // idle gate, so `max_in_flight` never deadlocks a big batch.
        let _permit = match shard.admit(venue, slots.len()) {
            Ok(permit) => permit,
            Err(e) => {
                for &slot in slots {
                    let _ = tx.send((slot, Err(e.clone())));
                }
                return;
            }
        };
        // One consistent snapshot for the whole batch share, stamps
        // captured before any computation.
        let engine = shard.engine();
        let stamps = Stamps::capture(&engine);
        // Probe under the lock, but clone/record/send outside it so an
        // all-hit batch doesn't starve concurrent `execute` callers.
        let t0 = Instant::now();
        let mut hits: Vec<(usize, QueryResponse)> = Vec::new();
        let mut miss_slots: Vec<usize> = Vec::new();
        {
            let mut cache = shard.cache.lock().expect("cache poisoned");
            for &slot in slots {
                let req = &reqs[slot].1;
                match cache.probe(req, stamps.for_kind(req.kind())) {
                    Some(resp) => hits.push((slot, resp)),
                    None => miss_slots.push(slot),
                }
            }
        }
        if let Some(tel) = shard.tel() {
            // The whole share probes in one cache pass; bill it once.
            tel.cache_probe_us.record(t0.elapsed().as_micros() as u64);
        }
        if !hits.is_empty() {
            // Apportion the probe loop's wall time equally over the hits.
            let per_hit = t0.elapsed() / hits.len() as u32;
            for (slot, resp) in hits {
                let kind = reqs[slot].1.kind();
                if let Some(tel) = shard.tel() {
                    tel.query_latency_us[kind.index()].record(per_hit.as_micros() as u64);
                }
                self.record(kind, true, per_hit);
                let _ = tx.send((slot, Ok(resp)));
            }
        }
        if miss_slots.is_empty() {
            return;
        }

        // Duplicate requests in one cold batch (the kiosk-repeat workload
        // the cache exists for) compute once and fan out to every slot.
        let mut unique: Vec<QueryRequest> = Vec::with_capacity(miss_slots.len());
        let mut slots_of: HashMap<&QueryRequest, Vec<usize>> = HashMap::new();
        for &slot in &miss_slots {
            let req = &reqs[slot].1;
            match slots_of.entry(req) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    unique.push(req.clone());
                    e.insert(vec![slot]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(slot),
            }
        }
        let t0 = Instant::now();
        let resps = engine.execute_batch(&unique);
        // Apportion the batch's wall time equally over its requests.
        let per_query = t0.elapsed() / miss_slots.len() as u32;
        let mut cache = shard.cache.lock().expect("cache poisoned");
        for (req, resp) in unique.iter().zip(resps) {
            for &slot in &slots_of[req] {
                if let Some(tel) = shard.tel() {
                    tel.query_latency_us[req.kind().index()].record(per_query.as_micros() as u64);
                }
                self.record(req.kind(), false, per_query);
                let _ = tx.send((slot, Ok(resp.clone())));
            }
            cache.insert(req.clone(), stamps.for_kind(req.kind()), resp);
        }
    }

    /// Snapshot the per-kind counters, cache occupancy, admission gauges
    /// and degradation state.
    pub fn stats(&self) -> ServiceStats {
        let kinds = QueryKind::ALL.map(|kind| {
            let c = &self.counters[kind.index()];
            KindStats {
                kind,
                queries: c.queries.load(Ordering::Relaxed),
                cache_hits: c.hits.load(Ordering::Relaxed),
                latency_ns: c.latency_ns.load(Ordering::Relaxed),
            }
        });
        let shards: Vec<Arc<Shard>> = self
            .shards
            .read()
            .expect("shard map lock")
            .iter()
            .flatten()
            .cloned()
            .collect();
        let mut cached_entries = 0;
        let mut cache_capacity = 0;
        let mut evictions = 0;
        let mut in_flight = 0;
        let mut admission_capacity = 0;
        let mut shed = 0;
        let mut admission_timeouts = 0;
        let mut degraded_venues = 0;
        for shard in &shards {
            let cache = shard.cache.lock().expect("cache poisoned");
            cached_entries += cache.map.len();
            cache_capacity += cache.capacity;
            evictions += cache.evictions;
            drop(cache);
            if let Some(gate) = &shard.admission.gate {
                in_flight += gate.in_flight();
                admission_capacity += gate.limit();
            }
            shed += shard.admission.shed.load(Ordering::Relaxed);
            admission_timeouts += shard.admission.timeouts.load(Ordering::Relaxed);
            if shard.degraded_reason().is_some() {
                degraded_venues += 1;
            }
        }
        ServiceStats {
            venues: shards.len(),
            cached_entries,
            cache_capacity,
            evictions,
            in_flight,
            admission_capacity,
            shed,
            admission_timeouts,
            degraded_venues,
            deltas_absorbed: self.deltas_absorbed.load(Ordering::Relaxed),
            kinds,
        }
    }

    /// Snapshot **one** venue's serving state — version/epoch, cache
    /// occupancy, admission gauges, degradation. The per-venue complement
    /// of the service-wide [`IndoorService::stats`]; the scenario lab
    /// reads it to attribute shed/timeout counts to the flash-crowd venue
    /// rather than the whole fleet.
    pub fn venue_stats(&self, venue: VenueId) -> Result<ShardStats, ServiceError> {
        let shard = self.shard(venue)?;
        let (epoch, version) = {
            let s = shard.serving.read().expect("serving lock");
            (s.epoch, s.version)
        };
        let (cached_entries, cache_capacity, evictions) = {
            let cache = shard.cache.lock().expect("cache poisoned");
            (cache.map.len(), cache.capacity, cache.evictions)
        };
        let (in_flight, admission_capacity) = match &shard.admission.gate {
            Some(gate) => (gate.in_flight(), gate.limit()),
            None => (0, 0),
        };
        let engine = shard.engine();
        let ip = engine.tree().ip();
        let obj = ip
            .object_index()
            .map(|idx| idx.index_stats())
            .unwrap_or_default();
        Ok(ShardStats {
            venue,
            epoch,
            version,
            cached_entries,
            cache_capacity,
            evictions,
            in_flight,
            admission_capacity,
            shed: shard.admission.shed.load(Ordering::Relaxed),
            admission_timeouts: shard.admission.timeouts.load(Ordering::Relaxed),
            replication_lag: shard
                .leader_version
                .load(Ordering::Acquire)
                .saturating_sub(version),
            degraded: shard.degraded_reason().map(|r| r.to_string()),
            object_leaf_builds: obj.leaf_builds,
            object_leaf_touches: obj.leaf_touches,
            object_compactions: obj.compactions,
            live_objects: obj.live,
            object_slots: obj.slots,
            leaf_grid_builds: ip.leaf_grid_builds(),
        })
    }

    /// Gather every registered instrument plus the service- and
    /// per-venue observability values into the wire-facing
    /// [`indoor_model::metrics::MetricsSnapshot`] (encoded by
    /// `indoor_model::metrics::encode_text`, served by `NetServer` as a
    /// `MetricsText` frame). Gauges are appended directly from live
    /// state — never resident in the registry — so a snapshot always
    /// reflects this instant and a removed venue leaves no stale series.
    pub fn metrics_snapshot(&self) -> indoor_model::metrics::MetricsSnapshot {
        use crate::telemetry::InstrumentSnapshot;
        use indoor_model::metrics::{MetricValue, Series};
        let mut series: Vec<Series> = self
            .registry
            .gather()
            .into_iter()
            .map(|s| Series {
                name: s.name.to_string(),
                help: s.help.to_string(),
                labels: s.labels,
                value: match s.value {
                    InstrumentSnapshot::Counter(v) => MetricValue::Counter(v),
                    InstrumentSnapshot::Gauge(v) => MetricValue::Gauge(v as f64),
                    InstrumentSnapshot::Histogram(h) => MetricValue::Histogram {
                        buckets: h.cumulative_buckets(),
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                    },
                },
            })
            .collect();
        let mut push =
            |name: &str, help: &str, labels: Vec<(String, String)>, value: MetricValue| {
                series.push(Series {
                    name: name.to_string(),
                    help: help.to_string(),
                    labels,
                    value,
                });
            };
        let stats = self.stats();
        push(
            "indoor_venues",
            "Registered venues",
            vec![],
            MetricValue::Gauge(stats.venues as f64),
        );
        push(
            "indoor_deltas_absorbed_total",
            "Object deltas absorbed service-wide",
            vec![],
            MetricValue::Counter(stats.deltas_absorbed),
        );
        push(
            "indoor_degraded_venues",
            "Venues in read-only degraded mode",
            vec![],
            MetricValue::Gauge(stats.degraded_venues as f64),
        );
        for k in stats.kinds {
            let kl = vec![("kind".to_string(), k.kind.label().to_string())];
            push(
                "indoor_queries_total",
                "Requests answered, hits and misses alike",
                kl.clone(),
                MetricValue::Counter(k.queries),
            );
            push(
                "indoor_cache_hits_total",
                "Requests answered from the result cache",
                kl.clone(),
                MetricValue::Counter(k.cache_hits),
            );
            push(
                "indoor_latency_ns_total",
                "Cumulative serving wall time (ns)",
                kl,
                MetricValue::Counter(k.latency_ns),
            );
        }
        for venue in self.venues() {
            let Ok(vs) = self.venue_stats(venue) else {
                continue; // removed mid-walk
            };
            let vl = vec![("venue".to_string(), venue.index().to_string())];
            let gauges: [(&str, &str, f64); 9] = [
                ("indoor_shard_epoch", "Rebuild epoch", vs.epoch as f64),
                (
                    "indoor_shard_version",
                    "Object-set version (the WAL LSN)",
                    vs.version as f64,
                ),
                (
                    "indoor_cached_entries",
                    "Live result-cache entries",
                    vs.cached_entries as f64,
                ),
                (
                    "indoor_cache_capacity",
                    "Result-cache capacity",
                    vs.cache_capacity as f64,
                ),
                (
                    "indoor_in_flight",
                    "Admitted in-flight query weight",
                    vs.in_flight as f64,
                ),
                (
                    "indoor_admission_capacity",
                    "Admission capacity, 0 = unbounded",
                    vs.admission_capacity as f64,
                ),
                (
                    "indoor_replication_lag",
                    "Follower applied-LSN gap behind the leader",
                    vs.replication_lag as f64,
                ),
                (
                    "indoor_degraded",
                    "1 when the shard is read-only degraded",
                    if vs.degraded.is_some() { 1.0 } else { 0.0 },
                ),
                (
                    "indoor_live_objects",
                    "Live objects in the shard's index",
                    vs.live_objects as f64,
                ),
            ];
            for (name, help, v) in gauges {
                push(name, help, vl.clone(), MetricValue::Gauge(v));
            }
            let counters: [(&str, &str, u64); 6] = [
                (
                    "indoor_cache_evictions_total",
                    "Clock (second-chance) evictions",
                    vs.evictions,
                ),
                (
                    "indoor_shed_total",
                    "Requests shed at the admission gate",
                    vs.shed,
                ),
                (
                    "indoor_admission_timeouts_total",
                    "Requests timed out waiting at the admission gate",
                    vs.admission_timeouts,
                ),
                (
                    "indoor_object_leaf_builds_total",
                    "Object-index leaf pages built",
                    vs.object_leaf_builds,
                ),
                (
                    "indoor_object_compactions_total",
                    "Object-index compaction passes",
                    vs.object_compactions,
                ),
                (
                    "indoor_leaf_grid_builds_total",
                    "Leaf door-grids built (lazy; bounded by the leaf count)",
                    vs.leaf_grid_builds,
                ),
            ];
            for (name, help, v) in counters {
                push(name, help, vl.clone(), MetricValue::Counter(v));
            }
        }
        indoor_model::metrics::MetricsSnapshot { series }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_model::ObjectId;
    use indoor_synth::{random_venue, workload};

    fn service_with_one_venue(seed: u64) -> (IndoorService, VenueId, Arc<Venue>) {
        let venue = Arc::new(random_venue(seed));
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: workload::place_objects(&venue, 12, seed ^ 0x7),
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        (service, id, venue)
    }

    #[test]
    fn unknown_venue_is_an_error() {
        let (service, id, venue) = service_with_one_venue(21);
        let q = workload::query_points(&venue, 1, 3)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        assert!(service.execute(id, &req).is_ok());
        let bogus = VenueId(99);
        assert_eq!(
            service.execute(bogus, &req),
            Err(ServiceError::UnknownVenue(bogus))
        );
        let batch = service.execute_batch(&[(bogus, req.clone()), (id, req)]);
        assert_eq!(batch[0], Err(ServiceError::UnknownVenue(bogus)));
        assert!(batch[1].is_ok());
    }

    #[test]
    fn cache_hits_are_counted_per_kind() {
        let (service, id, venue) = service_with_one_venue(22);
        let q = workload::query_points(&venue, 1, 5)[0];
        let knn = QueryRequest::Knn { q, k: 3 };
        let range = QueryRequest::Range { q, radius: 70.0 };
        for _ in 0..3 {
            service.execute(id, &knn).unwrap();
        }
        service.execute(id, &range).unwrap();
        let stats = service.stats();
        assert_eq!(stats.kind(QueryKind::Knn).queries, 3);
        assert_eq!(stats.kind(QueryKind::Knn).cache_hits, 2);
        assert_eq!(stats.kind(QueryKind::Range).queries, 1);
        assert_eq!(stats.kind(QueryKind::Range).cache_hits, 0);
        assert_eq!(stats.cached_entries, 2);
        assert_eq!(stats.cache_capacity, DEFAULT_CACHE_CAPACITY);
        assert!((stats.kind(QueryKind::Knn).hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.venues, 1);
        // Unbounded shard: no admission gauges.
        assert_eq!(stats.admission_capacity, 0);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn metrics_snapshot_encodes_clean_and_retires_removed_venues() {
        let prev = crate::telemetry::set_sampling(true);
        let (service, id, venue) = service_with_one_venue(27);
        let q = workload::query_points(&venue, 1, 4)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        service.execute(id, &req).unwrap();
        service.execute(id, &req).unwrap(); // cache hit
        let text = indoor_model::metrics::encode_text(&service.metrics_snapshot());
        let errors = indoor_model::metrics::lint_text(&text);
        assert!(errors.is_empty(), "{errors:?}\n{text}");
        for needle in [
            "indoor_query_latency_us_bucket{",
            "indoor_phase_descent_us",
            "indoor_traced_queries_total",
            "indoor_venues 1",
            "indoor_cache_hits_total{kind=\"knn\"} 1",
            "indoor_leaf_grid_builds_total",
            "indoor_live_objects",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // Removing the venue retires every series it labelled.
        service.remove_venue(id).unwrap();
        let text = indoor_model::metrics::encode_text(&service.metrics_snapshot());
        assert!(
            !text.contains("venue=\""),
            "stale venue-labelled series:\n{text}"
        );
        crate::telemetry::set_sampling(prev);
    }

    #[test]
    fn batch_matches_per_slot_execute() {
        let (service, id, venue) = service_with_one_venue(23);
        let points = workload::query_points(&venue, 6, 9);
        let pairs = workload::query_pairs(&venue, 3, 10);
        let mut reqs: Vec<(VenueId, QueryRequest)> = Vec::new();
        for q in &points {
            reqs.push((id, QueryRequest::Knn { q: *q, k: 2 }));
            reqs.push((
                id,
                QueryRequest::Range {
                    q: *q,
                    radius: 90.0,
                },
            ));
        }
        for (s, t) in &pairs {
            reqs.push((id, QueryRequest::ShortestDistance { s: *s, t: *t }));
            reqs.push((id, QueryRequest::ShortestPath { s: *s, t: *t }));
        }
        let got = service.execute_batch(&reqs);
        for (slot, (venue, req)) in reqs.iter().enumerate() {
            assert_eq!(
                got[slot].as_ref().unwrap(),
                &service.execute(*venue, req).unwrap(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn remove_venue_stops_routing_and_keeps_ids_stable() {
        let (service, id_a, venue) = service_with_one_venue(24);
        let id_b = service
            .add_venue(
                Arc::new(random_venue(25)),
                ShardConfig {
                    threads: 1,
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        assert_eq!(service.venues(), vec![id_a, id_b]);

        service.remove_venue(id_a).unwrap();
        assert_eq!(service.venue_count(), 1);
        assert_eq!(service.venues(), vec![id_b]);
        let q = workload::query_points(&venue, 1, 3)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        assert_eq!(
            service.execute(id_a, &req),
            Err(ServiceError::UnknownVenue(id_a))
        );
        assert_eq!(
            service.remove_venue(id_a),
            Err(ServiceError::UnknownVenue(id_a))
        );
        // Ids are never reused: a new venue gets a fresh slot.
        let id_c = service
            .add_venue(
                Arc::new(random_venue(26)),
                ShardConfig {
                    threads: 1,
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        assert_ne!(id_c, id_a);
        assert_eq!(service.venues(), vec![id_b, id_c]);
    }

    #[test]
    fn clock_cache_evicts_and_counts() {
        let mut cache = ClockCache::new(2);
        let venue = random_venue(3);
        let points = workload::query_points(&venue, 4, 1);
        let reqs: Vec<QueryRequest> = points
            .iter()
            .map(|&q| QueryRequest::Knn { q, k: 1 })
            .collect();
        let resp = QueryResponse::Knn(Vec::new());
        cache.insert(reqs[0].clone(), 0, resp.clone());
        cache.insert(reqs[1].clone(), 0, resp.clone());
        assert_eq!(cache.map.len(), 2);
        assert_eq!(cache.evictions, 0);
        // Reference req0 so the clock spares it and evicts req1.
        assert!(cache.probe(&reqs[0], 0).is_some());
        cache.insert(reqs[2].clone(), 0, resp.clone());
        assert_eq!(cache.map.len(), 2);
        assert_eq!(cache.evictions, 1);
        assert!(
            cache.probe(&reqs[0], 0).is_some(),
            "referenced entry survives"
        );
        assert!(cache.probe(&reqs[1], 0).is_none(), "victim evicted");
        assert!(cache.probe(&reqs[2], 0).is_some());
        // Stale stamp: present but never a hit; re-insert revives in place.
        assert!(cache.probe(&reqs[2], 1).is_none());
        cache.insert(reqs[2].clone(), 1, resp);
        assert_eq!(cache.map.len(), 2);
        assert!(cache.probe(&reqs[2], 1).is_some());
    }

    #[test]
    fn saturated_shard_sheds_with_typed_error_and_counts() {
        let venue = Arc::new(random_venue(31));
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: workload::place_objects(&venue, 8, 5),
                    admission: AdmissionConfig {
                        max_in_flight: 1,
                        policy: OverloadPolicy::Shed,
                    },
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        let q = workload::query_points(&venue, 1, 7)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        // Saturate the budget from outside, as a concurrent query would.
        let shard = service.shard(id).unwrap();
        let held = shard.admit(id, 1).unwrap();
        assert_eq!(
            service.execute(id, &req),
            Err(ServiceError::Overloaded {
                venue: id,
                in_flight: 1,
                limit: 1
            })
        );
        // A batch sheds its whole share with the same typed error.
        let batch = service.execute_batch(&[(id, req.clone()), (id, req.clone())]);
        assert!(matches!(batch[0], Err(ServiceError::Overloaded { .. })));
        assert!(matches!(batch[1], Err(ServiceError::Overloaded { .. })));
        let stats = service.stats();
        assert_eq!(stats.shed, 2); // one execute + one batch share
        assert_eq!(stats.in_flight, 1);
        assert_eq!(stats.admission_capacity, 1);
        drop(held);
        assert!(service.execute(id, &req).is_ok());
        assert_eq!(service.stats().in_flight, 0);
    }

    #[test]
    fn block_policy_times_out_with_typed_error() {
        let venue = Arc::new(random_venue(32));
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    admission: AdmissionConfig {
                        max_in_flight: 1,
                        policy: OverloadPolicy::Block {
                            timeout: Duration::from_millis(5),
                        },
                    },
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        let (s, t) = workload::query_pairs(&venue, 1, 8)[0];
        let shard = service.shard(id).unwrap();
        let held = shard.admit(id, 1).unwrap();
        assert_eq!(
            service.execute(id, &QueryRequest::ShortestDistance { s, t }),
            Err(ServiceError::Timeout {
                venue: id,
                in_flight: 1,
                limit: 1
            })
        );
        assert_eq!(service.stats().admission_timeouts, 1);
        drop(held);
        assert!(service
            .execute(id, &QueryRequest::ShortestDistance { s, t })
            .is_ok());
    }

    #[test]
    fn degraded_shard_serves_reads_and_refuses_mutations() {
        let (service, id, venue) = service_with_one_venue(33);
        let q = workload::query_points(&venue, 1, 4)[0];
        let req = QueryRequest::Knn { q, k: 2 };
        let before = service.execute(id, &req).unwrap();
        service.shard(id).unwrap().degrade("test-induced degrade");
        assert_eq!(
            service.degraded(id).unwrap().as_deref(),
            Some("test-induced degrade")
        );
        // Reads keep serving the last good snapshot...
        assert_eq!(service.execute(id, &req).unwrap(), before);
        // ...every mutation path is refused with the typed error...
        let err = service.update_objects(id, &[]).unwrap_err();
        assert!(matches!(err, ServiceError::Degraded(v, _) if v == id));
        assert!(matches!(
            service.attach_objects(id, &[]),
            Err(ServiceError::Degraded(..))
        ));
        assert!(matches!(
            service.update_keyword_objects(id, &[]),
            Err(ServiceError::Degraded(..))
        ));
        assert!(matches!(
            service.remove_venue(id),
            Err(ServiceError::Degraded(..))
        ));
        // ...the version never moved, and stats surface the state.
        assert_eq!(service.version(id).unwrap(), 0);
        assert_eq!(service.stats().degraded_venues, 1);
    }

    #[test]
    fn deltas_absorbed_counts_batch_sizes_not_batches() {
        let (service, id, venue) = service_with_one_venue(41);
        assert_eq!(service.stats().deltas_absorbed, 0);
        let spots = workload::place_objects(&venue, 4, 9);
        service
            .update_objects(
                id,
                &[
                    ObjectDelta::Move {
                        id: ObjectId(0),
                        to: spots[0],
                    },
                    ObjectDelta::Move {
                        id: ObjectId(1),
                        to: spots[1],
                    },
                ],
            )
            .unwrap();
        assert_eq!(service.stats().deltas_absorbed, 2);
        // A rejected batch absorbs nothing.
        let bad = [ObjectDelta::Remove {
            id: ObjectId(9_999),
        }];
        assert!(service.update_objects(id, &bad).is_err());
        assert_eq!(service.stats().deltas_absorbed, 2);
        // Keyword updates count through the same gauge...
        service
            .update_keyword_objects(
                id,
                &[ObjectUpdate {
                    delta: ObjectDelta::Insert {
                        id: ObjectId(0),
                        at: spots[2],
                    },
                    labels: vec!["cafe".into()],
                }],
            )
            .unwrap();
        assert_eq!(service.stats().deltas_absorbed, 3);
        // ...and the history survives venue removal.
        service.remove_venue(id).unwrap();
        assert_eq!(service.stats().deltas_absorbed, 3);
    }

    #[test]
    fn venue_stats_snapshots_one_shard() {
        let venue = Arc::new(random_venue(42));
        let service = IndoorService::new();
        let id = service
            .add_venue(
                venue.clone(),
                ShardConfig {
                    threads: 1,
                    objects: workload::place_objects(&venue, 8, 5),
                    admission: AdmissionConfig {
                        max_in_flight: 2,
                        policy: OverloadPolicy::Shed,
                    },
                    ..ShardConfig::default()
                },
            )
            .unwrap();
        let s = service.venue_stats(id).unwrap();
        assert_eq!(s.venue, id);
        assert_eq!((s.epoch, s.version), (0, 0));
        assert_eq!(s.admission_capacity, 2);
        assert_eq!((s.in_flight, s.shed, s.admission_timeouts), (0, 0, 0));
        assert_eq!(s.degraded, None);

        let q = workload::query_points(&venue, 1, 6)[0];
        service.execute(id, &QueryRequest::Knn { q, k: 2 }).unwrap();
        service
            .update_objects(
                id,
                &[ObjectDelta::Move {
                    id: ObjectId(0),
                    to: workload::place_objects(&venue, 1, 11)[0],
                }],
            )
            .unwrap();
        let s = service.venue_stats(id).unwrap();
        assert_eq!(s.cached_entries, 1);
        assert_eq!((s.epoch, s.version), (0, 1));

        // Per-venue attribution: the saturated venue shows the shed, a
        // second venue stays clean, an unknown id is the typed error.
        let shard = service.shard(id).unwrap();
        let held = shard.admit(id, 2).unwrap();
        assert!(service.execute(id, &QueryRequest::Knn { q, k: 2 }).is_err());
        drop(held);
        assert_eq!(service.venue_stats(id).unwrap().shed, 1);
        let (other_service, other, _) = service_with_one_venue(43);
        assert_eq!(other_service.venue_stats(other).unwrap().shed, 0);
        assert!(matches!(
            service.venue_stats(VenueId::from(7u32)),
            Err(ServiceError::UnknownVenue(_))
        ));
    }
}
