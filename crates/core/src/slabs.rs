//! Implicit-layout hot data: SoA distance slabs and admissible
//! interpolated lower bounds (DESIGN.md §14).
//!
//! The tree's per-node [`crate::tree::DistMatrix`] values are repacked at
//! construction time into one contiguous f64 arena with cache-line-aligned
//! rows and a precomputed stride per node, so the kNN/range/ascent hot
//! loops read straight slices instead of chasing per-node boxes and
//! binary-searching door ids. On top of the slab sits the lower-bound
//! layer:
//!
//! * per-node `(min, max)` envelopes over the finite matrix entries;
//! * a piecewise-linear bound table over column ordinals (knot spacing
//!   [`PL_SPACING`], ~O(doors) memory) whose interpolated value never
//!   exceeds the column minimum — each knot is the minimum of the column
//!   minima over a window one full segment wider than the segments it
//!   bounds, so both endpoints of any segment already lower-bound every
//!   column inside it, and so does any convex combination;
//! * per child edge, the table evaluated over the child's access-door
//!   columns and cached as `kid_lb`: an O(1) admissible lower bound on
//!   the derived child vector used by k-best pruning.
//!
//! Every value in the arena is a bit-exact copy of the matrix entry it
//! shadows (padding lanes are `+inf`), which is what keeps slab-mode
//! answers byte-identical to the pointer walk. The `layout-audit` feature
//! turns every accessor into a checked access (in-bounds + 64-byte row
//! alignment); [`Slabs::audit`] additionally re-verifies the whole arena
//! against the source matrices.

use crate::tree::{Node, NodeIdx};
use indoor_graph::parallel::par_map;

/// f64 lanes per cache line; every slab row starts on a 64-byte boundary.
pub(crate) const ROW_ALIGN: usize = 8;

/// Knot spacing of the piecewise-linear bound table (column ordinals).
pub(crate) const PL_SPACING: usize = 8;

/// Per-node bound data computed in parallel before the arena is packed.
struct NodeBounds {
    env_min: f64,
    env_max: f64,
    /// PL knots at column ordinals `0, S, 2S, ...` (one past the last
    /// column, so every column sits in a closed segment).
    knots: Vec<f64>,
}

/// The implicit-layout companion of the node array. Node numbering is the
/// build's level-order arena (leaves first, root last), so a leaf-to-root
/// walk already ascends addresses; the slab preserves that order.
#[derive(Debug)]
pub struct Slabs {
    /// One arena for every node matrix; `base` indexes the first element
    /// that sits on a 64-byte boundary.
    arena: Vec<f64>,
    base: usize,
    /// Per node: arena offset (from `base`), row stride (cols rounded up
    /// to [`ROW_ALIGN`]), and logical extent.
    off: Vec<usize>,
    stride: Vec<u32>,
    n_rows: Vec<u32>,
    n_cols: Vec<u32>,
    /// SoA mirrors of the hot per-node scalars.
    pub(crate) parent: Vec<NodeIdx>,
    pub(crate) level: Vec<u32>,
    /// Position of each node in its parent's `children` list (0 for root).
    pub(crate) slot_in_parent: Vec<u16>,
    /// Kid-column CSR: for node `c`, `kid_cols[kid_cols_off[c]..kid_cols_off[c+1]]`
    /// are the column indices of `c`'s access doors in `parent(c)`'s
    /// matrix. Inner matrices have `rows == cols`, so the same run doubles
    /// as row indices. Empty for the root.
    kid_cols: Vec<u32>,
    kid_cols_off: Vec<u32>,
    /// For non-leaf node `n`, the column indices of `n.access_doors` in
    /// `n`'s own matrix (leaf matrices' columns *are* the access doors, so
    /// leaves get the identity run).
    own_cols: Vec<u32>,
    own_cols_off: Vec<u32>,
    /// PL bound table: knots per node, concatenated.
    pl_knots: Vec<f64>,
    pl_off: Vec<u32>,
    /// Per node `c`: the PL table of `parent(c)` evaluated over `c`'s
    /// access-door columns, minimised — an admissible lower bound on any
    /// derived child vector entry net of the base minimum. 0 for the root.
    kid_lb: Vec<f64>,
    /// Row-minimum CSR: for non-root node `c`,
    /// `kid_rowmin[off..][r] = min over c's parent-matrix columns of
    /// P(r, col)` — the exact per-row distance floor used by k-best
    /// pruning. Unlike the per-node column minima (which include the zero
    /// diagonal of every square inner matrix), a row's minimum over *one
    /// child's* columns is zero only where that row's door really is one
    /// of the child's access doors, so this bound has teeth. Empty run
    /// for the root.
    kid_rowmin: Vec<f64>,
    kid_rowmin_off: Vec<u32>,
    /// Per node: (min, max) over the finite matrix entries.
    env_min: Vec<f64>,
    env_max: Vec<f64>,
    /// Per venue door: its row index within each of its (≤ 2) leaves'
    /// matrices, aligned with the tree's `door_leaves`.
    pub(crate) door_rows: Vec<[u32; 2]>,
}

impl Slabs {
    pub(crate) fn build(nodes: &[Node], door_leaves: &[[NodeIdx; 2]], threads: usize) -> Slabs {
        let idxs: Vec<u32> = (0..nodes.len() as u32).collect();
        let bounds: Vec<NodeBounds> =
            par_map(&idxs, threads, |_, &i| node_bounds(&nodes[i as usize]));

        let mut off = Vec::with_capacity(nodes.len());
        let mut stride = Vec::with_capacity(nodes.len());
        let mut n_rows = Vec::with_capacity(nodes.len());
        let mut n_cols = Vec::with_capacity(nodes.len());
        let mut total = 0usize;
        for node in nodes {
            let m = &node.matrix;
            let (r, c) = (m.rows.len(), m.cols.len());
            let s = c.div_ceil(ROW_ALIGN) * ROW_ALIGN;
            off.push(total);
            stride.push(s as u32);
            n_rows.push(r as u32);
            n_cols.push(c as u32);
            total += r * s;
        }

        // Over-allocate so the first row can start on a cache line
        // wherever the allocator put us; padding lanes stay +inf.
        let mut arena = vec![f64::INFINITY; total + ROW_ALIGN];
        let base = {
            let addr = arena.as_ptr() as usize;
            (64 - addr % 64) % 64 / std::mem::size_of::<f64>()
        };
        for (i, node) in nodes.iter().enumerate() {
            let m = &node.matrix;
            let (r, c, s) = (m.rows.len(), m.cols.len(), stride[i] as usize);
            let start = base + off[i];
            for row in 0..r {
                arena[start + row * s..start + row * s + c]
                    .copy_from_slice(&m.dist[row * c..(row + 1) * c]);
            }
        }

        let mut parent = Vec::with_capacity(nodes.len());
        let mut level = Vec::with_capacity(nodes.len());
        let mut slot_in_parent = vec![0u16; nodes.len()];
        for (i, node) in nodes.iter().enumerate() {
            parent.push(node.parent);
            level.push(node.level);
            for (slot, &c) in node.children.iter().enumerate() {
                slot_in_parent[c as usize] = slot as u16;
                debug_assert_eq!(nodes[c as usize].parent, i as NodeIdx);
            }
        }

        let mut pl_knots = Vec::new();
        let mut pl_off = Vec::with_capacity(nodes.len() + 1);
        let mut env_min = Vec::with_capacity(nodes.len());
        let mut env_max = Vec::with_capacity(nodes.len());
        pl_off.push(0);
        for b in &bounds {
            pl_knots.extend_from_slice(&b.knots);
            pl_off.push(pl_knots.len() as u32);
            env_min.push(b.env_min);
            env_max.push(b.env_max);
        }

        // Column CSRs. `kid_cols` for node c lives under parent(c)'s
        // matrix; `own_cols` for node n under n's own matrix.
        let mut kid_cols = Vec::new();
        let mut kid_cols_off = Vec::with_capacity(nodes.len() + 1);
        let mut own_cols = Vec::new();
        let mut own_cols_off = Vec::with_capacity(nodes.len() + 1);
        kid_cols_off.push(0);
        own_cols_off.push(0);
        for node in nodes {
            if node.parent != crate::tree::NO_NODE {
                let pm = &nodes[node.parent as usize].matrix;
                for &a in &node.access_doors {
                    let col = pm.col_index(a).expect("child access door in parent matrix");
                    kid_cols.push(col as u32);
                }
            }
            kid_cols_off.push(kid_cols.len() as u32);
            for &a in &node.access_doors {
                let col = node
                    .matrix
                    .col_index(a)
                    .expect("own access door in own matrix");
                own_cols.push(col as u32);
            }
            own_cols_off.push(own_cols.len() as u32);
        }

        let mut slabs = Slabs {
            arena,
            base,
            off,
            stride,
            n_rows,
            n_cols,
            parent,
            level,
            slot_in_parent,
            kid_cols,
            kid_cols_off,
            own_cols,
            own_cols_off,
            pl_knots,
            pl_off,
            kid_lb: Vec::new(),
            kid_rowmin: Vec::new(),
            kid_rowmin_off: Vec::new(),
            env_min,
            env_max,
            door_rows: Vec::new(),
        };

        // kid_lb: the parent's interpolated table evaluated over the
        // child's access-door columns — cached here so the k-best pruning
        // check at query time is a single add + compare.
        let mut kid_lb = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            if node.parent == crate::tree::NO_NODE {
                kid_lb.push(0.0);
                continue;
            }
            let p = node.parent;
            let mut lb = f64::INFINITY;
            for &c in slabs.kid_cols_of(i as NodeIdx) {
                lb = lb.min(slabs.pl_bound(p, c as usize));
            }
            kid_lb.push(lb);
        }
        slabs.kid_lb = kid_lb;

        // Exact per-row floors toward each child's access doors.
        let mut kid_rowmin = Vec::new();
        let mut kid_rowmin_off = Vec::with_capacity(nodes.len() + 1);
        kid_rowmin_off.push(0);
        for (i, node) in nodes.iter().enumerate() {
            if node.parent != crate::tree::NO_NODE {
                let p = node.parent;
                for r in 0..slabs.n_rows[p as usize] as usize {
                    let row = slabs.row(p, r);
                    let mut m = f64::INFINITY;
                    for &c in slabs.kid_cols_of(i as NodeIdx) {
                        let v = row[c as usize];
                        if v < m {
                            m = v;
                        }
                    }
                    kid_rowmin.push(m);
                }
            }
            kid_rowmin_off.push(kid_rowmin.len() as u32);
        }
        slabs.kid_rowmin = kid_rowmin;
        slabs.kid_rowmin_off = kid_rowmin_off;

        let mut door_rows = vec![[0u32; 2]; door_leaves.len()];
        for (d, leaves) in door_leaves.iter().enumerate() {
            for (k, &l) in leaves.iter().enumerate() {
                if l == crate::tree::NO_NODE {
                    continue;
                }
                let row = nodes[l as usize]
                    .matrix
                    .row_index(indoor_model::DoorId(d as u32))
                    .expect("door is a row of its leaf matrix");
                door_rows[d][k] = row as u32;
            }
        }
        slabs.door_rows = door_rows;
        slabs
    }

    /// Row `r` of node `n`'s matrix as a contiguous slice.
    #[inline]
    pub(crate) fn row(&self, n: NodeIdx, r: usize) -> &[f64] {
        let i = n as usize;
        #[cfg(feature = "layout-audit")]
        {
            assert!(r < self.n_rows[i] as usize, "slab row {r} out of bounds");
        }
        let start = self.base + self.off[i] + r * self.stride[i] as usize;
        let row = &self.arena[start..start + self.n_cols[i] as usize];
        #[cfg(feature = "layout-audit")]
        {
            assert_eq!(
                row.as_ptr() as usize % 64,
                0,
                "slab row {r} of node {n} not cache-line-aligned"
            );
        }
        row
    }

    /// Column indices of `c`'s access doors in its parent's matrix (rows
    /// double as cols for inner matrices). Empty for the root.
    #[inline]
    pub(crate) fn kid_cols_of(&self, c: NodeIdx) -> &[u32] {
        let i = c as usize;
        &self.kid_cols[self.kid_cols_off[i] as usize..self.kid_cols_off[i + 1] as usize]
    }

    /// Column indices of `n`'s own access doors in `n`'s matrix.
    #[inline]
    pub(crate) fn own_cols_of(&self, n: NodeIdx) -> &[u32] {
        let i = n as usize;
        &self.own_cols[self.own_cols_off[i] as usize..self.own_cols_off[i + 1] as usize]
    }

    /// Row index of door `d` in leaf `leaf`'s matrix (must be one of the
    /// door's leaves).
    #[inline]
    pub(crate) fn leaf_row_of(&self, door_leaves: &[[NodeIdx; 2]], leaf: NodeIdx, d: u32) -> u32 {
        let pair = door_leaves[d as usize];
        if pair[0] == leaf {
            self.door_rows[d as usize][0]
        } else {
            #[cfg(feature = "layout-audit")]
            assert_eq!(pair[1], leaf, "door {d} not in leaf {leaf}");
            self.door_rows[d as usize][1]
        }
    }

    /// The interpolated lower bound for column `c` of node `n`'s matrix:
    /// admissible (`pl_bound(n, c) <= M_n(r, c)` for every row `r`).
    #[inline]
    pub fn pl_bound(&self, n: NodeIdx, c: usize) -> f64 {
        let i = n as usize;
        let knots = &self.pl_knots[self.pl_off[i] as usize..self.pl_off[i + 1] as usize];
        let j = c / PL_SPACING;
        let (a, b) = (knots[j], knots[j + 1]);
        if !a.is_finite() || !b.is_finite() {
            return a.min(b);
        }
        let t = (c - j * PL_SPACING) as f64 / PL_SPACING as f64;
        a + t * (b - a)
    }

    /// Cached `min over c's columns of pl_bound(parent(c), col)` — the
    /// O(1) admissible bound consumed by k-best pruning. 0 for the root.
    #[inline]
    pub fn kid_lb(&self, c: NodeIdx) -> f64 {
        self.kid_lb[c as usize]
    }

    /// Per-row floors toward `c`'s access doors within `parent(c)`'s
    /// matrix: `kid_rowmin_of(c)[r]` never exceeds `P(r, col)` for any of
    /// `c`'s columns. Folding `base[bi] + rowmin[row(bi)]` over a base
    /// therefore lower-bounds every entry of the derived child vector.
    /// Empty for the root.
    #[inline]
    pub fn kid_rowmin_of(&self, c: NodeIdx) -> &[f64] {
        let i = c as usize;
        &self.kid_rowmin[self.kid_rowmin_off[i] as usize..self.kid_rowmin_off[i + 1] as usize]
    }

    /// `(min, max)` over the finite entries of node `n`'s matrix
    /// (`(inf, -inf)` when the matrix is empty or all-infinite).
    #[inline]
    pub fn envelope(&self, n: NodeIdx) -> (f64, f64) {
        (self.env_min[n as usize], self.env_max[n as usize])
    }

    pub fn size_bytes(&self) -> usize {
        self.arena.len() * 8
            + self.off.len() * std::mem::size_of::<usize>()
            + (self.stride.len() + self.n_rows.len() + self.n_cols.len()) * 4
            + self.parent.len() * 4
            + self.level.len() * 4
            + self.slot_in_parent.len() * 2
            + (self.kid_cols.len() + self.kid_cols_off.len()) * 4
            + (self.own_cols.len() + self.own_cols_off.len()) * 4
            + self.pl_knots.len() * 8
            + self.pl_off.len() * 4
            + self.kid_lb.len() * 8
            + self.kid_rowmin.len() * 8
            + self.kid_rowmin_off.len() * 4
            + (self.env_min.len() + self.env_max.len()) * 8
            + self.door_rows.len() * 8
    }

    /// Full structural audit: every row in-bounds, cache-line-aligned, and
    /// bit-identical to the matrix entry it shadows; every CSR column
    /// valid; every envelope bracketing; every PL value admissible.
    /// Cheap enough to run from tests regardless of features.
    pub(crate) fn audit(&self, nodes: &[Node]) {
        assert_eq!(self.off.len(), nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let n = i as NodeIdx;
            let m = &node.matrix;
            let cols = m.cols.len();
            assert_eq!(self.n_rows[i] as usize, m.rows.len());
            assert_eq!(self.n_cols[i] as usize, cols);
            assert!(self.stride[i] as usize >= cols);
            assert_eq!(self.stride[i] as usize % ROW_ALIGN, 0);
            let (emin, emax) = self.envelope(n);
            let mut saw_finite = false;
            for r in 0..m.rows.len() {
                let row = self.row(n, r);
                assert_eq!(row.as_ptr() as usize % 64, 0, "row unaligned");
                for (c, slab_v) in row.iter().enumerate().take(cols) {
                    let v = m.at(r, c);
                    assert_eq!(v.to_bits(), slab_v.to_bits(), "slab value drift");
                    if v.is_finite() {
                        saw_finite = true;
                        assert!(emin <= v && v <= emax, "envelope does not bracket");
                    }
                }
            }
            if !saw_finite {
                assert!(emin.is_infinite() && emax.is_infinite());
            }
            // PL admissibility against true column minima.
            for c in 0..cols {
                let colmin = (0..m.rows.len())
                    .map(|r| m.at(r, c))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    self.pl_bound(n, c) <= colmin,
                    "PL bound {} exceeds column minimum {} (node {n}, col {c})",
                    self.pl_bound(n, c),
                    colmin
                );
            }
            for &c in self.own_cols_of(n) {
                assert!((c as usize) < cols);
            }
            if node.parent != crate::tree::NO_NODE {
                let pm = &nodes[node.parent as usize].matrix;
                let run = self.kid_cols_of(n);
                assert_eq!(run.len(), node.access_doors.len());
                for (&c, &a) in run.iter().zip(&node.access_doors) {
                    assert_eq!(pm.cols[c as usize], a);
                }
                // kid_lb lower-bounds every entry in the child's columns.
                for &c in run {
                    for r in 0..pm.rows.len() {
                        assert!(self.kid_lb(n) <= pm.at(r, c as usize));
                    }
                }
                // kid_rowmin is the exact per-row minimum (not merely a
                // bound): the fold in the k-best prune relies on it being
                // one of the row's true values.
                let rowmin = self.kid_rowmin_of(n);
                assert_eq!(rowmin.len(), pm.rows.len());
                for (r, &rm) in rowmin.iter().enumerate() {
                    let want = run
                        .iter()
                        .map(|&c| pm.at(r, c as usize))
                        .fold(f64::INFINITY, f64::min);
                    assert_eq!(rm.to_bits(), want.to_bits(), "kid_rowmin drift");
                }
            }
        }
    }
}

/// Envelope + PL knots of one node's matrix. Knot `j` (at ordinal `j*S`)
/// is the minimum column-minimum over the window `[j*S - S, j*S + S)`: one
/// full segment to either side, so both knots bounding any segment already
/// lower-bound every column inside it.
fn node_bounds(node: &Node) -> NodeBounds {
    let m = &node.matrix;
    let cols = m.cols.len();
    let mut colmin = vec![f64::INFINITY; cols];
    let mut env_min = f64::INFINITY;
    let mut env_max = f64::NEG_INFINITY;
    for r in 0..m.rows.len() {
        for (c, cm) in colmin.iter_mut().enumerate() {
            let v = m.at(r, c);
            if v < *cm {
                *cm = v;
            }
            if v.is_finite() {
                if v < env_min {
                    env_min = v;
                }
                if v > env_max {
                    env_max = v;
                }
            }
        }
    }
    let n_knots = cols.div_ceil(PL_SPACING) + 1;
    let mut knots = Vec::with_capacity(n_knots.max(2));
    for j in 0..n_knots.max(2) {
        let lo = (j * PL_SPACING).saturating_sub(PL_SPACING);
        let hi = ((j + 1) * PL_SPACING).min(cols);
        let v = colmin[lo.min(cols)..hi]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        knots.push(v);
    }
    NodeBounds {
        env_min,
        env_max,
        knots,
    }
}
