//! Measured index statistics: the quantities of the paper's Table 1
//! complexity analysis (ρ, f, M, D, α) plus storage footprints.

use crate::tree::IpTree;

/// Structural statistics of a built tree. The paper reports ρ (average
/// access doors per node) and f (average fanout) below 4 on all real data
/// sets, with maxima around 8; `experiments table1` prints these measured
/// values per dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    pub num_nodes: usize,
    /// M: number of leaf nodes.
    pub num_leaves: usize,
    /// Height (root level; leaves are level 1) — O(log_f M).
    pub height: u32,
    /// D: number of doors in the venue.
    pub num_doors: usize,
    /// ρ: average number of access doors per node.
    pub avg_access_doors: f64,
    pub max_access_doors: usize,
    /// f: average number of children per non-leaf node.
    pub avg_fanout: f64,
    /// α: average number of superior doors per partition.
    pub avg_superior_doors: f64,
    pub max_superior_doors: usize,
    /// Bytes held by distance matrices alone.
    pub matrix_bytes: usize,
    /// Full index footprint.
    pub total_bytes: usize,
}

impl TreeStats {
    pub fn compute(tree: &IpTree) -> TreeStats {
        let nodes = &tree.nodes;
        let num_nodes = nodes.len();
        let num_leaves = tree.num_leaves();
        let inner: Vec<_> = nodes.iter().filter(|n| !n.is_leaf()).collect();
        let avg_fanout = if inner.is_empty() {
            0.0
        } else {
            inner.iter().map(|n| n.children.len()).sum::<usize>() as f64 / inner.len() as f64
        };
        let avg_access_doors =
            nodes.iter().map(|n| n.access_doors.len()).sum::<usize>() as f64 / num_nodes as f64;
        let max_access_doors = nodes
            .iter()
            .map(|n| n.access_doors.len())
            .max()
            .unwrap_or(0);
        let sup = &tree.superior;
        let avg_superior_doors =
            sup.iter().map(Vec::len).sum::<usize>() as f64 / sup.len().max(1) as f64;
        let max_superior_doors = sup.iter().map(Vec::len).max().unwrap_or(0);
        TreeStats {
            num_nodes,
            num_leaves,
            height: tree.height(),
            num_doors: tree.venue.num_doors(),
            avg_access_doors,
            max_access_doors,
            avg_fanout,
            avg_superior_doors,
            max_superior_doors,
            matrix_bytes: nodes.iter().map(|n| n.matrix.size_bytes()).sum(),
            total_bytes: tree.size_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::VipTreeConfig;
    use crate::IpTree;
    use indoor_synth::presets;
    use std::sync::Arc;

    #[test]
    fn paper_scale_properties_hold_on_mc() {
        // The paper: ρ and f average < 4, max superior doors ~<= 8, even
        // for hallways with > 100 doors.
        let venue = Arc::new(presets::melbourne_central().build());
        let tree = IpTree::build(venue, &VipTreeConfig::default()).unwrap();
        let s = TreeStats::compute(&tree);
        assert!(s.num_leaves >= 2);
        assert!(
            s.avg_access_doors < 8.0,
            "avg access doors {}",
            s.avg_access_doors
        );
        assert!(
            s.avg_superior_doors < 8.0,
            "avg superior {}",
            s.avg_superior_doors
        );
        assert!(s.avg_fanout >= 2.0, "fanout {}", s.avg_fanout);
        assert!(s.height >= 2);
        assert!(s.total_bytes > s.matrix_bytes);
    }
}
