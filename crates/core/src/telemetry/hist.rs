//! Fixed-bucket log-linear latency histogram: lock-free recording via
//! per-bucket atomics, mergeable snapshots, rank-exact quantiles.
//!
//! Values are unsigned integers (the serving layer records microseconds).
//! Buckets follow the HDR scheme: each power-of-two octave above
//! `2^SUB_BITS` is split into `2^SUB_BITS` linear sub-buckets, so the
//! relative quantisation error is bounded by `2^-SUB_BITS` (12.5% at
//! `SUB_BITS = 3`) at every magnitude, and values below `2^SUB_BITS` are
//! recorded exactly. The whole `u64` range maps into [`N_BUCKETS`]
//! buckets — no clamping, no saturation.
//!
//! [`Histogram::record`] is one relaxed `fetch_add` on the value's bucket
//! plus a `fetch_add` on the sum and a `fetch_max` on the max: no locks,
//! no CAS loops, safe from any number of threads. [`HistSnapshot`] is the
//! read side: bucket counts copied out, mergeable across histograms
//! (shard × thread fan-in), with quantiles extracted by exact rank
//! selection over the bucket counts — p999 and max come from the same
//! data that fed p50, not from a sorted sample vector.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket bits per octave (8 sub-buckets per power of two).
pub const SUB_BITS: u32 = 3;

const SUB: usize = 1 << SUB_BITS;
const SUB_MASK: u64 = (SUB as u64) - 1;

/// Total buckets covering all of `u64`: indices `0..SUB` record values
/// below `2^SUB_BITS` exactly; each later run of `SUB` buckets covers one
/// octave.
pub const N_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB + SUB;

/// Bucket index of a value (total order preserving: `v <= w` implies
/// `index(v) <= index(w)`).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros(); // h >= SUB_BITS
    let octave = (h - SUB_BITS + 1) as usize;
    (octave << SUB_BITS) + ((v >> (h - SUB_BITS)) & SUB_MASK) as usize
}

/// Smallest value mapping into bucket `i` (exact inverse of
/// [`bucket_index`] on bucket boundaries).
#[inline]
pub(crate) fn bucket_low(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32;
    let sub = (i as u64) & SUB_MASK;
    (1u64 << (octave + SUB_BITS - 1)) + (sub << (octave - 1))
}

/// Largest value mapping into bucket `i` (the inclusive `le` bound of
/// Prometheus-style cumulative buckets).
#[inline]
pub(crate) fn bucket_high(i: usize) -> u64 {
    if i + 1 >= N_BUCKETS {
        u64::MAX
    } else {
        bucket_low(i + 1) - 1
    }
}

/// Lock-free log-linear histogram. See the module docs for the bucket
/// scheme; `Default` is an empty histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; N_BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.try_into().expect("N_BUCKETS atomics"),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Lock-free; callable concurrently from any number
    /// of threads.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Copy the current counts out. Concurrent recorders may land between
    /// bucket reads — each bucket is individually exact and monotone, so a
    /// snapshot race can only *miss* in-flight records, never corrupt.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; N_BUCKETS].into_boxed_slice();
        let mut count = 0u64;
        for (slot, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
            count += *slot;
        }
        HistSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Total values recorded so far (cheap; does not build a snapshot).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

/// A point-in-time copy of a [`Histogram`]: plain counts, mergeable,
/// queryable for rank-exact quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: Box<[u64]>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no recorded values.
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: vec![0u64; N_BUCKETS].into_boxed_slice(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping on overflow, like the recorder).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold another snapshot in (bucket-wise addition — the result is
    /// exactly the snapshot of a histogram that had seen both streams).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]` by exact rank selection: the
    /// smallest recorded magnitude `v` such that at least `ceil(q * count)`
    /// records are `<= v`. Reported as the lower bound of the selected
    /// bucket, so values that land on bucket boundaries (all values below
    /// `2^SUB_BITS`, and every power-of-two multiple of `2^-SUB_BITS`) are
    /// returned exactly; others are under-reported by at most 12.5%.
    /// Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_low(i);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// p999 shorthand.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Cumulative `(le, count)` pairs for text exposition: one pair per
    /// occupied bucket (upper bound inclusive), counts non-decreasing. The
    /// final implicit `+Inf` bucket is the total [`HistSnapshot::count`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            out.push((bucket_high(i), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts_on_lows() {
        for i in 0..N_BUCKETS {
            let low = bucket_low(i);
            assert_eq!(bucket_index(low), i, "bucket_low({i}) = {low} round-trip");
            if i > 0 {
                assert!(bucket_low(i) > bucket_low(i - 1));
            }
        }
        // Spot-check ordering across magnitudes, including u64::MAX.
        let probes = [0u64, 1, 7, 8, 9, 15, 16, 17, 1000, 1 << 40, u64::MAX];
        for w in probes.windows(2) {
            assert!(bucket_index(w[0]) <= bucket_index(w[1]));
        }
        assert!(bucket_index(u64::MAX) < N_BUCKETS);
    }

    #[test]
    fn small_values_are_exact_and_quantiles_rank_correctly() {
        let h = Histogram::new();
        for v in [1u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.max(), 7);
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.p50(), 3); // rank 4 of [1,1,2,3,4,5,6,7]
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.sum(), 29);
    }

    #[test]
    fn merge_equals_single_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 {
                a.record(v * 17)
            } else {
                b.record(v * 17)
            }
            all.record(v * 17);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn cumulative_buckets_are_nondecreasing_and_total() {
        let h = Histogram::new();
        for v in [3u64, 3, 900, 1_000_000, 12] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds strictly increase");
            assert!(w[0].1 <= w[1].1, "cumulative counts non-decreasing");
        }
        assert_eq!(cum.last().unwrap().1, s.count());
    }
}
