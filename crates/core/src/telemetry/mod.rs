//! Dependency-free telemetry kernel: lock-free counters, gauges and
//! log-linear latency histograms, a label-aware instrument [`Registry`],
//! the global sampling gate, and the per-query [`QueryTrace`] span state.
//!
//! # Design (DESIGN.md §15)
//!
//! Instruments are plain atomics — recording never locks, never
//! allocates, and is safe from any number of threads. The [`Registry`]
//! is the naming layer: `(name, sorted labels)` keys get-or-create
//! shared [`Arc`] instruments, so a shard and an exporter hold the same
//! counter without coordination. Reading is a [`Registry::gather`] walk
//! producing plain snapshots the serving layer turns into a
//! Prometheus-style text page (`indoor_model::metrics`).
//!
//! # The sampling gate and the trace sampler
//!
//! Per-query tracing costs a few guarded branches in the kernels; the
//! process-wide gate ([`set_sampling`] / [`sampling_enabled`]) turns it
//! on and off at runtime, and the `telemetry-off` cargo feature compiles
//! the guards down to constant `false` (proving the zero-cost-when-off
//! contract — the A/B bench cells in `query_bench` gate both sides).
//! The gate ships **enabled** by default: the enabled overhead is bounded
//! by `bench_check`'s on/off ratio gate, cheap enough to always-on.
//!
//! Two instrument classes hide behind the gate. **Always-on** series
//! (end-to-end latency, cache probe time) record on every request — one
//! atomic add against timestamps the serving path takes anyway.
//! **Sampled** series (the phase timers and hot-path counters of
//! [`QueryTrace`]) arm for one query in [`trace_interval`] per thread
//! ([`should_trace`]): wall-clock phase timing costs `Instant` reads per
//! tree level, too much to pay on every microsecond-scale query, and the
//! phase *distribution* is what the histograms exist for — 1-in-N of a
//! serving workload converges on the same shape. The first query on
//! every thread always traces, so tests and cold starts see phase data
//! deterministically.

mod hist;
mod trace;

pub use hist::{HistSnapshot, Histogram, N_BUCKETS, SUB_BITS};
pub use trace::QueryTrace;

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Sampling gate
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry-off"))]
static SAMPLING: AtomicBool = AtomicBool::new(true);
#[cfg(feature = "telemetry-off")]
static SAMPLING: AtomicBool = AtomicBool::new(false);

/// Whether per-query tracing is currently sampled. Constant `false` under
/// the `telemetry-off` feature (the load compiles out of guarded sites).
#[inline(always)]
pub fn sampling_enabled() -> bool {
    cfg!(not(feature = "telemetry-off")) && SAMPLING.load(Ordering::Relaxed)
}

/// Open or close the process-wide sampling gate, returning the previous
/// state. A no-op returning `false` under the `telemetry-off` feature.
pub fn set_sampling(on: bool) -> bool {
    if cfg!(feature = "telemetry-off") {
        return false;
    }
    SAMPLING.swap(on, Ordering::Relaxed)
}

/// 1-in-N per-thread sampling interval for full query traces.
static TRACE_INTERVAL: AtomicU64 = AtomicU64::new(32);

thread_local! {
    /// Queries dispatched by this thread since it started — the trace
    /// sampler's clock. Thread-local so sampling never contends, at the
    /// cost of per-thread (not global) 1-in-N cadence.
    static TRACE_TICK: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// The current full-trace sampling interval (1 = trace every query).
pub fn trace_interval() -> u64 {
    TRACE_INTERVAL.load(Ordering::Relaxed)
}

/// Set the full-trace sampling interval, returning the previous one.
/// Clamped to ≥ 1.
pub fn set_trace_interval(n: u64) -> u64 {
    TRACE_INTERVAL.swap(n.max(1), Ordering::Relaxed)
}

/// Whether the query being dispatched on this thread should carry a full
/// phase trace: the gate is open *and* this thread's dispatch counter
/// hits the 1-in-[`trace_interval`] cadence. Advances the counter, so
/// call it exactly once per query, at the dispatch point. The first call
/// on any thread returns `true` (when the gate is open) — cold paths and
/// single-shot tests always produce one trace.
#[inline]
pub fn should_trace() -> bool {
    if !sampling_enabled() {
        return false;
    }
    let n = TRACE_TICK.with(|c| {
        let n = c.get();
        c.set(n.wrapping_add(1));
        n
    });
    n.is_multiple_of(TRACE_INTERVAL.load(Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins point-in-time value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A shared handle to one registered instrument.
#[derive(Debug, Clone)]
pub enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// The read-side copy of one instrument, from [`Registry::gather`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstrumentSnapshot {
    Counter(u64),
    Gauge(u64),
    Histogram(HistSnapshot),
}

/// One named, labelled series in a [`Registry::gather`] walk.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub name: &'static str,
    pub help: &'static str,
    /// Sorted `(key, value)` label pairs (the registry key order).
    pub labels: Vec<(String, String)>,
    pub value: InstrumentSnapshot,
}

#[derive(Debug)]
struct Registered {
    help: &'static str,
    inst: Instrument,
}

/// Registry key: instrument name plus its sorted label pairs.
type SeriesKey = (&'static str, Vec<(String, String)>);

/// Named instruments keyed by `(name, sorted labels)` — e.g.
/// `indoor_query_latency_us{venue="3", kind="knn"}`. Get-or-create: two
/// callers asking for the same key share one instrument. Registering the
/// same key as a different instrument type panics (a naming bug, not a
/// runtime condition).
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<HashMap<SeriesKey, Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn key(name: &'static str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name, labels)
    }

    /// Get or create the counter `name{labels}`.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner
            .entry(Self::key(name, labels))
            .or_insert_with(|| Registered {
                help,
                inst: Instrument::Counter(Arc::new(Counter::new())),
            });
        match &entry.inst {
            Instrument::Counter(c) => c.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner
            .entry(Self::key(name, labels))
            .or_insert_with(|| Registered {
                help,
                inst: Instrument::Gauge(Arc::new(Gauge::new())),
            });
        match &entry.inst {
            Instrument::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Get or create the histogram `name{labels}`.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let mut inner = self.inner.lock().expect("registry lock");
        let entry = inner
            .entry(Self::key(name, labels))
            .or_insert_with(|| Registered {
                help,
                inst: Instrument::Histogram(Arc::new(Histogram::new())),
            });
        match &entry.inst {
            Instrument::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Snapshot every registered series, sorted by `(name, labels)` so the
    /// exposition page is stable across calls.
    pub fn gather(&self) -> Vec<SeriesSnapshot> {
        let inner = self.inner.lock().expect("registry lock");
        let mut out: Vec<SeriesSnapshot> = inner
            .iter()
            .map(|((name, labels), reg)| SeriesSnapshot {
                name,
                help: reg.help,
                labels: labels.clone(),
                value: match &reg.inst {
                    Instrument::Counter(c) => InstrumentSnapshot::Counter(c.get()),
                    Instrument::Gauge(g) => InstrumentSnapshot::Gauge(g.get()),
                    Instrument::Histogram(h) => InstrumentSnapshot::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        out
    }

    /// Drop every series carrying the exact label pair — venue retirement
    /// hygiene, so a removed venue's series stop being exported.
    pub fn remove_labeled(&self, key: &str, value: &str) {
        self.inner
            .lock()
            .expect("registry lock")
            .retain(|(_, labels), _| !labels.iter().any(|(k, v)| k == key && v == value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shares_instruments_by_key_and_gathers_sorted() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "help", &[("venue", "0"), ("kind", "knn")]);
        // Same key, different label order: same instrument.
        let b = reg.counter("t_total", "help", &[("kind", "knn"), ("venue", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        reg.gauge("t_gauge", "help", &[]).set(7);
        reg.histogram("t_us", "help", &[("venue", "0")]).record(5);
        let all = reg.gather();
        assert_eq!(all.len(), 3);
        let names: Vec<&str> = all.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["t_gauge", "t_total", "t_us"]);
        match &all[1].value {
            InstrumentSnapshot::Counter(v) => assert_eq!(*v, 3),
            other => panic!("expected counter, got {other:?}"),
        }
    }

    #[test]
    fn remove_labeled_retires_a_venues_series() {
        let reg = Registry::new();
        reg.counter("a_total", "h", &[("venue", "0")]);
        reg.counter("a_total", "h", &[("venue", "1")]);
        reg.gauge("b", "h", &[]);
        reg.remove_labeled("venue", "0");
        let all = reg.gather();
        assert_eq!(all.len(), 2);
        assert!(all
            .iter()
            .all(|s| !s.labels.contains(&("venue".into(), "0".into()))));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_on_one_key_panics() {
        let reg = Registry::new();
        reg.counter("same_name", "h", &[]);
        reg.gauge("same_name", "h", &[]);
    }

    #[test]
    fn sampling_gate_round_trips() {
        let prev = set_sampling(false);
        assert!(!sampling_enabled());
        #[cfg(not(feature = "telemetry-off"))]
        {
            set_sampling(true);
            assert!(sampling_enabled());
        }
        #[cfg(feature = "telemetry-off")]
        {
            set_sampling(true);
            assert!(!sampling_enabled(), "gate must stay shut when compiled out");
        }
        set_sampling(prev);
    }

    #[test]
    fn trace_sampler_honors_interval_per_thread() {
        // Fresh thread: deterministic tick starting at zero, unpolluted
        // by other tests dispatching queries concurrently.
        let prev = set_trace_interval(0);
        assert_eq!(trace_interval(), 1, "interval 0 would divide by zero");
        set_trace_interval(4);
        let picks: Vec<bool> = std::thread::spawn(|| {
            let was = set_sampling(true);
            let picks = (0..9).map(|_| should_trace()).collect();
            set_sampling(was);
            picks
        })
        .join()
        .expect("sampler thread");
        set_trace_interval(prev);
        #[cfg(not(feature = "telemetry-off"))]
        assert_eq!(
            picks,
            [true, false, false, false, true, false, false, false, true],
            "first call and every 4th after it trace"
        );
        #[cfg(feature = "telemetry-off")]
        assert!(
            picks.iter().all(|p| !p),
            "compiled-out builds never arm a trace"
        );
    }

    #[test]
    fn concurrent_histogram_records_merge_to_serial() {
        use std::sync::Arc;
        let serial = Histogram::new();
        let shared = Arc::new(Histogram::new());
        let values: Vec<u64> = (0..20_000u64).map(|i| (i * 2654435761) >> 16).collect();
        for &v in &values {
            serial.record(v);
        }
        std::thread::scope(|scope| {
            for chunk in values.chunks(values.len() / 8 + 1) {
                let shared = shared.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        shared.record(v);
                    }
                });
            }
        });
        assert_eq!(shared.snapshot(), serial.snapshot());
    }
}
