//! Per-query span state: phase timings and hot-path counters, owned by
//! the query scratch so tracing allocates nothing and takes no locks.
//!
//! A [`QueryTrace`] is armed by the engine's dispatch point when the
//! global sampling gate is open *and* the engine has somewhere to fold
//! the result; every instrumentation site in the kernels guards on
//! [`QueryTrace::active`], which compiles to constant `false` under the
//! `telemetry-off` feature — the branches (and the `Instant` reads behind
//! them) are dead-code-eliminated, so the disabled hot path is the
//! uninstrumented one, bit for bit and cycle for cycle.

use std::time::Instant;

/// Phase timings and hot-path counters of one query. Cleared by
/// [`QueryTrace::begin`] at dispatch; folded into the engine's histograms
/// after the answer is produced. See DESIGN.md §15 for what each phase
/// covers.
#[derive(Debug, Default)]
pub struct QueryTrace {
    /// Whether this query is being traced. Prefer [`QueryTrace::active`]
    /// in instrumentation guards — it folds in the compile-time kill
    /// switch.
    pub on: bool,
    /// Nanoseconds spent in the own-leaf door-grid fold (the exact-scan
    /// branch of `scan_leaf`), including a first-touch lazy grid build.
    pub leaf_fold_ns: u64,
    /// Nanoseconds spent draining and ordering the final k-best heap.
    pub heap_ns: u64,
    /// Frontier pushes in the branch-and-bound walk (kNN heap + range
    /// stack), including the root seed.
    pub nodes_pushed: u64,
    /// Children skipped by an admissible bound before their distance
    /// vector was derived.
    pub nodes_pruned: u64,
    /// Slab matrix rows streamed by child-vector derivation.
    pub slab_rows: u64,
    /// Accepted k-best heap insertions (candidates that improved the
    /// running top-k / range result).
    pub kbest_updates: u64,
}

impl QueryTrace {
    /// Arm (or disarm) the trace for one query, clearing all accumulators.
    #[inline]
    pub fn begin(&mut self, on: bool) {
        *self = QueryTrace {
            on: on && cfg!(not(feature = "telemetry-off")),
            ..QueryTrace::default()
        };
    }

    /// Whether instrumentation sites should record. Constant `false` under
    /// the `telemetry-off` feature, so guarded blocks compile out.
    #[inline(always)]
    pub fn active(&self) -> bool {
        cfg!(not(feature = "telemetry-off")) && self.on
    }

    /// A timestamp when tracing, `None` otherwise — the idiom for timing a
    /// phase: `let t = trace.start(); ...; trace.stop_leaf_fold(t);`.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.active() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Close a leaf-fold phase opened by [`QueryTrace::start`].
    #[inline]
    pub fn stop_leaf_fold(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.leaf_fold_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Close a heap-maintenance phase opened by [`QueryTrace::start`].
    #[inline]
    pub fn stop_heap(&mut self, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            self.heap_ns += t0.elapsed().as_nanos() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_clears_accumulators_and_respects_feature() {
        let mut t = QueryTrace {
            nodes_pushed: 9,
            leaf_fold_ns: 1,
            ..QueryTrace::default()
        };
        t.begin(true);
        assert_eq!(t.nodes_pushed, 0);
        assert_eq!(t.leaf_fold_ns, 0);
        #[cfg(not(feature = "telemetry-off"))]
        assert!(t.active());
        #[cfg(feature = "telemetry-off")]
        assert!(!t.active());
        t.begin(false);
        assert!(!t.active());
        assert!(t.start().is_none());
    }
}
