use indoor_model::{DoorId, PartitionId, Venue};
use std::sync::Arc;

/// Index of a node within an [`IpTree`]'s node array.
pub type NodeIdx = u32;

/// Sentinel for "no node".
pub const NO_NODE: NodeIdx = u32::MAX;

/// Sentinel for "no door" in next-hop matrices.
pub(crate) const NO_DOOR: u32 = u32::MAX;

/// Construction parameters for [`IpTree`] and [`crate::VipTree`].
#[derive(Debug, Clone)]
pub struct VipTreeConfig {
    /// Minimum degree `t` of Algorithm 1 — the minimum number of children
    /// per non-root node. The paper evaluates t ∈ {2, 10, 20, 60, 100}
    /// (Fig. 7) and uses t = 2 everywhere else.
    pub min_degree: usize,
    /// Disable the superior-door optimisation of §3.1.1 (ablation); all
    /// doors of the source partition are considered instead.
    pub use_superior_doors: bool,
    /// Worker threads for index construction (`0` = all available cores).
    ///
    /// Leaf matrices, per-level inner matrices, and the VIP per-door
    /// ancestor tables fan out over this many workers; the built index is
    /// bit-identical for every thread count (see DESIGN.md, "Parallel
    /// build determinism").
    pub threads: usize,
}

impl Default for VipTreeConfig {
    fn default() -> Self {
        VipTreeConfig {
            min_degree: 2,
            use_superior_doors: true,
            threads: 0,
        }
    }
}

impl VipTreeConfig {
    /// Builder-style override of the construction thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Errors during tree construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// `min_degree` must be at least 2.
    BadMinDegree(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadMinDegree(t) => write!(f, "min_degree must be >= 2, got {t}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A distance matrix attached to a tree node.
///
/// * Leaf nodes: `rows` = every door of the node, `cols` = its access
///   doors; entry `(d, a)` stores the global shortest distance `dist(d, a)`
///   and the next-hop door on the shortest path *from d to a* (§2.1.1).
/// * Non-leaf nodes: `rows == cols` = the union of the children's access
///   doors; entry `(di, dj)` stores `dist(di, dj)` and the first door of
///   that set on the shortest path from `di` to `dj`.
///
/// `next_hop` uses [`NO_DOOR`] for NULL entries (final edges).
#[derive(Debug, Clone)]
pub struct DistMatrix {
    pub rows: Vec<DoorId>,
    pub cols: Vec<DoorId>,
    pub dist: Box<[f64]>,
    pub next_hop: Box<[u32]>,
}

impl DistMatrix {
    #[inline]
    pub fn row_index(&self, d: DoorId) -> Option<usize> {
        self.rows.binary_search(&d).ok()
    }

    #[inline]
    pub fn col_index(&self, d: DoorId) -> Option<usize> {
        self.cols.binary_search(&d).ok()
    }

    #[inline]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.dist[row * self.cols.len() + col]
    }

    #[inline]
    pub fn hop_at(&self, row: usize, col: usize) -> Option<DoorId> {
        match self.next_hop[row * self.cols.len() + col] {
            NO_DOOR => None,
            d => Some(DoorId(d)),
        }
    }

    /// Distance between two doors if both are present (forward or, for
    /// rectangular leaf matrices, transposed).
    pub fn lookup_dist(&self, from: DoorId, to: DoorId) -> Option<f64> {
        if let (Some(r), Some(c)) = (self.row_index(from), self.col_index(to)) {
            return Some(self.at(r, c));
        }
        if let (Some(r), Some(c)) = (self.row_index(to), self.col_index(from)) {
            return Some(self.at(r, c));
        }
        None
    }

    pub fn size_bytes(&self) -> usize {
        self.rows.len() * 4 + self.cols.len() * 4 + self.dist.len() * 8 + self.next_hop.len() * 4
    }
}

/// One node of the IP-tree.
#[derive(Debug, Clone)]
pub struct Node {
    pub parent: NodeIdx,
    /// Children node indices; empty for leaves.
    pub children: Vec<NodeIdx>,
    /// 1 for leaves, increasing towards the root.
    pub level: u32,
    /// Access doors AD(N), sorted (§2.1.1 Definition 1).
    pub access_doors: Vec<DoorId>,
    /// Partitions contained in this leaf (empty for non-leaf nodes).
    pub partitions: Vec<PartitionId>,
    /// Every door of this leaf, sorted (empty for non-leaf nodes).
    pub doors: Vec<DoorId>,
    pub matrix: DistMatrix,
}

impl Node {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Index of `d` in `access_doors`.
    #[inline]
    pub fn ad_index(&self, d: DoorId) -> Option<usize> {
        self.access_doors.binary_search(&d).ok()
    }

    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Node>()
            + self.children.len() * 4
            + self.access_doors.len() * 4
            + self.partitions.len() * 4
            + self.doors.len() * 4
            + self.matrix.size_bytes()
    }
}

/// The Indoor Partitioning Tree (§2.1).
///
/// Beyond the node array, the tree keeps the lookup maps query processing
/// needs: partition → leaf, door → (≤ 2) leaves, per-door boundary flags
/// (is the door an access door of any leaf?), and per-partition superior
/// doors (§3.1.1 Definition 2).
#[derive(Debug)]
pub struct IpTree {
    pub(crate) venue: Arc<Venue>,
    pub(crate) config: VipTreeConfig,
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeIdx,
    /// Leaf node containing each partition.
    pub(crate) leaf_of_partition: Vec<NodeIdx>,
    /// The (at most two, deduplicated) leaves containing each door.
    pub(crate) door_leaves: Vec<[NodeIdx; 2]>,
    /// Whether each door is an access door of at least one leaf.
    pub(crate) boundary: Vec<bool>,
    /// Superior doors per partition (Definition 2).
    pub(crate) superior: Vec<Vec<DoorId>>,
    /// Dijkstra fallbacks taken during path decomposition (expected 0; see
    /// DESIGN.md on Algorithm 4 robustness).
    pub(crate) decompose_fallbacks: std::sync::atomic::AtomicU64,
    /// Engine pool for same-leaf queries and decomposition fallbacks (the
    /// paper also answers same-leaf queries with a D2D expansion). A pool
    /// rather than one mutexed engine, so concurrent queries never
    /// serialise on shared Dijkstra state.
    pub(crate) engines: indoor_graph::EnginePool,
    /// Scratch pool backing the single-query convenience APIs, so `knn`
    /// et al. reuse transient state across calls without the caller
    /// managing a [`crate::QueryScratch`].
    pub(crate) scratch: crate::exec::ScratchPool,
    /// Embedded object set for kNN/range queries (§3.4), if attached.
    ///
    /// Behind `RwLock<Arc<..>>` so object churn is a **swap**, not a tree
    /// mutation: queries clone the `Arc` once at query start (and keep
    /// serving the snapshot they started on), while
    /// [`IpTree::attach_objects`] / [`IpTree::apply_object_deltas`] build
    /// or patch a replacement off to the side and swap it in under `&self`
    /// — which is what lets a live multi-venue service absorb churn with
    /// no service-wide pause (see DESIGN.md, "Object deltas and the
    /// service version counter").
    pub(crate) objects: std::sync::RwLock<Option<std::sync::Arc<crate::objects::ObjectIndex>>>,
    /// Serialises object-set mutations (attach/delta) so concurrent
    /// updaters never lose each other's deltas; readers never take it.
    pub(crate) objects_update: std::sync::Mutex<()>,
    /// Object-snapshot generation: bumped (after the swap) by **every**
    /// mutation of `objects`, whoever triggers it — the stamp result
    /// caches key object answers by ([`IpTree::objects_generation`]).
    pub(crate) objects_gen: std::sync::atomic::AtomicU64,
    /// Implicit-layout companion: the node matrices repacked into one
    /// cache-line-aligned SoA arena plus the admissible lower-bound layer
    /// (DESIGN.md §14). Built once at construction; values are bit-exact
    /// copies of the matrices, so either layout answers identically.
    pub(crate) slabs: crate::slabs::Slabs,
    /// Per-leaf global door-to-door distance grid (DESIGN.md §14.4):
    /// turns the own-leaf exact scan from a per-query D2D expansion into
    /// one seed × row fold. Shared by both layouts, so flipping
    /// `hot_layout` stays byte-identical.
    pub(crate) leaf_grid: crate::leafdist::LeafGrid,
    /// Whether the query kernels walk the slab layout (default) or the
    /// original pointer-and-binary-search layout. Runtime-flippable so
    /// benches and equivalence tests compare both on one tree.
    pub(crate) hot_layout: std::sync::atomic::AtomicBool,
}

impl IpTree {
    #[inline]
    pub fn venue(&self) -> &Arc<Venue> {
        &self.venue
    }

    /// The construction parameters this tree was built with (persisted by
    /// service snapshots so recovery rebuilds an identical tree).
    #[inline]
    pub fn build_config(&self) -> &VipTreeConfig {
        &self.config
    }

    #[inline]
    pub fn node(&self, idx: NodeIdx) -> &Node {
        &self.nodes[idx as usize]
    }

    #[inline]
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Height of the tree (root level; leaves are level 1).
    pub fn height(&self) -> u32 {
        self.node(self.root).level
    }

    #[inline]
    pub fn leaf_of(&self, p: PartitionId) -> NodeIdx {
        self.leaf_of_partition[p.index()]
    }

    /// Whether door `d` is an access door of at least one leaf (a
    /// "boundary door"; §3.2's unqualified "access door").
    #[inline]
    pub fn is_boundary_door(&self, d: DoorId) -> bool {
        self.boundary[d.index()]
    }

    /// Superior doors of a partition (Definition 2), or every door when
    /// the optimisation is disabled.
    pub fn superior_doors(&self, p: PartitionId) -> &[DoorId] {
        if self.config.use_superior_doors {
            &self.superior[p.index()]
        } else {
            &self.venue.partition(p).doors
        }
    }

    /// Walk from `node` to the root, inclusive.
    pub fn ancestors(&self, node: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        let mut cur = node;
        let mut done = false;
        std::iter::from_fn(move || {
            if done {
                return None;
            }
            let out = cur;
            if cur == self.root {
                done = true;
            } else {
                cur = self.nodes[cur as usize].parent;
            }
            Some(out)
        })
    }

    /// Lowest common ancestor of two nodes (all leaves share one level, so
    /// lock-step parent walking suffices).
    pub fn lca(&self, a: NodeIdx, b: NodeIdx) -> NodeIdx {
        let (mut a, mut b) = (a, b);
        while self.node(a).level < self.node(b).level {
            a = self.node(a).parent;
        }
        while self.node(b).level < self.node(a).level {
            b = self.node(b).parent;
        }
        while a != b {
            a = self.node(a).parent;
            b = self.node(b).parent;
        }
        a
    }

    /// The child of `ancestor` on the path down to `descendant`
    /// (`descendant` must be a strict descendant).
    pub fn child_towards(&self, ancestor: NodeIdx, descendant: NodeIdx) -> NodeIdx {
        let mut cur = descendant;
        loop {
            let parent = self.node(cur).parent;
            if parent == ancestor {
                return cur;
            }
            debug_assert_ne!(parent, NO_NODE, "descendant not under ancestor");
            cur = parent;
        }
    }

    /// Pre-populate the embedded Dijkstra engine pool for `n` concurrent
    /// queriers, so a serving fleet's first wave of same-leaf queries
    /// does not pay the `O(doors)` engine allocation in-band.
    pub fn warm_engines(&self, n: usize) {
        self.engines.warm(n);
    }

    /// Number of Dijkstra fallbacks taken by path decomposition so far.
    pub fn decompose_fallback_count(&self) -> u64 {
        self.decompose_fallbacks
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Switch the query kernels between the implicit slab layout (default,
    /// `true`) and the original pointer walk. Both layouts answer
    /// byte-identically — see `tests/layout_equivalence.rs`.
    pub fn set_hot_layout(&self, slab: bool) {
        self.hot_layout
            .store(slab, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether queries currently walk the slab layout.
    #[inline]
    pub fn uses_hot_layout(&self) -> bool {
        self.hot_layout.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The implicit-layout slabs and lower-bound tables (read-only; used
    /// by the admissibility proptests and the `layout-audit` pass).
    #[inline]
    pub fn slabs(&self) -> &crate::slabs::Slabs {
        &self.slabs
    }

    /// Build every leaf door grid now instead of on first own-leaf scan —
    /// the eager mode audits and warm-start benches compare the lazy path
    /// against. Idempotent; already-built leaves are skipped.
    pub fn build_leaf_grid(&self) {
        self.leaf_grid
            .force_build(&self.venue, &self.nodes, self.config.threads);
    }

    /// Leaf door grids built so far, lazily or via
    /// [`IpTree::build_leaf_grid`] (the `indoor_leaf_grid_builds_total`
    /// telemetry counter).
    pub fn leaf_grid_builds(&self) -> u64 {
        self.leaf_grid.builds()
    }

    /// Re-verify the whole slab arena against the source matrices: every
    /// row in-bounds and cache-line-aligned, every value bit-identical,
    /// every bound admissible. Panics on violation. Forces any
    /// lazily-deferred leaf grids to build first, so the audit always
    /// covers the full grid.
    pub fn audit_layout(&self) {
        self.slabs.audit(&self.nodes);
        self.build_leaf_grid();
        self.leaf_grid.audit(&self.nodes);
    }

    /// Total bytes of index structure (Fig. 8(b)), including the implicit
    /// slab layout.
    pub fn size_bytes(&self) -> usize {
        self.nodes.iter().map(Node::size_bytes).sum::<usize>()
            + self.slabs.size_bytes()
            + self.leaf_grid.size_bytes()
            + self.leaf_of_partition.len() * 4
            + self.door_leaves.len() * 8
            + self.boundary.len()
            + self
                .superior
                .iter()
                .map(|s| s.len() * 4 + std::mem::size_of::<Vec<DoorId>>())
                .sum::<usize>()
    }
}
