//! VIP-Tree (§2.2, §3.1.2, §3.3): the IP-tree plus, for every door, the
//! materialised distances (and minimising chains) to the access doors of
//! all of its ancestor nodes.
//!
//! With the tables, `dist(s, d)` for an access door `d` of any ancestor is
//! `min over superior doors u of Partition(s): dist(s, u) + table[u](d)` —
//! two table lookups instead of an ascent, giving O(ρ²) shortest-distance
//! and O(ρ² + w) expected shortest-path cost (Table 1).

use crate::ascent::{Ascent, Provenance};
use crate::path::PartialEdge;
use crate::tree::{BuildError, IpTree, NodeIdx, VipTreeConfig, NO_NODE};
use indoor_model::{DoorId, IndoorPath, IndoorPoint, ObjectId, QueryStats, Venue};
use std::sync::Arc;

/// Sentinel argmin: the distance came straight from the leaf matrix row of
/// the door (the chain bottoms out at the leaf level).
const ARG_LEAF: u16 = u16::MAX;

/// One ancestor row of a door's table.
#[derive(Debug, Clone)]
struct TableNode {
    node: NodeIdx,
    /// The node the minimisation ran over (child of `node` on the door's
    /// chain); `NO_NODE` for the leaf row itself.
    prev: NodeIdx,
    /// Offset into `dists`/`args`.
    offset: u32,
}

/// Materialised ancestor distances of one door.
#[derive(Debug, Clone, Default)]
struct DoorTable {
    nodes: Vec<TableNode>,
    /// Concatenated rows, aligned with each node's access-door list.
    dists: Vec<f64>,
    /// Argmin index into `prev`'s access-door list (`ARG_LEAF` for leaf
    /// rows or entries lifted straight off the leaf matrix).
    args: Vec<u16>,
}

impl DoorTable {
    fn row(&self, node: NodeIdx) -> Option<(&TableNode, usize)> {
        self.nodes
            .iter()
            .find(|t| t.node == node)
            .map(|t| (t, t.offset as usize))
    }

    fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TableNode>()
            + self.dists.len() * 8
            + self.args.len() * 2
    }
}

/// The per-door tables repacked for the hot layout: every door's rows
/// concatenated into one f64 arena, with the row index sorted by node
/// index (the build's node arena is level-order, so ancestor walks probe
/// monotonically increasing entries). Distances are bit-exact copies of
/// [`DoorTable::dists`]; argmin replay for path recovery stays on the
/// original tables.
#[derive(Debug, Default)]
struct TableSlab {
    /// Per door: its run in `nodes`/`row_off` (`door_off[d]..door_off[d+1]`).
    door_off: Vec<u32>,
    /// Table-row owner nodes, sorted within each door's run.
    nodes: Vec<NodeIdx>,
    /// Aligned with `nodes`: the row's offset in `dists` (length = the
    /// node's access-door count, known to every caller).
    row_off: Vec<u32>,
    dists: Vec<f64>,
}

impl TableSlab {
    fn build(tables: &[DoorTable]) -> TableSlab {
        let mut slab = TableSlab {
            door_off: Vec::with_capacity(tables.len() + 1),
            ..TableSlab::default()
        };
        slab.door_off.push(0);
        let mut order: Vec<usize> = Vec::new();
        for table in tables {
            order.clear();
            order.extend(0..table.nodes.len());
            order.sort_unstable_by_key(|&k| table.nodes[k].node);
            for &k in &order {
                let tn = &table.nodes[k];
                let len = match table
                    .nodes
                    .iter()
                    .map(|t| t.offset)
                    .filter(|&o| o > tn.offset)
                    .min()
                {
                    Some(next) => (next - tn.offset) as usize,
                    None => table.dists.len() - tn.offset as usize,
                };
                slab.nodes.push(tn.node);
                slab.row_off.push(slab.dists.len() as u32);
                slab.dists
                    .extend_from_slice(&table.dists[tn.offset as usize..tn.offset as usize + len]);
            }
            slab.door_off.push(slab.nodes.len() as u32);
        }
        slab
    }

    /// Offset of door `d`'s row for `node` in `dists`, if materialised.
    #[inline]
    fn row_offset(&self, d: u32, node: NodeIdx) -> Option<usize> {
        let lo = self.door_off[d as usize] as usize;
        let hi = self.door_off[d as usize + 1] as usize;
        let k = self.nodes[lo..hi].binary_search(&node).ok()?;
        Some(self.row_off[lo + k] as usize)
    }

    fn size_bytes(&self) -> usize {
        self.door_off.len() * 4
            + self.nodes.len() * 4
            + self.row_off.len() * 4
            + self.dists.len() * 8
    }
}

/// The VIP-tree: an [`IpTree`] plus per-door ancestor tables.
#[derive(Debug)]
pub struct VipTree {
    ip: IpTree,
    tables: Vec<DoorTable>,
    slab: TableSlab,
}

impl VipTree {
    /// Build the IP-tree, then materialise the per-door tables (§2.2).
    pub fn build(venue: Arc<Venue>, config: &VipTreeConfig) -> Result<VipTree, BuildError> {
        let ip = IpTree::build(venue, config)?;
        Ok(Self::from_ip_tree(ip))
    }

    /// Materialise tables over an existing IP-tree.
    ///
    /// Every door's table depends only on the finished IP-tree, so the
    /// materialisation fans out over `ip.config.threads` workers (one
    /// table per door, written into its own slot — bit-identical to the
    /// serial pass for any thread count).
    pub fn from_ip_tree(ip: IpTree) -> VipTree {
        let n_doors = ip.venue.num_doors();
        let door_ids: Vec<u32> = (0..n_doors as u32).collect();
        let tables: Vec<DoorTable> =
            indoor_graph::parallel::par_map(&door_ids, ip.config.threads, |_, &d| {
                Self::door_table(&ip, d)
            });
        let slab = TableSlab::build(&tables);
        VipTree { ip, tables, slab }
    }

    /// Build the ancestor table of one door (§2.2).
    fn door_table(ip: &IpTree, d: u32) -> DoorTable {
        let door = DoorId(d);
        let mut table = DoorTable::default();
        for leaf in ip.door_leaves[d as usize] {
            if leaf == NO_NODE {
                continue;
            }
            // Leaf row: distances straight from the leaf matrix.
            if table.row(leaf).is_none() {
                let node = ip.node(leaf);
                let offset = table.dists.len() as u32;
                let row = node
                    .matrix
                    .row_index(door)
                    .expect("door is a row of its leaf matrix");
                for (ci, _) in node.access_doors.iter().enumerate() {
                    table.dists.push(node.matrix.at(row, ci));
                    table.args.push(ARG_LEAF);
                }
                table.nodes.push(TableNode {
                    node: leaf,
                    prev: NO_NODE,
                    offset,
                });
            }
            // Ascend to the root, minimising over the previous level.
            let mut cur = leaf;
            loop {
                let parent = ip.node(cur).parent;
                if parent == NO_NODE {
                    break;
                }
                if table.row(parent).is_some() {
                    break; // shared upper chain already materialised
                }
                let (_, prev_off) = table.row(cur).expect("chain built bottom-up");
                let pnode = ip.node(parent);
                let child_ads = &ip.node(cur).access_doors;
                let offset = table.dists.len() as u32;
                for &a in &pnode.access_doors {
                    let col = pnode.matrix.col_index(a).expect("parent AD in own matrix");
                    let mut best = f64::INFINITY;
                    let mut best_idx = ARG_LEAF;
                    for (bi, &b) in child_ads.iter().enumerate() {
                        let row = pnode
                            .matrix
                            .row_index(b)
                            .expect("child AD in parent matrix");
                        let cand = table.dists[prev_off + bi] + pnode.matrix.at(row, col);
                        if cand < best {
                            best = cand;
                            best_idx = bi as u16;
                        }
                    }
                    table.dists.push(best);
                    table.args.push(best_idx);
                }
                table.nodes.push(TableNode {
                    node: parent,
                    prev: cur,
                    offset,
                });
                cur = parent;
            }
        }
        table
    }

    /// Access to the underlying IP-tree (shared kNN/range machinery,
    /// statistics).
    #[inline]
    pub fn ip_tree(&self) -> &IpTree {
        &self.ip
    }

    /// Switch the query kernels between the implicit slab layout (default)
    /// and the original pointer walk — see [`IpTree::set_hot_layout`].
    pub fn set_hot_layout(&self, slab: bool) {
        self.ip.set_hot_layout(slab);
    }

    #[inline]
    pub fn venue(&self) -> &Arc<Venue> {
        self.ip.venue()
    }

    /// dist(door → access door `ad_idx` of ancestor `node`) from the
    /// materialised table.
    fn table_dist(&self, door: DoorId, node: NodeIdx, ad_idx: usize) -> f64 {
        match self.tables[door.index()].row(node) {
            Some((_, off)) => self.tables[door.index()].dists[off + ad_idx],
            None => f64::INFINITY,
        }
    }

    /// §3.1.2: shortest distance in O(ρ²) via table lookups.
    pub fn shortest_distance_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_with_stats(s, t, &mut QueryStats::default())
    }

    pub fn shortest_distance_with_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        let mut scratch = self.ip.scratch.checkout();
        self.shortest_distance_stats(s, t, &mut scratch, stats)
    }

    /// As [`VipTree::shortest_distance_points`] with caller-owned scratch.
    pub fn shortest_distance_in(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
    ) -> Option<f64> {
        self.shortest_distance_stats(s, t, scratch, &mut QueryStats::default())
    }

    pub(crate) fn shortest_distance_stats(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
        stats: &mut QueryStats,
    ) -> Option<f64> {
        stats.queries += 1;
        let ip = &self.ip;
        let leaf_s = ip.leaf_of(s.partition);
        let leaf_t = ip.leaf_of(t.partition);
        if leaf_s == leaf_t {
            return ip.same_leaf_route(s, t).map(|(d, _)| d);
        }
        stats.door_pairs +=
            (ip.superior_doors(s.partition).len() * ip.superior_doors(t.partition).len()) as u64;
        self.cross_leaf(s, t, leaf_s, leaf_t, scratch)
            .map(|r| r.dist)
    }

    /// §3.3: shortest path; the ascent chains come from the tables'
    /// argmins, everything else matches the IP-tree path algorithm.
    pub fn shortest_path_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let mut scratch = self.ip.scratch.checkout();
        self.shortest_path_in(s, t, &mut scratch)
    }

    /// As [`VipTree::shortest_path_points`] with caller-owned scratch.
    pub fn shortest_path_in(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        scratch: &mut crate::QueryScratch,
    ) -> Option<IndoorPath> {
        let ip = &self.ip;
        let leaf_s = ip.leaf_of(s.partition);
        let leaf_t = ip.leaf_of(t.partition);
        if leaf_s == leaf_t {
            let (length, doors) = ip.same_leaf_route(s, t)?;
            return Some(IndoorPath {
                source: *s,
                target: *t,
                doors,
                length,
            });
        }
        let r = self.cross_leaf(s, t, leaf_s, leaf_t, scratch)?;

        // Source chain: s → via_s → ... → di; target chain reversed.
        let mut seq: Vec<DoorId> = vec![r.via_s];
        for e in self.table_chain(r.via_s, r.ns, r.i) {
            let full = ip.expand(e.from, e.to, Some(e.ctx));
            debug_assert_eq!(full.first(), seq.last());
            seq.extend_from_slice(&full[1..]);
        }
        let di = ip.node(r.ns).access_doors[r.i];
        let dj = ip.node(r.nt).access_doors[r.j];
        if di != dj {
            let lca = ip.node(r.ns).parent;
            let full = ip.expand(di, dj, Some(lca));
            debug_assert_eq!(full.first(), seq.last());
            seq.extend_from_slice(&full[1..]);
        }
        let mut tail: Vec<DoorId> = vec![r.via_t];
        for e in self.table_chain(r.via_t, r.nt, r.j) {
            let full = ip.expand(e.from, e.to, Some(e.ctx));
            debug_assert_eq!(full.first(), tail.last());
            tail.extend_from_slice(&full[1..]);
        }
        tail.reverse();
        debug_assert_eq!(tail.first(), Some(&dj));
        seq.extend_from_slice(&tail[1..]);
        seq.dedup();

        Some(IndoorPath {
            source: *s,
            target: *t,
            doors: seq,
            length: r.dist,
        })
    }

    /// The minimising chain `door → ... → access door ad_idx of node`,
    /// as partial edges with their context nodes.
    fn table_chain(&self, door: DoorId, node: NodeIdx, ad_idx: usize) -> Vec<PartialEdge> {
        let ip = &self.ip;
        let table = &self.tables[door.index()];
        let mut edges: Vec<PartialEdge> = Vec::new();
        let mut cur = node;
        let mut idx = ad_idx;
        loop {
            let (tn, off) = table.row(cur).expect("chain node in table");
            let cur_door = ip.node(cur).access_doors[idx];
            match table.args[off + idx] {
                ARG_LEAF => {
                    // Leaf row: one edge door → cur_door in the leaf matrix.
                    if door != cur_door {
                        edges.push(PartialEdge {
                            from: door,
                            to: cur_door,
                            ctx: cur,
                        });
                    }
                    break;
                }
                arg => {
                    let prev = tn.prev;
                    let prev_door = ip.node(prev).access_doors[arg as usize];
                    if prev_door != cur_door {
                        edges.push(PartialEdge {
                            from: prev_door,
                            to: cur_door,
                            ctx: cur,
                        });
                    }
                    cur = prev;
                    idx = arg as usize;
                }
            }
        }
        edges.reverse();
        edges
    }

    fn cross_leaf(
        &self,
        s: &IndoorPoint,
        t: &IndoorPoint,
        leaf_s: NodeIdx,
        leaf_t: NodeIdx,
        scratch: &mut crate::QueryScratch,
    ) -> Option<CrossLeaf> {
        let ip = &self.ip;
        let venue = &*ip.venue;
        let lca = ip.lca(leaf_s, leaf_t);
        let ns = ip.child_towards(lca, leaf_s);
        let nt = ip.child_towards(lca, leaf_t);
        let lca_node = ip.node(lca);
        let ads = &ip.node(ns).access_doors;
        let adt = &ip.node(nt).access_doors;

        // dist(s, di) for di ∈ AD(Ns) via the superior doors' tables; keep
        // the argmin superior door for path recovery. The side buffers
        // come from the scratch, cleared and refilled per query.
        let slab_mode = ip.uses_hot_layout();
        let side = |p: &IndoorPoint,
                    n: NodeIdx,
                    ads: &[DoorId],
                    dists: &mut Vec<f64>,
                    vias: &mut Vec<DoorId>| {
            let sup = ip.superior_doors(p.partition);
            dists.clear();
            dists.resize(ads.len(), f64::INFINITY);
            vias.clear();
            vias.resize(ads.len(), DoorId(0));
            if slab_mode {
                // One table-slab row per superior door, swept contiguously
                // (same candidates and visit order as the pointer scan
                // below, so same bytes and argmins — see
                // `ascend_via_tables_into`).
                for &u in sup {
                    let Some(off) = self.slab.row_offset(u.0, n) else {
                        continue;
                    };
                    let du = p.distance_to_door(venue, u);
                    let row = &self.slab.dists[off..off + ads.len()];
                    for (i, d) in dists.iter_mut().enumerate() {
                        let cand = du + row[i];
                        if cand < *d {
                            *d = cand;
                            vias[i] = u;
                        }
                    }
                }
                return;
            }
            for (i, _) in ads.iter().enumerate() {
                for &u in sup {
                    let cand = p.distance_to_door(venue, u) + self.table_dist(u, n, i);
                    if cand < dists[i] {
                        dists[i] = cand;
                        vias[i] = u;
                    }
                }
            }
        };
        let crate::QueryScratch {
            sd_s: ds,
            sd_t: dt,
            via_s: vs,
            via_t: vt,
            ..
        } = scratch;
        side(s, ns, ads, ds, vs);
        side(t, nt, adt, dt, vt);

        let mut best = f64::INFINITY;
        let mut bi = usize::MAX;
        let mut bj = usize::MAX;
        if slab_mode {
            // Envelope early-exit over the LCA slab: a row whose floor
            // `(ds[i] + env_min) + dt_min` already reaches the incumbent
            // cannot improve it (floating-point rounding is monotone, so
            // the floor never exceeds any candidate as computed) and is
            // skipped without touching the matrix. Skips need `>=`,
            // updates `<`, so best and both argmins match the pointer
            // walk exactly.
            let kid_s = ip.slabs.kid_cols_of(ns);
            let kid_t = ip.slabs.kid_cols_of(nt);
            let (env_min, _) = ip.slabs.envelope(lca);
            let dt_min = dt
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(f64::INFINITY, f64::min);
            for (i, &dsi) in ds.iter().enumerate() {
                if !dsi.is_finite() || (dsi + env_min) + dt_min >= best {
                    continue;
                }
                let row = ip.slabs.row(lca, kid_s[i] as usize);
                for (j, &dtj) in dt.iter().enumerate() {
                    if !dtj.is_finite() {
                        continue;
                    }
                    let cand = dsi + row[kid_t[j] as usize] + dtj;
                    if cand < best {
                        best = cand;
                        bi = i;
                        bj = j;
                    }
                }
            }
        } else {
            for (i, &di) in ads.iter().enumerate() {
                if !ds[i].is_finite() {
                    continue;
                }
                let row = lca_node.matrix.row_index(di).expect("AD in LCA matrix");
                for (j, &dj) in adt.iter().enumerate() {
                    if !dt[j].is_finite() {
                        continue;
                    }
                    let col = lca_node.matrix.col_index(dj).expect("AD in LCA matrix");
                    let cand = ds[i] + lca_node.matrix.at(row, col) + dt[j];
                    if cand < best {
                        best = cand;
                        bi = i;
                        bj = j;
                    }
                }
            }
        }
        if !best.is_finite() {
            return None;
        }
        Some(CrossLeaf {
            dist: best,
            ns,
            nt,
            i: bi,
            j: bj,
            via_s: vs[bi],
            via_t: vt[bj],
        })
    }

    /// Emulates Algorithm 2 using the tables, for the shared kNN engine:
    /// distances from `p` to the access doors of every ancestor of its
    /// leaf, written into a reusable [`Ascent`] buffer.
    pub(crate) fn ascend_via_tables_into(
        &self,
        p: &IndoorPoint,
        target: NodeIdx,
        asc: &mut Ascent,
    ) {
        let ip = &self.ip;
        let venue = &*ip.venue;
        let sup = ip.superior_doors(p.partition);
        asc.clear();
        let mut cur = ip.leaf_of(p.partition);

        if ip.uses_hot_layout() {
            // Slab walk: per chain node, one binary-searched row per
            // superior door swept contiguously over the access-door
            // ordinals, with `p`'s distance to the door hoisted out of the
            // sweep — the pointer walk recomputes it and linear-scans the
            // table once per (access door, superior door) pair. Superior
            // doors are visited in the same order, updates are strictly
            // improving, so the argmin door (`via`) and every f64 match
            // the pointer walk bit for bit.
            loop {
                let node = ip.node(cur);
                let n_ads = node.access_doors.len();
                let step = asc.push_step(cur);
                step.dists.resize(n_ads, f64::INFINITY);
                step.prov
                    .resize(n_ads, Provenance::Source { via: DoorId(0) });
                for &u in sup {
                    let Some(off) = self.slab.row_offset(u.0, cur) else {
                        continue;
                    };
                    let du = p.distance_to_door(venue, u);
                    let row = &self.slab.dists[off..off + n_ads];
                    for (i, d) in step.dists.iter_mut().enumerate() {
                        let cand = du + row[i];
                        if cand < *d {
                            *d = cand;
                            step.prov[i] = Provenance::Source { via: u };
                        }
                    }
                }
                if cur == target {
                    return;
                }
                cur = node.parent;
                debug_assert_ne!(cur, NO_NODE);
            }
        }

        loop {
            let node = ip.node(cur);
            let step = asc.push_step(cur);
            for (i, _) in node.access_doors.iter().enumerate() {
                let mut best = f64::INFINITY;
                let mut via = DoorId(0);
                for &u in sup {
                    let cand = p.distance_to_door(venue, u) + self.table_dist(u, cur, i);
                    if cand < best {
                        best = cand;
                        via = u;
                    }
                }
                step.dists.push(best);
                step.prov.push(Provenance::Source { via });
            }
            if cur == target {
                break;
            }
            cur = node.parent;
            debug_assert_ne!(cur, NO_NODE);
        }
    }

    /// Attach an object set (shared kNN/range machinery of §3.4). A swap
    /// under `&self` — see [`IpTree::attach_objects`].
    pub fn attach_objects(&self, objects: &[IndoorPoint]) {
        self.ip.attach_objects(objects);
    }

    /// As [`VipTree::attach_objects`] with caller-assigned stable ids —
    /// see [`IpTree::attach_objects_with_ids`].
    pub fn attach_objects_with_ids(&self, objects: &[(ObjectId, IndoorPoint)]) {
        self.ip.attach_objects_with_ids(objects);
    }

    /// Absorb a batch of object deltas incrementally — see
    /// [`IpTree::apply_object_deltas`].
    pub fn apply_object_deltas(
        &self,
        deltas: &[indoor_model::ObjectDelta],
    ) -> Result<crate::objects::DeltaReport, indoor_model::DeltaError> {
        self.ip.apply_object_deltas(deltas)
    }

    /// Algorithm 5 with the table-backed ascent (the paper reports IP- and
    /// VIP-tree kNN performing equally; both share the branch-and-bound).
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.ip.scratch.checkout();
        self.knn_in(q, k, &mut scratch)
    }

    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.ip.scratch.checkout();
        self.range_in(q, radius, &mut scratch)
    }

    /// As [`VipTree::knn`] with caller-owned scratch state.
    pub fn knn_in(
        &self,
        q: &IndoorPoint,
        k: usize,
        scratch: &mut crate::QueryScratch,
    ) -> Vec<(ObjectId, f64)> {
        self.ascend_via_tables_into(q, self.ip.root(), &mut scratch.asc_s);
        self.ip
            .knn_from_ascent(q, k, scratch, &mut QueryStats::default())
    }

    /// As [`VipTree::range`] with caller-owned scratch state.
    pub fn range_in(
        &self,
        q: &IndoorPoint,
        radius: f64,
        scratch: &mut crate::QueryScratch,
    ) -> Vec<(ObjectId, f64)> {
        self.ascend_via_tables_into(q, self.ip.root(), &mut scratch.asc_s);
        self.ip
            .range_from_ascent(q, radius, scratch, &mut QueryStats::default())
    }

    /// As [`VipTree::knn`], accumulating workload counters (nodes visited,
    /// lower-bound pruning — the bench's `prune_rate` source).
    pub fn knn_with_stats(
        &self,
        q: &IndoorPoint,
        k: usize,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.ip.scratch.checkout();
        self.ascend_via_tables_into(q, self.ip.root(), &mut scratch.asc_s);
        self.ip.knn_from_ascent(q, k, &mut scratch, stats)
    }

    /// As [`VipTree::range`], accumulating workload counters.
    pub fn range_with_stats(
        &self,
        q: &IndoorPoint,
        radius: f64,
        stats: &mut QueryStats,
    ) -> Vec<(ObjectId, f64)> {
        let mut scratch = self.ip.scratch.checkout();
        self.ascend_via_tables_into(q, self.ip.root(), &mut scratch.asc_s);
        self.ip.range_from_ascent(q, radius, &mut scratch, stats)
    }

    /// Total index size: IP-tree plus the door tables and their slab
    /// repack (Fig. 8(b)).
    pub fn size_bytes(&self) -> usize {
        self.ip.size_bytes()
            + self.tables.iter().map(DoorTable::size_bytes).sum::<usize>()
            + self.slab.size_bytes()
    }

    pub fn decompose_fallback_count(&self) -> u64 {
        self.ip.decompose_fallback_count()
    }
}

impl indoor_model::ObjectQueries for VipTree {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        VipTree::knn(self, q, k)
    }
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        VipTree::range(self, q, radius)
    }
}

struct CrossLeaf {
    dist: f64,
    ns: NodeIdx,
    nt: NodeIdx,
    i: usize,
    j: usize,
    via_s: DoorId,
    via_t: DoorId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_graph::DijkstraEngine;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(15))]
        #[test]
        fn vip_matches_oracle_and_ip(seed in 0u64..2_000) {
            let venue = Arc::new(random_venue(seed));
            let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let ip = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for (s, t) in workload::query_pairs(&venue, 20, seed ^ 0x77) {
                let want = crate::ascent::tests::oracle_distance(&venue, &mut engine, &s, &t);
                let got = vip.shortest_distance_points(&s, &t);
                let ip_got = ip.shortest_distance_points(&s, &t);
                match (want, got) {
                    (Some(w), Some(g)) => {
                        prop_assert!((w - g).abs() < 1e-6 * w.max(1.0),
                            "seed {seed}: vip {g} oracle {w}");
                        let ig = ip_got.unwrap();
                        prop_assert!((ig - g).abs() < 1e-9 * g.max(1.0));
                    }
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability mismatch"),
                }
            }
        }

        #[test]
        fn vip_paths_valid(seed in 0u64..1_500) {
            let venue = Arc::new(random_venue(seed));
            let vip = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
            for (s, t) in workload::query_pairs(&venue, 15, seed ^ 0x3C) {
                let Some(path) = vip.shortest_path_points(&s, &t) else { continue };
                let recomputed = path
                    .validate(&venue)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}: {path:?}"));
                prop_assert!((recomputed - path.length).abs() < 1e-6 * recomputed.max(1.0));
                let sd = vip.shortest_distance_points(&s, &t).unwrap();
                prop_assert!((sd - path.length).abs() < 1e-9 * sd.max(1.0));
            }
            prop_assert_eq!(vip.decompose_fallback_count(), 0);
        }
    }
}
