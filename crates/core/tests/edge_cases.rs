//! Edge cases the random-venue property tests are unlikely to hit.

use geometry::{Point, Rect};
use indoor_model::{IndoorPoint, PartitionKind, VenueBuilder};
use indoor_synth::{random_venue, workload};
use std::sync::Arc;
use vip_tree::{IpTree, VipTree, VipTreeConfig};

/// A venue that collapses to a single leaf (one hallway, a few rooms):
/// every query takes the same-leaf path.
#[test]
fn single_leaf_venue() {
    let mut b = VenueBuilder::new();
    let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
    let mut rooms = Vec::new();
    for i in 0..5 {
        let x = i as f64 * 6.0;
        let r = b.add_partition(PartitionKind::Room, Rect::new(x, 0.0, x + 5.0, 5.0, 0));
        b.add_door(Point::new(x + 2.5, 5.0, 0), r, Some(hall));
        rooms.push(r);
    }
    let venue = Arc::new(b.build().unwrap());
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    assert_eq!(tree.ip_tree().num_leaves(), 1);
    assert_eq!(tree.ip_tree().height(), 1);

    let s = IndoorPoint::new(rooms[0], Point::new(1.0, 1.0, 0));
    let t = IndoorPoint::new(rooms[4], Point::new(27.0, 1.0, 0));
    let d = tree.shortest_distance_points(&s, &t).unwrap();
    let p = tree.shortest_path_points(&s, &t).unwrap();
    assert!((p.length - d).abs() < 1e-9);
    assert!((p.validate(&venue).unwrap() - d).abs() < 1e-9);
    // Door-to-door via the hallway: 4 + straight-line across + 4-ish.
    assert!(d > 20.0 && d < 40.0, "implausible distance {d}");
}

/// Two rooms, one door: the smallest legal venue.
#[test]
fn two_room_venue() {
    let mut b = VenueBuilder::new();
    let a = b.add_partition(PartitionKind::Room, Rect::new(0.0, 0.0, 5.0, 5.0, 0));
    let c = b.add_partition(PartitionKind::Room, Rect::new(5.0, 0.0, 10.0, 5.0, 0));
    b.add_door(Point::new(5.0, 2.5, 0), a, Some(c));
    let venue = Arc::new(b.build().unwrap());
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();

    let s = IndoorPoint::new(a, Point::new(1.0, 2.5, 0));
    let t = IndoorPoint::new(c, Point::new(9.0, 2.5, 0));
    let d = tree.shortest_distance_points(&s, &t).unwrap();
    assert!((d - 8.0).abs() < 1e-9, "got {d}");
    let p = tree.shortest_path_points(&s, &t).unwrap();
    assert_eq!(p.doors.len(), 1);
}

/// Identical source and target.
#[test]
fn zero_length_queries() {
    let venue = Arc::new(random_venue(42));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let p = workload::query_points(&venue, 5, 1);
    for q in &p {
        let d = tree.shortest_distance_points(q, q).unwrap();
        assert!(d.abs() < 1e-12, "self-distance {d}");
        let path = tree.shortest_path_points(q, q).unwrap();
        assert!(path.length.abs() < 1e-12);
        assert!(path.doors.is_empty());
    }
}

/// A query point sitting exactly on a door position.
#[test]
fn point_on_door_position() {
    let venue = Arc::new(random_venue(7));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let door = venue.door(indoor_model::DoorId(0));
    let part = door.partitions[0].unwrap();
    let s = IndoorPoint::new(part, door.position);
    for t in workload::query_points(&venue, 10, 3) {
        let d = tree.shortest_distance_points(&s, &t);
        assert!(d.is_some());
        if let Some(p) = tree.shortest_path_points(&s, &t) {
            let len = p.validate(&venue).unwrap();
            assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
        }
    }
}

/// kNN corner parameters: k = 0, k > |O|, no objects attached.
#[test]
fn knn_corner_parameters() {
    let venue = Arc::new(random_venue(13));
    let tree = IpTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let q = workload::query_points(&venue, 1, 2)[0];

    assert!(tree.knn(&q, 5).is_empty(), "no objects attached yet");
    assert!(tree.range(&q, 100.0).is_empty());

    let objects = workload::place_objects(&venue, 3, 5);
    tree.attach_objects(&objects);
    assert!(tree.knn(&q, 0).is_empty());
    assert_eq!(tree.knn(&q, 10).len(), 3, "k capped at object count");
    assert!(tree.range(&q, 0.0).len() <= 3);
    assert_eq!(tree.range(&q, f64::MAX).len(), 3);
}

/// Re-attaching objects replaces the old set.
#[test]
fn reattaching_objects_replaces() {
    let venue = Arc::new(random_venue(21));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    let q = workload::query_points(&venue, 1, 2)[0];
    tree.attach_objects(&workload::place_objects(&venue, 10, 1));
    assert_eq!(tree.knn(&q, 20).len(), 10);
    tree.attach_objects(&workload::place_objects(&venue, 4, 2));
    assert_eq!(tree.knn(&q, 20).len(), 4);
}

/// Concurrent read queries over a shared tree (Send + Sync).
#[test]
fn concurrent_queries() {
    let venue = Arc::new(random_venue(99));
    let tree = VipTree::build(venue.clone(), &VipTreeConfig::default()).unwrap();
    tree.attach_objects(&workload::place_objects(&venue, 8, 3));
    let tree = Arc::new(tree);
    let pairs = workload::query_pairs(&venue, 64, 4);
    let baseline: Vec<Option<f64>> = pairs
        .iter()
        .map(|(s, t)| tree.shortest_distance_points(s, t))
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let tree = tree.clone();
            let pairs = &pairs;
            let baseline = &baseline;
            scope.spawn(move || {
                for ((s, t), want) in pairs.iter().zip(baseline) {
                    let got = tree.shortest_distance_points(s, t);
                    match (got, want) {
                        (Some(a), Some(b)) => assert!((a - b).abs() < 1e-12),
                        (None, None) => {}
                        _ => panic!("nondeterministic result under concurrency"),
                    }
                    let _ = tree.knn(s, 3);
                }
            });
        }
    });
}

/// High minimum degree: tree degenerates towards a flat root.
#[test]
fn huge_min_degree_flattens_tree() {
    let venue = Arc::new(random_venue(55));
    let cfg = VipTreeConfig {
        min_degree: 1000,
        ..Default::default()
    };
    let tree = VipTree::build(venue.clone(), &cfg).unwrap();
    assert!(tree.ip_tree().height() <= 2);
    for (s, t) in workload::query_pairs(&venue, 20, 5) {
        if let Some(p) = tree.shortest_path_points(&s, &t) {
            let len = p.validate(&venue).unwrap();
            assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
        }
    }
}
