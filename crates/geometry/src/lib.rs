//! Geometry primitives for indoor spaces.
//!
//! Indoor venues use a 2.5-D coordinate system (following the VIP-Tree paper,
//! §4.1): the first two coordinates are planar metres, the third is a
//! discrete floor level. Vertical distance between floors is expressed via
//! [`FLOOR_HEIGHT`] when a metric distance spanning levels is needed (e.g.
//! the walking length of a staircase).

mod point;
mod rect;
mod total;

pub use point::{Point, FLOOR_HEIGHT};
pub use rect::Rect;
pub use total::TotalF64;

/// The machine-epsilon-scale tolerance used when comparing computed indoor
/// distances (sums of Euclidean segment lengths accumulate rounding error).
pub const DIST_EPS: f64 = 1e-6;

/// Compare two distances for equality within [`DIST_EPS`] scaled by the
/// magnitude of the values, suitable for validating alternative route
/// computations against each other.
#[inline]
pub fn dist_approx_eq(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= DIST_EPS * scale
}
