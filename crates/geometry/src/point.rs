/// Vertical distance in metres between consecutive floor levels.
///
/// Used when converting a level difference into a metric contribution, e.g.
/// for the walking length of staircases produced by the synthetic venue
/// generator. Real venues may override per-edge weights instead.
pub const FLOOR_HEIGHT: f64 = 4.0;

/// A position inside an indoor venue.
///
/// `x`/`y` are planar metres; `level` is the floor number (may be negative
/// for basements). Two points on the same level are compared with plain
/// Euclidean distance; across levels the vertical offset contributes
/// `level_diff * FLOOR_HEIGHT` metres (as the hypotenuse component), which
/// is only meaningful for partitions that span floors (stairs, lifts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    pub x: f64,
    pub y: f64,
    pub level: i32,
}

impl Point {
    #[inline]
    pub const fn new(x: f64, y: f64, level: i32) -> Self {
        Point { x, y, level }
    }

    /// Planar (same-floor) Euclidean distance, ignoring the level.
    #[inline]
    pub fn planar_distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Indoor metric distance: Euclidean over (x, y, level * FLOOR_HEIGHT).
    ///
    /// This is the default weight between two doors of the same partition
    /// and between an interior point and a door of its partition.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        let dz = f64::from(self.level - other.level) * FLOOR_HEIGHT;
        let dxy = self.planar_distance(other);
        (dxy * dxy + dz * dz).sqrt()
    }

    /// Midpoint of two positions (levels are averaged towards `self`).
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
            level: self.level,
        }
    }

    /// Translate by a planar offset.
    #[inline]
    pub fn offset(&self, dx: f64, dy: f64) -> Point {
        Point {
            x: self.x + dx,
            y: self.y + dy,
            level: self.level,
        }
    }

    /// Same point on a different floor.
    #[inline]
    pub fn at_level(&self, level: i32) -> Point {
        Point { level, ..*self }
    }

    /// The point's coordinates as a bit-pattern key `(x_bits, y_bits,
    /// level)`.
    ///
    /// Two points have equal keys iff their coordinates are bitwise
    /// identical — stricter than `==` (`-0.0` and `0.0` get distinct
    /// keys) and reflexive where `==` is not (a NaN coordinate equals
    /// itself). This is the canonical identity used to hash and compare
    /// query requests (e.g. as result-cache keys), where "same bits in,
    /// same bits out" is the invariant that matters.
    #[inline]
    pub fn key_bits(&self) -> (u64, u64, i32) {
        (self.x.to_bits(), self.y.to_bits(), self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn planar_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0, 0);
        let b = Point::new(3.0, 4.0, 0);
        assert!((a.planar_distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cross_level_distance_includes_floor_height() {
        let a = Point::new(0.0, 0.0, 0);
        let b = Point::new(0.0, 3.0, 1);
        let expected = (9.0 + FLOOR_HEIGHT * FLOOR_HEIGHT).sqrt();
        assert!((a.distance(&b) - expected).abs() < 1e-12);
    }

    #[test]
    fn midpoint_and_offset() {
        let a = Point::new(0.0, 0.0, 2);
        let b = Point::new(4.0, 8.0, 2);
        let m = a.midpoint(&b);
        assert_eq!((m.x, m.y, m.level), (2.0, 4.0, 2));
        let o = a.offset(1.0, -1.0);
        assert_eq!((o.x, o.y), (1.0, -1.0));
        assert_eq!(a.at_level(5).level, 5);
    }

    proptest! {
        #[test]
        fn distance_is_symmetric(ax in -1e3..1e3f64, ay in -1e3..1e3f64,
                                 bx in -1e3..1e3f64, by in -1e3..1e3f64,
                                 la in -3..30i32, lb in -3..30i32) {
            let a = Point::new(ax, ay, la);
            let b = Point::new(bx, by, lb);
            prop_assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-9);
            prop_assert!(a.distance(&b) >= 0.0);
        }

        #[test]
        fn triangle_inequality(pts in proptest::collection::vec((-1e3..1e3f64, -1e3..1e3f64, -3..30i32), 3)) {
            let p: Vec<Point> = pts.iter().map(|&(x, y, l)| Point::new(x, y, l)).collect();
            let (a, b, c) = (p[0], p[1], p[2]);
            prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
        }
    }
}
