use crate::Point;

/// An axis-aligned planar rectangle on a single floor level.
///
/// Partitions carry a `Rect` as their spatial extent; the synthetic venue
/// generator uses it to place doors and random interior points, and query
/// workload generation samples points uniformly inside it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
    pub level: i32,
}

impl Rect {
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64, level: i32) -> Self {
        debug_assert!(min_x <= max_x && min_y <= max_y);
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
            level,
        }
    }

    /// Degenerate rectangle containing a single point.
    pub fn point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y, p.level)
    }

    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
            self.level,
        )
    }

    /// Whether `p` lies inside (or on the border of) this rectangle and on
    /// the same level.
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.level == self.level
            && p.x >= self.min_x
            && p.x <= self.max_x
            && p.y >= self.min_y
            && p.y <= self.max_y
    }

    /// Linear interpolation inside the rectangle; `u`, `v` in `[0, 1]`.
    #[inline]
    pub fn lerp(&self, u: f64, v: f64) -> Point {
        Point::new(
            self.min_x + u.clamp(0.0, 1.0) * self.width(),
            self.min_y + v.clamp(0.0, 1.0) * self.height(),
            self.level,
        )
    }

    /// Smallest rectangle containing both inputs (level taken from `self`).
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
            level: self.level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_metrics() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0, 1);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        let c = r.center();
        assert_eq!((c.x, c.y, c.level), (2.0, 1.0, 1));
    }

    #[test]
    fn containment_respects_level() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0, 1);
        assert!(r.contains(&Point::new(1.0, 1.0, 1)));
        assert!(!r.contains(&Point::new(1.0, 1.0, 0)));
        assert!(!r.contains(&Point::new(5.0, 1.0, 1)));
    }

    #[test]
    fn lerp_clamps() {
        let r = Rect::new(0.0, 0.0, 4.0, 2.0, 0);
        let p = r.lerp(2.0, -1.0);
        assert_eq!((p.x, p.y), (4.0, 0.0));
        let q = r.lerp(0.5, 0.5);
        assert_eq!((q.x, q.y), (2.0, 1.0));
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0, 0);
        let b = Rect::new(2.0, -1.0, 3.0, 0.5, 0);
        let u = a.union(&b);
        assert_eq!((u.min_x, u.min_y, u.max_x, u.max_y), (0.0, -1.0, 3.0, 1.0));
    }
}
