use std::cmp::Ordering;

/// A totally-ordered `f64` wrapper for use as a priority-queue key.
///
/// Distances produced by indoor routing are always finite and non-NaN, but
/// `f64` itself is only `PartialOrd`; `TotalF64` provides the `Ord` instance
/// the standard `BinaryHeap` needs, using IEEE-754 `total_cmp`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for TotalF64 {
    #[inline]
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn orders_like_f64() {
        assert!(TotalF64(1.0) < TotalF64(2.0));
        assert!(TotalF64(-1.0) < TotalF64(0.0));
        assert_eq!(TotalF64(3.5), TotalF64(3.5));
    }

    #[test]
    fn works_as_min_heap_key() {
        let mut h = BinaryHeap::new();
        for v in [3.0, 1.0, 2.0] {
            h.push(Reverse(TotalF64(v)));
        }
        let popped: Vec<f64> =
            std::iter::from_fn(|| h.pop().map(|Reverse(TotalF64(v))| v)).collect();
        assert_eq!(popped, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn infinity_sorts_last() {
        assert!(TotalF64(f64::INFINITY) > TotalF64(1e300));
    }
}
