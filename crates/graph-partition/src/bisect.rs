use indoor_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Split `vertices` into two balanced halves, minimising (heuristically)
/// the number of cut edges. Returns a side flag per input position.
///
/// Method: BFS from a pseudo-peripheral vertex defines a growth order;
/// the first half of the order seeds side 0; refinement passes then move
/// boundary vertices with positive gain while keeping balance within 10%.
pub fn bisect(graph: &CsrGraph, vertices: &[u32], seed: u64) -> Vec<bool> {
    let n = vertices.len();
    if n <= 1 {
        return vec![false; n];
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Membership map (local index per vertex, u32::MAX = outside).
    let mut local = vec![u32::MAX; graph.num_vertices()];
    for (i, &v) in vertices.iter().enumerate() {
        local[v as usize] = i as u32;
    }

    // Pseudo-peripheral start: BFS twice from a random vertex.
    let bfs_far = |start: u32, local: &[u32]| -> (u32, Vec<u32>) {
        let mut order = Vec::with_capacity(n);
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[local[start as usize] as usize] = true;
        q.push_back(start);
        let mut last = start;
        while let Some(v) = q.pop_front() {
            order.push(v);
            last = v;
            for (u, _) in graph.neighbors(v) {
                let li = local[u as usize];
                if li != u32::MAX && !seen[li as usize] {
                    seen[li as usize] = true;
                    q.push_back(u);
                }
            }
        }
        // Disconnected remainders are appended in arbitrary order.
        for (i, &v) in vertices.iter().enumerate() {
            if !seen[i] {
                order.push(v);
                let _ = i;
            }
        }
        (last, order)
    };
    let start0 = vertices[rng.gen_range(0..n)];
    let (far, _) = bfs_far(start0, &local);
    let (_, order) = bfs_far(far, &local);

    let half = n / 2;
    let mut side = vec![false; n];
    for v in order.iter().take(half) {
        side[local[*v as usize] as usize] = true; // side "0" = first half
    }
    // side[i] == true  => part A; false => part B.

    // Refinement: a few passes of positive-gain boundary moves.
    let mut sizes = [half, n - half];
    let max_imbalance = (n / 10).max(1);
    for _pass in 0..4 {
        let mut moved = 0;
        for (i, &v) in vertices.iter().enumerate() {
            let my = side[i];
            // gain = external - internal degree (within the subgraph).
            let mut internal = 0i64;
            let mut external = 0i64;
            for (u, _) in graph.neighbors(v) {
                let li = local[u as usize];
                if li == u32::MAX {
                    continue;
                }
                if side[li as usize] == my {
                    internal += 1;
                } else {
                    external += 1;
                }
            }
            let (from, to) = if my { (0, 1) } else { (1, 0) };
            let balanced_after =
                sizes[from] > sizes[to].saturating_sub(max_imbalance) && sizes[from] > 1;
            if external > internal && balanced_after {
                side[i] = !my;
                sizes[from] -= 1;
                sizes[to] += 1;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }

    side
}

/// Partition `vertices` into (up to) `k` balanced parts by recursive
/// bisection; returns a part id (`0..k`) per input position. Parts are
/// non-empty whenever `vertices.len() >= k`.
pub fn partition_k(graph: &CsrGraph, vertices: &[u32], k: usize, seed: u64) -> Vec<u32> {
    let mut part = vec![0u32; vertices.len()];
    if k <= 1 || vertices.len() <= 1 {
        return part;
    }
    // (positions, first part id, parts wanted)
    let mut stack: Vec<(Vec<u32>, u32, usize)> = vec![(
        (0..vertices.len() as u32).collect(),
        0,
        k.min(vertices.len()),
    )];
    while let Some((positions, first, want)) = stack.pop() {
        if want <= 1 || positions.len() <= 1 {
            for &p in &positions {
                part[p as usize] = first;
            }
            continue;
        }
        let verts: Vec<u32> = positions.iter().map(|&p| vertices[p as usize]).collect();
        let side = bisect(
            graph,
            &verts,
            seed ^ (first as u64) << 17 ^ positions.len() as u64,
        );
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for (i, &p) in positions.iter().enumerate() {
            if side[i] {
                a.push(p);
            } else {
                b.push(p);
            }
        }
        // Guard against degenerate splits.
        if a.is_empty() || b.is_empty() {
            let mid = positions.len() / 2;
            a = positions[..mid].to_vec();
            b = positions[mid..].to_vec();
        }
        let ka = want / 2 + want % 2;
        let kb = want / 2;
        stack.push((a, first, ka));
        stack.push((b, first + ka as u32, kb));
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_graph::GraphBuilder;

    /// Two 10-cliques joined by one edge: the obvious bisection.
    fn dumbbell() -> CsrGraph {
        let mut b = GraphBuilder::new(20);
        for base in [0u32, 10] {
            for i in 0..10 {
                for j in i + 1..10 {
                    b.add_edge(base + i, base + j, 1.0);
                }
            }
        }
        b.add_edge(0, 10, 1.0);
        b.build()
    }

    #[test]
    fn bisect_finds_the_bottleneck() {
        let g = dumbbell();
        let verts: Vec<u32> = (0..20).collect();
        let side = bisect(&g, &verts, 7);
        // All of clique 1 on one side, clique 2 on the other.
        let first = side[0];
        assert!(side[..10].iter().all(|&s| s == first));
        assert!(side[10..].iter().all(|&s| s != first));
    }

    #[test]
    fn partition_k_balanced_and_complete() {
        let g = dumbbell();
        let verts: Vec<u32> = (0..20).collect();
        for k in [2usize, 3, 4, 5] {
            let part = partition_k(&g, &verts, k, 3);
            assert_eq!(part.len(), 20);
            let mut counts = vec![0usize; k];
            for &p in &part {
                assert!((p as usize) < k);
                counts[p as usize] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "k={k}: empty part {counts:?}"
            );
            let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(mx - mn <= 20 / 2, "k={k}: imbalance {counts:?}");
        }
    }

    #[test]
    fn handles_tiny_inputs() {
        let g = dumbbell();
        assert_eq!(partition_k(&g, &[3], 4, 0), vec![0]);
        assert_eq!(bisect(&g, &[], 0).len(), 0);
        let two = partition_k(&g, &[1, 2], 2, 0);
        assert_ne!(two[0], two[1]);
    }
}
