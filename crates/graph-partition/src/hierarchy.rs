use crate::partition_k;
use indoor_graph::CsrGraph;

/// Sentinel node id.
pub const NO_H: u32 = u32::MAX;

/// One node of a partition hierarchy.
#[derive(Debug, Clone)]
pub struct HNode {
    pub parent: u32,
    pub children: Vec<u32>,
    /// Depth from the root (root = 0).
    pub depth: u32,
    /// Vertices of this region — kept for leaves only (interior nodes
    /// would duplicate the whole graph per level).
    pub vertices: Vec<u32>,
    /// Vertices of this region with an edge leaving the region
    /// (G-tree's "borders"; ROAD's Rnet border nodes).
    pub borders: Vec<u32>,
}

impl HNode {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A top-down partition hierarchy: the root covers the whole graph; each
/// interior node is split into `fanout` children until a region has at
/// most `max_leaf` vertices.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    pub nodes: Vec<HNode>,
    pub root: u32,
    pub leaf_of_vertex: Vec<u32>,
}

impl Hierarchy {
    pub fn build(graph: &CsrGraph, fanout: usize, max_leaf: usize, seed: u64) -> Hierarchy {
        assert!(fanout >= 2, "fanout must be >= 2");
        assert!(max_leaf >= 1, "max_leaf must be >= 1");
        let all: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        let mut nodes: Vec<HNode> = vec![HNode {
            parent: NO_H,
            children: Vec::new(),
            depth: 0,
            vertices: all.clone(),
            borders: Vec::new(),
        }];
        let mut leaf_of_vertex = vec![0u32; graph.num_vertices()];

        let mut stack = vec![0u32];
        while let Some(idx) = stack.pop() {
            let verts = std::mem::take(&mut nodes[idx as usize].vertices);
            if verts.len() <= max_leaf {
                // Leaf: keep vertices, record ownership.
                for &v in &verts {
                    leaf_of_vertex[v as usize] = idx;
                }
                nodes[idx as usize].vertices = verts;
                continue;
            }
            let part = partition_k(graph, &verts, fanout, seed ^ (idx as u64) << 7);
            let k = part.iter().map(|p| p + 1).max().unwrap_or(1) as usize;
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); k];
            for (i, &v) in verts.iter().enumerate() {
                buckets[part[i] as usize].push(v);
            }
            let depth = nodes[idx as usize].depth + 1;
            for bucket in buckets.into_iter().filter(|b| !b.is_empty()) {
                let child = nodes.len() as u32;
                nodes.push(HNode {
                    parent: idx,
                    children: Vec::new(),
                    depth,
                    vertices: bucket,
                    borders: Vec::new(),
                });
                nodes[idx as usize].children.push(child);
                stack.push(child);
            }
        }

        let mut h = Hierarchy {
            nodes,
            root: 0,
            leaf_of_vertex,
        };
        h.compute_borders(graph);
        h
    }

    /// A vertex is a border of node `N` iff one of its graph edges leaves
    /// the set of vertices under `N`. Membership tests use leaf ownership
    /// plus ancestor walking, so no interior vertex lists are needed.
    fn compute_borders(&mut self, graph: &CsrGraph) {
        for v in 0..graph.num_vertices() as u32 {
            let my_leaf = self.leaf_of_vertex[v as usize];
            // Find the highest node for which v is a border: the chain of
            // nodes for which some neighbour lies outside. Walk up from
            // the leaf; at each node test neighbours.
            let mut cur = my_leaf;
            loop {
                let outside = graph
                    .neighbors(v)
                    .any(|(u, _)| !self.contains(cur, self.leaf_of_vertex[u as usize]));
                if outside {
                    self.nodes[cur as usize].borders.push(v);
                } else {
                    break; // if no edge leaves `cur`, none leaves ancestors
                }
                let parent = self.nodes[cur as usize].parent;
                if parent == NO_H {
                    break;
                }
                cur = parent;
            }
        }
        for n in &mut self.nodes {
            n.borders.sort_unstable();
            n.borders.dedup();
        }
    }

    /// Is `leaf` equal to or a descendant of `node`?
    pub fn contains(&self, node: u32, leaf: u32) -> bool {
        let target_depth = self.nodes[node as usize].depth;
        let mut cur = leaf;
        while self.nodes[cur as usize].depth > target_depth {
            cur = self.nodes[cur as usize].parent;
        }
        cur == node
    }

    /// The ancestor chain of a leaf, bottom-up (leaf first, root last).
    pub fn chain(&self, leaf: u32) -> Vec<u32> {
        let mut out = vec![leaf];
        let mut cur = leaf;
        while self.nodes[cur as usize].parent != NO_H {
            cur = self.nodes[cur as usize].parent;
            out.push(cur);
        }
        out
    }

    /// Child of `ancestor` on the path towards `leaf`.
    pub fn child_towards(&self, ancestor: u32, leaf: u32) -> u32 {
        let mut cur = leaf;
        loop {
            let p = self.nodes[cur as usize].parent;
            if p == ancestor {
                return cur;
            }
            debug_assert_ne!(p, NO_H);
            cur = p;
        }
    }

    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    pub fn size_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<HNode>()
                    + (n.children.len() + n.vertices.len() + n.borders.len()) * 4
            })
            .sum::<usize>()
            + self.leaf_of_vertex.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use indoor_graph::GraphBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_connected(seed: u64, n: usize, extra: usize) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(rng.gen_range(0..v), v, rng.gen_range(0.5..5.0));
        }
        for _ in 0..extra {
            b.add_edge(
                rng.gen_range(0..n as u32),
                rng.gen_range(0..n as u32),
                rng.gen_range(0.5..5.0),
            );
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(25))]
        #[test]
        fn hierarchy_invariants(seed in 0u64..3_000, n in 2usize..120, extra in 0usize..80) {
            let g = random_connected(seed, n, extra);
            let h = Hierarchy::build(&g, 4, 8, seed);

            // Every vertex in exactly one leaf.
            let mut count = 0usize;
            for node in &h.nodes {
                if node.is_leaf() {
                    prop_assert!(node.vertices.len() <= 8);
                    count += node.vertices.len();
                    for &v in &node.vertices {
                        prop_assert!(h.contains(h.root, h.leaf_of_vertex[v as usize]));
                    }
                }
            }
            prop_assert_eq!(count, n);

            // Border correctness: v is a border of N iff some edge leaves N.
            for (i, node) in h.nodes.iter().enumerate() {
                let i = i as u32;
                for v in 0..n as u32 {
                    let in_node = h.contains(i, h.leaf_of_vertex[v as usize]);
                    let is_border = node.borders.binary_search(&v).is_ok();
                    if !in_node {
                        prop_assert!(!is_border);
                        continue;
                    }
                    let crosses = g
                        .neighbors(v)
                        .any(|(u, _)| !h.contains(i, h.leaf_of_vertex[u as usize]));
                    prop_assert_eq!(is_border, crosses, "node {} vertex {}", i, v);
                }
            }

            // Root borders are empty (nothing outside the root).
            prop_assert!(h.nodes[h.root as usize].borders.is_empty());
        }
    }
}
