//! Graph partitioning for the road-network competitors.
//!
//! G-tree uses the multilevel scheme of Karypis & Kumar (METIS) to
//! decompose the road graph; ROAD hierarchically partitions into Rnets.
//! This crate implements the required primitive from scratch: balanced
//! `k`-way partitioning by recursive bisection, where each bisection grows
//! a region by best-first search from a peripheral seed and then improves
//! the cut with boundary-refinement passes (a lightweight
//! Kernighan–Lin/Fiduccia–Mattheyses variant), plus the
//! [`Hierarchy`] type both indexes build on.

mod bisect;
mod hierarchy;

pub use bisect::{bisect, partition_k};
pub use hierarchy::{HNode, Hierarchy, NO_H};
