//! G-tree construction: hierarchy + per-node distance matrices.

use crate::scratch::GScratchPool;
use graph_partition::Hierarchy;
use indoor_graph::{DijkstraEngine, EnginePool, Termination, NO_VERTEX};
use indoor_model::{IndoorPoint, Venue};
use std::sync::Arc;

pub(crate) const NO_HOP: u32 = u32::MAX;

/// Construction parameters.
#[derive(Debug, Clone)]
pub struct GTreeConfig {
    /// Children per interior node (the original paper's default is 4).
    pub fanout: usize,
    /// τ: maximum vertices per leaf ("experimentally choose the best value
    /// for the parameter τ", §4.1 — sweepable in the bench harness).
    pub tau: usize,
    pub seed: u64,
}

impl Default for GTreeConfig {
    fn default() -> Self {
        GTreeConfig {
            fanout: 4,
            tau: 64,
            seed: 0x61EE,
        }
    }
}

/// A node's distance matrix (same layout as the IP-tree's: leaves are
/// rectangular vertex × border, interior nodes square over the union of
/// children borders; `hop` stores the first intermediate matrix vertex on
/// the shortest path for path recovery, `NO_HOP` = none).
#[derive(Debug, Clone)]
pub(crate) struct GMatrix {
    pub rows: Vec<u32>,
    pub cols: Vec<u32>,
    pub dist: Box<[f64]>,
    pub hop: Box<[u32]>,
}

impl GMatrix {
    #[inline]
    pub fn row_index(&self, v: u32) -> Option<usize> {
        self.rows.binary_search(&v).ok()
    }
    #[inline]
    pub fn col_index(&self, v: u32) -> Option<usize> {
        self.cols.binary_search(&v).ok()
    }
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.dist[r * self.cols.len() + c]
    }
    #[inline]
    pub fn hop_at(&self, r: usize, c: usize) -> Option<u32> {
        match self.hop[r * self.cols.len() + c] {
            NO_HOP => None,
            h => Some(h),
        }
    }
    pub fn size_bytes(&self) -> usize {
        (self.rows.len() + self.cols.len()) * 4 + self.dist.len() * 8 + self.hop.len() * 4
    }
}

/// Per-leaf object table (an object is registered with every leaf that
/// contains at least one door of its partition; `dist` covers routes
/// through that leaf's doors only — the union over leaves is exact).
#[derive(Debug, Clone)]
pub(crate) struct LeafObjects {
    pub objs: Vec<u32>,
    /// border-major: `dist[b * objs.len() + j]`.
    pub dist: Vec<f64>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct GObjects {
    pub points: Vec<IndoorPoint>,
    pub leaf_tables: std::collections::HashMap<u32, LeafObjects>,
    pub subtree_count: Vec<u32>,
}

/// The assembled index.
pub struct GTree {
    pub(crate) venue: Arc<Venue>,
    pub(crate) h: Hierarchy,
    pub(crate) matrices: Vec<GMatrix>,
    /// Vertex is a border of its own leaf ("global border" — the analogue
    /// of the IP-tree's boundary doors).
    pub(crate) border_flag: Vec<bool>,
    /// Checkout pool instead of one mutexed engine: concurrent queries
    /// no longer serialise on leaf expansions.
    pub(crate) engines: EnginePool,
    pub(crate) scratch: GScratchPool,
    pub(crate) objects: Option<GObjects>,
    pub(crate) fallbacks: std::sync::atomic::AtomicU64,
}

impl GTree {
    pub fn build(venue: Arc<Venue>, config: &GTreeConfig) -> GTree {
        let g = venue.d2d();
        let h = Hierarchy::build(g, config.fanout, config.tau, config.seed);
        let mut engine = DijkstraEngine::new(g.num_vertices());

        let mut border_flag = vec![false; g.num_vertices()];
        for node in &h.nodes {
            if node.is_leaf() {
                for &b in &node.borders {
                    border_flag[b as usize] = true;
                }
            }
        }

        let mut matrices = Vec::with_capacity(h.nodes.len());
        for node in &h.nodes {
            let (rows, cols) = if node.is_leaf() {
                let mut rows = node.vertices.clone();
                rows.sort_unstable();
                (rows, node.borders.clone())
            } else {
                let mut b: Vec<u32> = node
                    .children
                    .iter()
                    .flat_map(|&c| h.nodes[c as usize].borders.iter().copied())
                    .collect();
                b.sort_unstable();
                b.dedup();
                (b.clone(), b)
            };
            matrices.push(build_matrix(
                g,
                &mut engine,
                &rows,
                &cols,
                node.is_leaf(),
                &border_flag,
            ));
        }

        drop(engine);
        let n_vertices = g.num_vertices();
        GTree {
            venue,
            h,
            matrices,
            border_flag,
            engines: EnginePool::new(n_vertices),
            scratch: GScratchPool::default(),
            objects: None,
            fallbacks: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Register objects (multi-leaf assignment; see `LeafObjects`).
    pub fn attach_objects(&mut self, objects: &[IndoorPoint]) {
        let venue = self.venue.clone();
        let mut tables: std::collections::HashMap<u32, Vec<u32>> = Default::default();
        for (i, o) in objects.iter().enumerate() {
            let mut leaves: Vec<u32> = venue
                .partition(o.partition)
                .doors
                .iter()
                .map(|d| self.h.leaf_of_vertex[d.index()])
                .collect();
            leaves.sort_unstable();
            leaves.dedup();
            for l in leaves {
                tables.entry(l).or_default().push(i as u32);
            }
        }
        let mut subtree_count = vec![0u32; self.h.nodes.len()];
        let mut leaf_tables = std::collections::HashMap::new();
        for (leaf, objs) in tables {
            for c in self.h.chain(leaf) {
                subtree_count[c as usize] += objs.len() as u32;
            }
            let m = &self.matrices[leaf as usize];
            let n = objs.len();
            let mut dist = vec![f64::INFINITY; m.cols.len() * n];
            for (j, &oid) in objs.iter().enumerate() {
                let o = &objects[oid as usize];
                for &d in &venue.partition(o.partition).doors {
                    let Some(row) = m.row_index(d.0) else {
                        continue; // door in another leaf: covered there
                    };
                    let exit = o.distance_to_door(&venue, d);
                    for (ci, _) in m.cols.iter().enumerate() {
                        let cand = m.at(row, ci) + exit;
                        let slot = &mut dist[ci * n + j];
                        if cand < *slot {
                            *slot = cand;
                        }
                    }
                }
            }
            leaf_tables.insert(leaf, LeafObjects { objs, dist });
        }
        self.objects = Some(GObjects {
            points: objects.to_vec(),
            leaf_tables,
            subtree_count,
        });
    }

    pub fn venue(&self) -> &Arc<Venue> {
        &self.venue
    }

    pub fn num_leaves(&self) -> usize {
        self.h.num_leaves()
    }

    pub fn decompose_fallback_count(&self) -> u64 {
        self.fallbacks.load(std::sync::atomic::Ordering::Relaxed)
    }

    pub fn size_bytes(&self) -> usize {
        self.h.size_bytes()
            + self.matrices.iter().map(GMatrix::size_bytes).sum::<usize>()
            + self.border_flag.len()
    }
}

/// Dijkstra from every column vertex over the **full** graph (global
/// distances), settling all row vertices; next-hops follow the same rules
/// as the IP-tree matrices (first row/"global border" vertex strictly
/// inside the path).
fn build_matrix(
    g: &indoor_graph::CsrGraph,
    engine: &mut DijkstraEngine,
    rows: &[u32],
    cols: &[u32],
    is_leaf: bool,
    border_flag: &[bool],
) -> GMatrix {
    let (nr, nc) = (rows.len(), cols.len());
    let mut dist = vec![f64::INFINITY; nr * nc].into_boxed_slice();
    let mut hop = vec![NO_HOP; nr * nc].into_boxed_slice();
    let mut chain: Vec<u32> = Vec::new();

    for (ci, &c) in cols.iter().enumerate() {
        engine.run(g, &[(c, 0.0)], Termination::SettleAll(rows));
        for (ri, &r) in rows.iter().enumerate() {
            if r == c {
                dist[ri * nc + ci] = 0.0;
                continue;
            }
            let Some(dd) = engine.settled_distance(r) else {
                continue;
            };
            dist[ri * nc + ci] = dd;

            chain.clear();
            let mut cur = r;
            chain.push(cur);
            while let Some(p) = engine.parent(cur) {
                if p == NO_VERTEX {
                    break;
                }
                chain.push(p);
                cur = p;
            }
            if chain.len() <= 2 {
                continue; // direct edge
            }
            let inner = &chain[1..chain.len() - 1];
            hop[ri * nc + ci] = if is_leaf {
                let c1 = chain[1];
                if rows.binary_search(&c1).is_ok() {
                    c1
                } else {
                    inner
                        .iter()
                        .copied()
                        .find(|&v| border_flag[v as usize])
                        .unwrap_or(c1)
                }
            } else {
                // Interior: first matrix vertex strictly inside the path.
                inner
                    .iter()
                    .copied()
                    .find(|&v| rows.binary_search(&v).is_ok())
                    .unwrap_or(NO_HOP)
            };
        }
    }

    GMatrix {
        rows: rows.to_vec(),
        cols: cols.to_vec(),
        dist,
        hop,
    }
}
