//! G-tree kNN / range: best-first traversal with assembled border
//! distances, mirroring the original paper's kNN algorithm.

use crate::build::GTree;
use crate::query::GAscent;
use geometry::TotalF64;
use indoor_graph::Termination;
use indoor_model::{IndoorPoint, ObjectId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

impl GTree {
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        self.object_query(q, Bound::Knn(k))
    }

    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        self.object_query(q, Bound::Range(radius))
    }

    fn object_query(&self, q: &IndoorPoint, bound: Bound) -> Vec<(ObjectId, f64)> {
        let Some(objs) = &self.objects else {
            return Vec::new();
        };
        if objs.points.is_empty() || matches!(bound, Bound::Knn(0)) {
            return Vec::new();
        }
        let venue = &*self.venue;
        let seeds = q.door_seeds(venue);
        let asc = self.ascend(&seeds);

        // Candidate upper bounds per object (tightened as leaves emit).
        let mut cand: HashMap<u32, f64> = HashMap::new();
        let current_bound = |cand: &HashMap<u32, f64>| -> f64 {
            match bound {
                Bound::Range(r) => r,
                Bound::Knn(k) => {
                    if cand.len() < k {
                        f64::INFINITY
                    } else {
                        let mut ds: Vec<f64> = cand.values().copied().collect();
                        ds.sort_by(f64::total_cmp);
                        ds[k - 1]
                    }
                }
            }
        };

        // Best-first over nodes: (mindist, node, border-vector).
        let mut heap: BinaryHeap<Reverse<(TotalF64, u32, usize)>> = BinaryHeap::new();
        let mut vecs: Vec<Vec<f64>> = Vec::new();
        let root = self.h.root;
        vecs.push(asc.vecs[&root].dists.clone());
        heap.push(Reverse((TotalF64(0.0), root, 0)));

        while let Some(Reverse((TotalF64(mind), n, vid))) = heap.pop() {
            if mind > current_bound(&cand) {
                break;
            }
            let node = &self.h.nodes[n as usize];
            if node.is_leaf() {
                self.scan_leaf(q, &asc, n, &vecs[vid], &mut cand);
                continue;
            }
            for &c in &node.children {
                if objs.subtree_count[c as usize] == 0 {
                    continue;
                }
                let cvec = self.derive_vec(n, c, &asc, &vecs[vid]);
                let mind_c = if asc.vecs.contains_key(&c) {
                    0.0 // child holds some of q's doors
                } else {
                    cvec.iter().copied().fold(f64::INFINITY, f64::min)
                };
                if mind_c <= current_bound(&cand) {
                    vecs.push(cvec);
                    heap.push(Reverse((TotalF64(mind_c), c, vecs.len() - 1)));
                }
            }
        }

        let mut out: Vec<(ObjectId, f64)> = cand
            .into_iter()
            .map(|(o, d)| (ObjectId(o), d))
            .filter(|(_, d)| d.is_finite())
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match bound {
            Bound::Knn(k) => out.truncate(k),
            Bound::Range(r) => out.retain(|(_, d)| *d <= r),
        }
        out
    }

    /// Exact border vector of `child`, derived from the parent's exact
    /// vector `pvec`. A shortest route from `q` to a border of `child`
    /// either
    ///
    /// * crosses the parent's own borders (entering the parent from
    ///   outside) — covered by `pvec` + the parent matrix, or
    /// * starts at one of q's doors inside the parent and crosses the
    ///   borders of the chain child holding that door — covered by the
    ///   ascent vectors of every chain child, or
    /// * (when `child` itself holds q-doors) starts inside `child` —
    ///   covered by `child`'s own ascent vector.
    ///
    /// Taking the elementwise minimum over all three keeps the vectors
    /// exact for multi-leaf query points, which single-base derivations
    /// (the plain Lemma 8/9 of the VIP-tree, where `q` touches exactly one
    /// leaf) would not.
    fn derive_vec(&self, parent: u32, child: u32, asc: &GAscent, pvec: &[f64]) -> Vec<f64> {
        let m = &self.matrices[parent as usize];
        let cborders = &self.h.nodes[child as usize].borders;
        let mut out = vec![f64::INFINITY; cborders.len()];

        let mut bases: Vec<(&[u32], Vec<f64>)> = Vec::new();
        bases.push((&self.h.nodes[parent as usize].borders, pvec.to_vec()));
        for &s in &self.h.nodes[parent as usize].children {
            if s == child {
                continue;
            }
            if let Some(nv) = asc.vecs.get(&s) {
                bases.push((&self.h.nodes[s as usize].borders, nv.dists.clone()));
            }
        }

        for (base_borders, base_vec) in bases {
            for (bi, &b) in base_borders.iter().enumerate() {
                if !base_vec[bi].is_finite() {
                    continue;
                }
                let Some(ri) = m.row_index(b) else { continue };
                for (ci_out, &cb) in cborders.iter().enumerate() {
                    let Some(ci) = m.col_index(cb) else { continue };
                    let cand = base_vec[bi] + m.at(ri, ci);
                    if cand < out[ci_out] {
                        out[ci_out] = cand;
                    }
                }
            }
        }
        // Routes starting at q-doors inside `child` itself.
        if let Some(own) = asc.vecs.get(&child) {
            for (i, d) in own.dists.iter().enumerate() {
                if *d < out[i] {
                    out[i] = *d;
                }
            }
        }
        out
    }

    fn scan_leaf(
        &self,
        q: &IndoorPoint,
        asc: &GAscent,
        leaf: u32,
        vec: &[f64],
        cand: &mut HashMap<u32, f64>,
    ) {
        let venue = &*self.venue;
        let objs = self.objects.as_ref().expect("objects attached");
        let Some(table) = objs.leaf_tables.get(&leaf) else {
            return;
        };

        if asc.leaves.contains(&leaf) {
            // q touches this leaf: exact distances via one expansion from
            // q's seeds (global graph, so routes leaving the leaf are
            // covered) plus the same-partition direct candidate.
            let m = &self.matrices[leaf as usize];
            let mut engine = self.engine.lock().expect("engine poisoned");
            engine.run(
                venue.d2d(),
                &q.door_seeds(venue),
                Termination::SettleAll(&m.rows),
            );
            for &oid in &table.objs {
                let o = &objs.points[oid as usize];
                let mut d = q.direct_distance(venue, o).unwrap_or(f64::INFINITY);
                for &door in &venue.partition(o.partition).doors {
                    if let Some(dd) = engine.settled_distance(door.0) {
                        let c = dd + o.distance_to_door(venue, door);
                        if c < d {
                            d = c;
                        }
                    }
                }
                tighten(cand, oid, d);
            }
            return;
        }

        let n = table.objs.len();
        for (j, &oid) in table.objs.iter().enumerate() {
            let mut d = f64::INFINITY;
            for (bi, &dq) in vec.iter().enumerate() {
                if !dq.is_finite() {
                    continue;
                }
                let c = dq + table.dist[bi * n + j];
                if c < d {
                    d = c;
                }
            }
            tighten(cand, oid, d);
        }
    }
}

fn tighten(cand: &mut HashMap<u32, f64>, oid: u32, d: f64) {
    let e = cand.entry(oid).or_insert(f64::INFINITY);
    if d < *e {
        *e = d;
    }
}

#[derive(Debug, Clone, Copy)]
enum Bound {
    Knn(usize),
    Range(f64),
}

#[cfg(test)]
mod tests {
    use crate::{GTree, GTreeConfig};
    use indoor_graph::DijkstraEngine;
    use indoor_model::IndoorPoint;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn brute(
        venue: &indoor_model::Venue,
        engine: &mut DijkstraEngine,
        q: &IndoorPoint,
        objects: &[IndoorPoint],
    ) -> Vec<f64> {
        let mut out: Vec<f64> = objects
            .iter()
            .filter_map(|o| {
                let direct = q.direct_distance(venue, o);
                let via = engine
                    .point_to_point(venue.d2d(), &q.door_seeds(venue), &o.door_seeds(venue))
                    .map(|(d, _)| d);
                match (direct, via) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn gtree_knn_range_match_brute_force(seed in 0u64..1_000, k in 1usize..6) {
            let venue = Arc::new(random_venue(seed));
            let mut tree = GTree::build(venue.clone(), &GTreeConfig { tau: 16, ..Default::default() });
            let objects = workload::place_objects(&venue, 12, seed ^ 0x71);
            tree.attach_objects(&objects);
            let mut engine = DijkstraEngine::new(venue.num_doors());

            for q in workload::query_points(&venue, 5, seed ^ 0x72) {
                let want = brute(&venue, &mut engine, &q, &objects);
                let got = tree.knn(&q, k);
                prop_assert_eq!(got.len(), k.min(want.len()));
                for (i, (_, d)) in got.iter().enumerate() {
                    prop_assert!((d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                        "seed {}: rank {} got {} want {}", seed, i, d, want[i]);
                }
                let r = 150.0;
                let got_r = tree.range(&q, r);
                let want_r: Vec<&f64> = want.iter().filter(|d| **d <= r).collect();
                prop_assert_eq!(got_r.len(), want_r.len(), "seed {}", seed);
            }
        }
    }
}
