//! G-tree kNN / range: best-first traversal with assembled border
//! distances, mirroring the original paper's kNN algorithm.

use crate::build::{GMatrix, GTree};
use crate::scratch::{Candidates, GAscentBuf, GScratch};
use geometry::TotalF64;
use indoor_graph::Termination;
use indoor_model::{IndoorPoint, ObjectId};
use std::cmp::Reverse;

impl GTree {
    pub fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        self.object_query(q, Bound::Knn(k))
    }

    pub fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        self.object_query(q, Bound::Range(radius))
    }

    fn object_query(&self, q: &IndoorPoint, bound: Bound) -> Vec<(ObjectId, f64)> {
        let Some(objs) = &self.objects else {
            return Vec::new();
        };
        if objs.points.is_empty() || matches!(bound, Bound::Knn(0)) {
            return Vec::new();
        }
        let venue = &*self.venue;
        let seeds = q.door_seeds(venue);
        let mut scratch = self.scratch.checkout();
        let sc = &mut *scratch;
        self.ascend_into(&seeds, &mut sc.asc_s);
        let GScratch {
            asc_s,
            col_buf,
            cvec,
            arena_data,
            arena_spans,
            heap,
            cand,
            leaf_acc,
            ..
        } = sc;
        let asc = &*asc_s;

        // Candidate upper bounds per object (tightened as leaves emit);
        // the kNN bound is the cached exact k-th best, not a fresh sort
        // per heap pop.
        cand.begin();
        arena_data.clear();
        arena_spans.clear();
        heap.clear();
        let root = self.h.root;
        let rh = GScratch::arena_push(
            arena_data,
            arena_spans,
            &asc.get(root).expect("root is on every chain").dists,
        );
        heap.push(Reverse((TotalF64(0.0), root, rh)));

        while let Some(Reverse((TotalF64(mind), n, vid))) = heap.pop() {
            let b = match bound {
                Bound::Range(r) => r,
                Bound::Knn(k) => cand.kth_bound(k),
            };
            if mind > b {
                break;
            }
            let node = &self.h.nodes[n as usize];
            if node.is_leaf() {
                self.scan_leaf(
                    q,
                    asc,
                    n,
                    GScratch::arena_get(arena_data, arena_spans, vid),
                    cand,
                    leaf_acc,
                );
                continue;
            }
            for &c in &node.children {
                if objs.subtree_count[c as usize] == 0 {
                    continue;
                }
                self.derive_vec_into(
                    n,
                    c,
                    asc,
                    GScratch::arena_get(arena_data, arena_spans, vid),
                    col_buf,
                    cvec,
                );
                let mind_c = if asc.contains(c) {
                    0.0 // child holds some of q's doors
                } else {
                    cvec.iter().copied().fold(f64::INFINITY, f64::min)
                };
                let b = match bound {
                    Bound::Range(r) => r,
                    Bound::Knn(k) => cand.kth_bound(k),
                };
                if mind_c <= b {
                    let h = GScratch::arena_push(arena_data, arena_spans, cvec);
                    heap.push(Reverse((TotalF64(mind_c), c, h)));
                }
            }
        }

        let mut out: Vec<(ObjectId, f64)> = cand
            .map
            .iter()
            .map(|(&o, &d)| (ObjectId(o), d))
            .filter(|(_, d)| d.is_finite())
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match bound {
            Bound::Knn(k) => out.truncate(k),
            Bound::Range(r) => out.retain(|(_, d)| *d <= r),
        }
        out
    }

    /// Exact border vector of `child`, derived from the parent's exact
    /// vector `pvec`. A shortest route from `q` to a border of `child`
    /// either
    ///
    /// * crosses the parent's own borders (entering the parent from
    ///   outside) — covered by `pvec` + the parent matrix, or
    /// * starts at one of q's doors inside the parent and crosses the
    ///   borders of the chain child holding that door — covered by the
    ///   ascent vectors of every chain child, or
    /// * (when `child` itself holds q-doors) starts inside `child` —
    ///   covered by `child`'s own ascent vector.
    ///
    /// Taking the elementwise minimum over all three keeps the vectors
    /// exact for multi-leaf query points, which single-base derivations
    /// (the plain Lemma 8/9 of the VIP-tree, where `q` touches exactly one
    /// leaf) would not.
    fn derive_vec_into(
        &self,
        parent: u32,
        child: u32,
        asc: &GAscentBuf,
        pvec: &[f64],
        col_buf: &mut Vec<u32>,
        out: &mut Vec<f64>,
    ) {
        let m = &self.matrices[parent as usize];
        let h = &self.h;
        let cborders = &h.nodes[child as usize].borders;
        out.clear();
        out.resize(cborders.len(), f64::INFINITY);
        // Hoist the child borders' column ordinals (u32::MAX = absent)
        // instead of binary-searching per (base, border) pair.
        col_buf.clear();
        col_buf.extend(
            cborders
                .iter()
                .map(|&cb| m.col_index(cb).map_or(u32::MAX, |c| c as u32)),
        );

        fold_base(m, &h.nodes[parent as usize].borders, pvec, col_buf, out);
        for &s in &h.nodes[parent as usize].children {
            if s == child {
                continue;
            }
            if let Some(nv) = asc.get(s) {
                fold_base(m, &h.nodes[s as usize].borders, &nv.dists, col_buf, out);
            }
        }
        // Routes starting at q-doors inside `child` itself.
        if let Some(own) = asc.get(child) {
            for (o, d) in out.iter_mut().zip(&own.dists) {
                if *d < *o {
                    *o = *d;
                }
            }
        }
    }

    fn scan_leaf(
        &self,
        q: &IndoorPoint,
        asc: &GAscentBuf,
        leaf: u32,
        vec: &[f64],
        cand: &mut Candidates,
        acc: &mut Vec<f64>,
    ) {
        let venue = &*self.venue;
        let objs = self.objects.as_ref().expect("objects attached");
        let Some(table) = objs.leaf_tables.get(&leaf) else {
            return;
        };

        if asc.seeds_leaf(leaf) {
            // q touches this leaf: exact distances via one expansion from
            // q's seeds (global graph, so routes leaving the leaf are
            // covered) plus the same-partition direct candidate.
            let m = &self.matrices[leaf as usize];
            let mut engine = self.engines.checkout();
            engine.run(
                venue.d2d(),
                &q.door_seeds(venue),
                Termination::SettleAll(&m.rows),
            );
            for &oid in &table.objs {
                let o = &objs.points[oid as usize];
                let mut d = q.direct_distance(venue, o).unwrap_or(f64::INFINITY);
                for &door in &venue.partition(o.partition).doors {
                    if let Some(dd) = engine.settled_distance(door.0) {
                        let c = dd + o.distance_to_door(venue, door);
                        if c < d {
                            d = c;
                        }
                    }
                }
                cand.tighten(oid, d);
            }
            return;
        }

        // Border-major accumulation: each table row is walked
        // contiguously (the old per-object loop strode by `n` through
        // the whole table).
        let n = table.objs.len();
        acc.clear();
        acc.resize(n, f64::INFINITY);
        for (bi, &dq) in vec.iter().enumerate() {
            if !dq.is_finite() {
                continue;
            }
            let row = &table.dist[bi * n..(bi + 1) * n];
            for (a, &dd) in acc.iter_mut().zip(row) {
                let c = dq + dd;
                if c < *a {
                    *a = c;
                }
            }
        }
        for (j, &oid) in table.objs.iter().enumerate() {
            cand.tighten(oid, acc[j]);
        }
    }
}

/// Fold one base (border set + distance vector) into `out` through the
/// parent matrix: `out[ci] = min(out[ci], base[bi] + M(b, c))`.
fn fold_base(m: &GMatrix, base_borders: &[u32], base_vec: &[f64], cols: &[u32], out: &mut [f64]) {
    for (bi, &b) in base_borders.iter().enumerate() {
        if !base_vec[bi].is_finite() {
            continue;
        }
        let Some(ri) = m.row_index(b) else { continue };
        for (o, &ci) in out.iter_mut().zip(cols) {
            if ci == u32::MAX {
                continue;
            }
            let cand = base_vec[bi] + m.at(ri, ci as usize);
            if cand < *o {
                *o = cand;
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Bound {
    Knn(usize),
    Range(f64),
}

#[cfg(test)]
mod tests {
    use crate::{GTree, GTreeConfig};
    use indoor_graph::DijkstraEngine;
    use indoor_model::IndoorPoint;
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn brute(
        venue: &indoor_model::Venue,
        engine: &mut DijkstraEngine,
        q: &IndoorPoint,
        objects: &[IndoorPoint],
    ) -> Vec<f64> {
        let mut out: Vec<f64> = objects
            .iter()
            .filter_map(|o| {
                let direct = q.direct_distance(venue, o);
                let via = engine
                    .point_to_point(venue.d2d(), &q.door_seeds(venue), &o.door_seeds(venue))
                    .map(|(d, _)| d);
                match (direct, via) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            })
            .collect();
        out.sort_by(f64::total_cmp);
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn gtree_knn_range_match_brute_force(seed in 0u64..1_000, k in 1usize..6) {
            let venue = Arc::new(random_venue(seed));
            let mut tree = GTree::build(venue.clone(), &GTreeConfig { tau: 16, ..Default::default() });
            let objects = workload::place_objects(&venue, 12, seed ^ 0x71);
            tree.attach_objects(&objects);
            let mut engine = DijkstraEngine::new(venue.num_doors());

            for q in workload::query_points(&venue, 5, seed ^ 0x72) {
                let want = brute(&venue, &mut engine, &q, &objects);
                let got = tree.knn(&q, k);
                prop_assert_eq!(got.len(), k.min(want.len()));
                for (i, (_, d)) in got.iter().enumerate() {
                    prop_assert!((d - want[i]).abs() < 1e-6 * want[i].max(1.0),
                        "seed {}: rank {} got {} want {}", seed, i, d, want[i]);
                }
                let r = 150.0;
                let got_r = tree.range(&q, r);
                let want_r: Vec<&f64> = want.iter().filter(|d| **d <= r).collect();
                prop_assert_eq!(got_r.len(), want_r.len(), "seed {}", seed);
            }
        }
    }
}
