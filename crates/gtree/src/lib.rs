//! G-tree (Zhong et al., CIKM'13 / TKDE'15) adapted to indoor D2D graphs —
//! the paper's road-network competitor.
//!
//! The D2D graph is decomposed by the from-scratch multilevel partitioner
//! (the original uses METIS); each node stores a distance matrix:
//! leaves hold border × vertex distances, interior nodes the pairwise
//! distances of their children's borders. Queries assemble distances along
//! the tree exactly like the IP-tree ascent — the structural difference,
//! and the reason the paper's Figs. 8–11 show G-tree orders of magnitude
//! behind VIP-tree, is that graph partitioning of high-out-degree indoor
//! graphs yields far more borders per node than access-door-aware
//! partitioning (§5: "we design a new algorithm that ... minimises the
//! total number of access doors").
//!
//! Indoor points (which may touch several G-tree leaves through the doors
//! of their partition) are handled with a multi-leaf ascent that combines
//! chains at every common ancestor, keeping queries exact.

mod build;
mod knn;
mod query;
mod scratch;

pub use build::{GTree, GTreeConfig};

use indoor_model::{IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries};

impl IndoorIndex for GTree {
    fn name(&self) -> &'static str {
        "G-tree"
    }
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        self.shortest_distance_points(s, t)
    }
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        self.shortest_path_points(s, t)
    }
    fn index_size_bytes(&self) -> usize {
        self.size_bytes()
    }
}

impl ObjectQueries for GTree {
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)> {
        GTree::knn(self, q, k)
    }
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)> {
        GTree::range(self, q, radius)
    }
}
