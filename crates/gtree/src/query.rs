//! G-tree shortest distance / path with multi-leaf indoor endpoints.

use crate::build::GTree;
use crate::scratch::GAscentBuf;
use graph_partition::NO_H;
use indoor_graph::{Termination, NO_VERTEX};
use indoor_model::{DoorId, IndoorPath, IndoorPoint};

/// Distances from a seed set to the borders of one hierarchy node, with
/// provenance for path replay.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeVec {
    /// Aligned with `h.nodes[node].borders`.
    pub dists: Vec<f64>,
    /// Where each minimum came from: a seed vertex (leaf level) or a
    /// (child, border index) pair.
    pub prov: Vec<Prov>,
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Prov {
    Seed { vertex: u32 },
    Child { node: u32, idx: u32 },
}

impl Default for Prov {
    fn default() -> Prov {
        Prov::Seed { vertex: u32::MAX }
    }
}

impl GTree {
    /// Multi-seed ascent: distances from the seed set (a point expanded
    /// through its partition's doors) to the borders of every node on the
    /// union of leaf→root chains. Writes into the reused `asc` buffers —
    /// no per-query allocation once the scratch is warm — and visits
    /// leaves in sorted order, so the chain walk is deterministic (the
    /// old hash-map grouping was not).
    pub(crate) fn ascend_into(&self, seeds: &[(u32, f64)], asc: &mut GAscentBuf) {
        let h = &self.h;
        asc.begin(h.nodes.len());
        let mut seed_buf = std::mem::take(&mut asc.seed_buf);
        let mut on_chain = std::mem::take(&mut asc.on_chain);
        let mut col_buf = std::mem::take(&mut asc.col_buf);

        // Group seeds by leaf (stable sort keeps within-leaf seed order).
        seed_buf.clear();
        for &(v, d) in seeds {
            seed_buf.push((h.leaf_of_vertex[v as usize], v, d));
        }
        seed_buf.sort_by_key(|e| e.0);
        for e in &seed_buf {
            if asc.leaves.last() != Some(&e.0) {
                asc.leaves.push(e.0);
            }
        }

        // Union of leaf→root chains, processed deepest-first. Once a walk
        // meets a node already collected, its remaining ancestors are
        // known to be present (every chain runs to the root).
        on_chain.clear();
        for &l in &asc.leaves {
            let mut cur = l;
            loop {
                if on_chain.contains(&cur) {
                    break;
                }
                on_chain.push(cur);
                let parent = h.nodes[cur as usize].parent;
                if parent == NO_H {
                    break;
                }
                cur = parent;
            }
        }
        on_chain.sort_by_key(|&n| std::cmp::Reverse(h.nodes[n as usize].depth));

        for &n in &on_chain {
            let node = &h.nodes[n as usize];
            let m = &self.matrices[n as usize];
            let borders = &node.borders;
            // Column ordinals of the node's own borders, hoisted out of
            // the per-entry loops (the old code binary-searched per
            // element).
            col_buf.clear();
            col_buf.extend(
                borders
                    .iter()
                    .map(|&b| m.col_index(b).expect("border in own matrix") as u32),
            );
            let (map, done, nv) = asc.push_node(n, borders.len());

            if node.is_leaf() {
                let lo = seed_buf.partition_point(|e| e.0 < n);
                let hi = seed_buf.partition_point(|e| e.0 <= n);
                for &(_, v, d0) in &seed_buf[lo..hi] {
                    let ri = m.row_index(v).expect("seed vertex in its leaf");
                    for (bi, &ci) in col_buf.iter().enumerate() {
                        let cand = d0 + m.at(ri, ci as usize);
                        if cand < nv.dists[bi] {
                            nv.dists[bi] = cand;
                            nv.prov[bi] = Prov::Seed { vertex: v };
                        }
                    }
                }
            } else {
                for &c in &node.children {
                    let Some(cs) = map.get(c) else {
                        continue; // child not on any seed chain
                    };
                    let cvec = &done[cs as usize];
                    let cborders = &h.nodes[c as usize].borders;
                    for (xi, &x) in cborders.iter().enumerate() {
                        if !cvec.dists[xi].is_finite() {
                            continue;
                        }
                        let ri = m.row_index(x).expect("child border in inner matrix");
                        for (bi, &ci) in col_buf.iter().enumerate() {
                            let cand = cvec.dists[xi] + m.at(ri, ci as usize);
                            if cand < nv.dists[bi] {
                                nv.dists[bi] = cand;
                                nv.prov[bi] = Prov::Child {
                                    node: c,
                                    idx: xi as u32,
                                };
                            }
                        }
                    }
                }
            }
        }

        asc.seed_buf = seed_buf;
        asc.on_chain = on_chain;
        asc.col_buf = col_buf;
    }

    /// Cross-region distance: combine the two ascents at every common
    /// chain node through that node's matrix. Returns the best value and
    /// the meeting description for path recovery. `col_buf` hoists the
    /// target-side column ordinals once per (node, child) pair.
    pub(crate) fn combine(
        &self,
        asc_s: &GAscentBuf,
        asc_t: &GAscentBuf,
        col_buf: &mut Vec<u32>,
    ) -> Option<(f64, Meeting)> {
        let h = &self.h;
        let mut best = f64::INFINITY;
        let mut meeting = None;
        for &x in &asc_s.nodes {
            if !asc_t.contains(x) {
                continue;
            }
            let m = &self.matrices[x as usize];
            // Children of x on each side (leaves have none: skipped — the
            // shared-leaf case is handled by the caller's Dijkstra).
            let node = &h.nodes[x as usize];
            for &ct in &node.children {
                let Some(vt) = asc_t.get(ct) else {
                    continue;
                };
                let bt = &h.nodes[ct as usize].borders;
                col_buf.clear();
                col_buf.extend(
                    bt.iter()
                        .map(|&yv| m.col_index(yv).expect("child border in matrix") as u32),
                );
                for &cs in &node.children {
                    if cs == ct {
                        continue;
                    }
                    let Some(vs) = asc_s.get(cs) else {
                        continue;
                    };
                    let bs = &h.nodes[cs as usize].borders;
                    for (xi, &xv) in bs.iter().enumerate() {
                        if !vs.dists[xi].is_finite() {
                            continue;
                        }
                        let ri = m.row_index(xv).expect("child border in matrix");
                        for (yi, &ci) in col_buf.iter().enumerate() {
                            if !vt.dists[yi].is_finite() {
                                continue;
                            }
                            let cand = vs.dists[xi] + m.at(ri, ci as usize) + vt.dists[yi];
                            if cand < best {
                                best = cand;
                                meeting = Some(Meeting {
                                    node: x,
                                    cs,
                                    ct,
                                    xi,
                                    yi,
                                });
                            }
                        }
                    }
                }
            }
        }
        meeting.map(|mt| (best, mt))
    }

    pub fn shortest_distance_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64> {
        let venue = &*self.venue;
        let s_seeds = s.door_seeds(venue);
        let t_seeds = t.door_seeds(venue);
        let direct = s.direct_distance(venue, t);

        if self.shares_leaf(&s_seeds, &t_seeds) {
            let mut engine = self.engines.checkout();
            let via = engine
                .point_to_point(venue.d2d(), &s_seeds, &t_seeds)
                .map(|(d, _)| d);
            return match (direct, via) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        let mut scratch = self.scratch.checkout();
        let sc = &mut *scratch;
        self.ascend_into(&s_seeds, &mut sc.asc_s);
        self.ascend_into(&t_seeds, &mut sc.asc_t);
        let tree = self
            .combine(&sc.asc_s, &sc.asc_t, &mut sc.col_buf)
            .map(|(d, _)| d);
        match (direct, tree) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    pub fn shortest_path_points(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath> {
        let venue = &*self.venue;
        let s_seeds = s.door_seeds(venue);
        let t_seeds = t.door_seeds(venue);
        let direct = s.direct_distance(venue, t);

        let dijkstra_route = |out_len: &mut f64| -> Option<Vec<DoorId>> {
            let mut engine = self.engines.checkout();
            let (vd, exit) = engine.point_to_point(venue.d2d(), &s_seeds, &t_seeds)?;
            *out_len = vd;
            let mut seq = Vec::new();
            let mut cur = exit;
            loop {
                seq.push(DoorId(cur));
                match engine.parent(cur) {
                    Some(p) if p != NO_VERTEX => cur = p,
                    _ => break,
                }
            }
            seq.reverse();
            Some(seq)
        };

        if self.shares_leaf(&s_seeds, &t_seeds) {
            let mut vd = f64::INFINITY;
            let doors = dijkstra_route(&mut vd);
            return finish_path(*s, *t, direct, doors.map(|d| (vd, d)));
        }

        let mut scratch = self.scratch.checkout();
        let sc = &mut *scratch;
        self.ascend_into(&s_seeds, &mut sc.asc_s);
        self.ascend_into(&t_seeds, &mut sc.asc_t);
        let Some((best, mt)) = self.combine(&sc.asc_s, &sc.asc_t, &mut sc.col_buf) else {
            return finish_path(*s, *t, direct, None);
        };
        if let Some(d) = direct {
            if d <= best {
                return finish_path(*s, *t, Some(d), None);
            }
        }

        // Replay: s → x (via asc_s at child cs), x → y (matrix of mt.node),
        // y → t (asc_t at ct, reversed).
        let x = self.h.nodes[mt.cs as usize].borders[mt.xi];
        let y = self.h.nodes[mt.ct as usize].borders[mt.yi];
        let mut seq: Vec<u32> = Vec::new();
        self.replay_chain(&sc.asc_s, mt.cs, mt.xi, &mut seq);
        debug_assert_eq!(seq.last(), Some(&x));
        let mid = self.expand_pair(x, y, Some(mt.node));
        seq.extend_from_slice(&mid[1..]);
        let mut tail: Vec<u32> = Vec::new();
        self.replay_chain(&sc.asc_t, mt.ct, mt.yi, &mut tail);
        tail.reverse();
        debug_assert_eq!(tail.first(), Some(&y));
        seq.extend_from_slice(&tail[1..]);
        seq.dedup();

        let doors: Vec<DoorId> = seq.into_iter().map(DoorId).collect();
        finish_path(*s, *t, None, Some((best, doors)))
    }

    fn shares_leaf(&self, s_seeds: &[(u32, f64)], t_seeds: &[(u32, f64)]) -> bool {
        s_seeds.iter().any(|&(v, _)| {
            let l = self.h.leaf_of_vertex[v as usize];
            t_seeds
                .iter()
                .any(|&(u, _)| self.h.leaf_of_vertex[u as usize] == l)
        })
    }

    /// Emit the full expanded vertex sequence seed → border `bi` of node
    /// `n` (inclusive) into `out`.
    fn replay_chain(&self, asc: &GAscentBuf, n: u32, bi: usize, out: &mut Vec<u32>) {
        let vec = asc.get(n).expect("replayed node on ascent chain");
        let border = self.h.nodes[n as usize].borders[bi];
        match vec.prov[bi] {
            Prov::Seed { vertex } => {
                debug_assert_ne!(vertex, u32::MAX);
                let leaf_seq = self.expand_pair(vertex, border, Some(n));
                extend_dedup(out, &leaf_seq);
            }
            Prov::Child { node, idx } => {
                self.replay_chain(asc, node, idx as usize, out);
                let from = self.h.nodes[node as usize].borders[idx as usize];
                let seg = self.expand_pair(from, border, Some(n));
                extend_dedup(out, &seg);
            }
        }
    }

    /// Expand a vertex pair into its full shortest-path vertex sequence
    /// using the next-hop matrices (context-tracked; analogous to the
    /// IP-tree's Algorithm 4 implementation — see that crate's `path`
    /// module for the reasoning).
    pub(crate) fn expand_pair(&self, a: u32, b: u32, ctx: Option<u32>) -> Vec<u32> {
        if a == b {
            return vec![a];
        }
        if !self.border_flag[a as usize] && !self.border_flag[b as usize] {
            return vec![a, b]; // final edge (Lemma-6 analogue)
        }
        let mut banned: Vec<u32> = Vec::new();
        let mut ctx = ctx;
        loop {
            let node_idx = match ctx.take() {
                Some(n) if !banned.contains(&n) && self.matrix_has_pair(n, a, b) => n,
                _ => match self.lowest_common_matrix(a, b, &banned) {
                    Some(n) => n,
                    None => return self.dijkstra_expand(a, b),
                },
            };
            let m = &self.matrices[node_idx as usize];
            let Some((ri, ci)) = m.row_index(a).zip(m.col_index(b)) else {
                let mut rev = self.expand_pair(b, a, Some(node_idx));
                rev.reverse();
                return rev;
            };
            match m.hop_at(ri, ci) {
                Some(k) if k != a && k != b => {
                    let mut left = self.expand_pair(a, k, Some(node_idx));
                    let right = self.expand_pair(k, b, Some(node_idx));
                    left.extend_from_slice(&right[1..]);
                    return left;
                }
                _ => {
                    if self.h.nodes[node_idx as usize].is_leaf() {
                        return vec![a, b];
                    }
                    banned.push(node_idx);
                }
            }
        }
    }

    fn matrix_has_pair(&self, n: u32, a: u32, b: u32) -> bool {
        let m = &self.matrices[n as usize];
        (m.row_index(a).is_some() && m.col_index(b).is_some())
            || (m.row_index(b).is_some() && m.col_index(a).is_some())
    }

    fn matrix_chain(&self, v: u32, out: &mut Vec<u32>) {
        out.clear();
        let leaf = self.h.leaf_of_vertex[v as usize];
        out.push(leaf);
        let mut cur = leaf;
        loop {
            let node = &self.h.nodes[cur as usize];
            if node.borders.binary_search(&v).is_err() {
                break;
            }
            let parent = node.parent;
            if parent == NO_H {
                break;
            }
            if !out.contains(&parent) {
                out.push(parent);
            }
            cur = parent;
        }
    }

    fn lowest_common_matrix(&self, a: u32, b: u32, banned: &[u32]) -> Option<u32> {
        let mut ca = Vec::new();
        let mut cb = Vec::new();
        self.matrix_chain(a, &mut ca);
        self.matrix_chain(b, &mut cb);
        ca.iter()
            .filter(|n| cb.contains(n) && !banned.contains(n) && self.matrix_has_pair(**n, a, b))
            .copied()
            .max_by_key(|&n| self.h.nodes[n as usize].depth)
    }

    fn dijkstra_expand(&self, a: u32, b: u32) -> Vec<u32> {
        self.fallbacks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut engine = self.engines.checkout();
        engine.run(self.venue.d2d(), &[(a, 0.0)], Termination::SettleAll(&[b]));
        let mut seq = Vec::new();
        let mut cur = b;
        loop {
            seq.push(cur);
            match engine.parent(cur) {
                Some(p) if p != NO_VERTEX => cur = p,
                _ => break,
            }
        }
        seq.reverse();
        seq
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Meeting {
    pub node: u32,
    pub cs: u32,
    pub ct: u32,
    pub xi: usize,
    pub yi: usize,
}

fn extend_dedup(out: &mut Vec<u32>, seg: &[u32]) {
    for &v in seg {
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
}

fn finish_path(
    s: IndoorPoint,
    t: IndoorPoint,
    direct: Option<f64>,
    via: Option<(f64, Vec<DoorId>)>,
) -> Option<IndoorPath> {
    match (direct, via) {
        (Some(d), Some((vd, doors))) if vd < d => Some(IndoorPath {
            source: s,
            target: t,
            doors,
            length: vd,
        }),
        (Some(d), _) => Some(IndoorPath {
            source: s,
            target: t,
            doors: Vec::new(),
            length: d,
        }),
        (None, Some((vd, doors))) => Some(IndoorPath {
            source: s,
            target: t,
            doors,
            length: vd,
        }),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use crate::{GTree, GTreeConfig};
    use indoor_graph::DijkstraEngine;
    use indoor_model::{IndoorIndex, IndoorPoint, Venue};
    use indoor_synth::{random_venue, workload};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn oracle(
        venue: &Venue,
        engine: &mut DijkstraEngine,
        s: &IndoorPoint,
        t: &IndoorPoint,
    ) -> Option<f64> {
        let direct = s.direct_distance(venue, t);
        let via = engine
            .point_to_point(venue.d2d(), &s.door_seeds(venue), &t.door_seeds(venue))
            .map(|(d, _)| d);
        match (direct, via) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn gtree_matches_oracle(seed in 0u64..1_500, tau in 4usize..40) {
            let venue = Arc::new(random_venue(seed));
            let cfg = GTreeConfig { tau, ..Default::default() };
            let tree = GTree::build(venue.clone(), &cfg);
            let mut engine = DijkstraEngine::new(venue.num_doors());
            for (s, t) in workload::query_pairs(&venue, 15, seed ^ 0x6E) {
                let want = oracle(&venue, &mut engine, &s, &t);
                let got = tree.shortest_distance(&s, &t);
                match (want, got) {
                    (Some(w), Some(g)) => prop_assert!((w - g).abs() < 1e-6 * w.max(1.0),
                        "seed {seed} tau {tau}: got {g} want {w}"),
                    (None, None) => {}
                    _ => prop_assert!(false, "reachability mismatch"),
                }
            }
        }

        #[test]
        fn gtree_paths_valid(seed in 0u64..1_000) {
            let venue = Arc::new(random_venue(seed));
            let tree = GTree::build(venue.clone(), &GTreeConfig { tau: 12, ..Default::default() });
            for (s, t) in workload::query_pairs(&venue, 12, seed ^ 0x6F) {
                let Some(p) = tree.shortest_path(&s, &t) else { continue };
                let len = p.validate(&venue).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                prop_assert!((len - p.length).abs() < 1e-6 * len.max(1.0));
                let sd = tree.shortest_distance(&s, &t).unwrap();
                prop_assert!((sd - p.length).abs() < 1e-9 * sd.max(1.0));
            }
        }
    }
}
