//! Reusable per-query state for G-tree queries.
//!
//! The first implementation allocated freely on the hot path — a
//! `HashMap` of freshly `vec![]`-ed border vectors per ascent, cloned
//! bases per derived child, and a full sort of the candidate set on every
//! heap pop — which left G-tree several times slower than the IP/VIP
//! trees per query even where the door-pair counts were comparable. This
//! module mirrors the `QueryScratch` discipline of the `vip-tree` crate:
//! every buffer a query needs lives in a [`GScratch`] checked out of a
//! lock-striped pool, cleared by epoch bump or truncation rather than
//! reallocation.

use crate::query::{NodeVec, Prov};
use geometry::TotalF64;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Mutex;

/// Epoch-stamped node → slot map (no per-query clearing of the backing
/// arrays; `begin` bumps the epoch instead).
#[derive(Debug, Default)]
pub(crate) struct SlotMap {
    stamp: Vec<u32>,
    slot: Vec<u32>,
    epoch: u32,
}

impl SlotMap {
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.slot.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    pub fn set(&mut self, node: u32, slot: u32) {
        self.stamp[node as usize] = self.epoch;
        self.slot[node as usize] = slot;
    }

    #[inline]
    pub fn get(&self, node: u32) -> Option<u32> {
        (self.stamp[node as usize] == self.epoch).then(|| self.slot[node as usize])
    }
}

/// The union-of-chains ascent of one endpoint, backed by reused buffers:
/// a dense arena of [`NodeVec`]s addressed through an epoch-stamped
/// [`SlotMap`] (replacing the old per-query `HashMap<u32, NodeVec>`).
#[derive(Debug, Default)]
pub(crate) struct GAscentBuf {
    /// Chain nodes in processing (deepest-first) order; `vecs[i]` belongs
    /// to `nodes[i]`.
    pub nodes: Vec<u32>,
    pub vecs: Vec<NodeVec>,
    pub map: SlotMap,
    /// Leaves holding at least one seed, ascending.
    pub leaves: Vec<u32>,
    /// Seed grouping scratch: `(leaf, vertex, dist)` sorted by leaf.
    pub seed_buf: Vec<(u32, u32, f64)>,
    /// Chain-union scratch.
    pub on_chain: Vec<u32>,
    /// Hoisted per-node column ordinals.
    pub col_buf: Vec<u32>,
}

impl GAscentBuf {
    pub fn begin(&mut self, n_hierarchy_nodes: usize) {
        self.nodes.clear();
        self.map.begin(n_hierarchy_nodes);
        self.leaves.clear();
    }

    /// Claim the next arena slot for `node`, reusing a previous query's
    /// buffers when available. Returns the slot map and the
    /// already-filled prefix alongside the fresh vector (children are
    /// processed before parents, so every child vector a node needs
    /// lives in that prefix).
    pub fn push_node(
        &mut self,
        node: u32,
        n_borders: usize,
    ) -> (&SlotMap, &[NodeVec], &mut NodeVec) {
        let idx = self.nodes.len();
        self.nodes.push(node);
        self.map.set(node, idx as u32);
        if self.vecs.len() == idx {
            self.vecs.push(NodeVec::default());
        }
        let (done, rest) = self.vecs.split_at_mut(idx);
        let nv = &mut rest[0];
        nv.dists.clear();
        nv.dists.resize(n_borders, f64::INFINITY);
        nv.prov.clear();
        nv.prov.resize(n_borders, Prov::Seed { vertex: u32::MAX });
        (&self.map, done, nv)
    }

    #[inline]
    pub fn get(&self, node: u32) -> Option<&NodeVec> {
        self.map.get(node).map(|s| &self.vecs[s as usize])
    }

    #[inline]
    pub fn contains(&self, node: u32) -> bool {
        self.map.get(node).is_some()
    }

    #[inline]
    pub fn seeds_leaf(&self, leaf: u32) -> bool {
        self.leaves.binary_search(&leaf).is_ok()
    }
}

/// Candidate object set for kNN/range with an exactly-cached k-th-best
/// bound.
///
/// The bound is the k-th smallest upper bound in `map`. Mutations only
/// tighten values or add entries, so the k-th smallest is monotone
/// non-increasing — the cached value stays exact unless a mutation
/// introduces a value strictly below it (then it is recomputed lazily).
/// A lazy-deletion heap would NOT be correct here: candidates tighten
/// downward, and a stale (larger) copy of one object surviving in the
/// heap can report a k-th-best below the true one, breaking the
/// branch-and-bound's exactness.
#[derive(Debug, Default)]
pub(crate) struct Candidates {
    pub map: HashMap<u32, f64>,
    vals: Vec<f64>,
    cached: f64,
    dirty: bool,
}

impl Candidates {
    pub fn begin(&mut self) {
        self.map.clear();
        self.cached = f64::INFINITY;
        self.dirty = true;
    }

    #[inline]
    pub fn tighten(&mut self, oid: u32, d: f64) {
        let e = self.map.entry(oid).or_insert(f64::INFINITY);
        if d < *e {
            *e = d;
            if d < self.cached {
                self.dirty = true;
            }
        }
    }

    /// The k-th smallest candidate value (∞ while fewer than `k`
    /// candidates exist). While `map.len() < k` the cache is never
    /// consulted, and it is recomputed before first use past that point
    /// (`dirty` starts true and is only cleared here).
    pub fn kth_bound(&mut self, k: usize) -> f64 {
        if self.map.len() < k {
            return f64::INFINITY;
        }
        if self.dirty {
            self.vals.clear();
            self.vals.extend(self.map.values().copied());
            let (_, kth, _) = self.vals.select_nth_unstable_by(k - 1, f64::total_cmp);
            self.cached = *kth;
            self.dirty = false;
        }
        self.cached
    }
}

/// Everything one G-tree query needs, reused across queries.
#[derive(Debug, Default)]
pub(crate) struct GScratch {
    pub asc_s: GAscentBuf,
    pub asc_t: GAscentBuf,
    /// Hoisted matrix column indices (`u32::MAX` = absent).
    pub col_buf: Vec<u32>,
    /// Derived child border vector under construction.
    pub cvec: Vec<f64>,
    /// Flat arena of border vectors owned by the kNN/range heap.
    pub arena_data: Vec<f64>,
    pub arena_spans: Vec<(u32, u32)>,
    pub heap: BinaryHeap<Reverse<(TotalF64, u32, u32)>>,
    pub cand: Candidates,
    /// Per-object accumulator for border-major leaf table walks.
    pub leaf_acc: Vec<f64>,
}

impl GScratch {
    pub fn arena_push(data: &mut Vec<f64>, spans: &mut Vec<(u32, u32)>, v: &[f64]) -> u32 {
        let start = data.len() as u32;
        data.extend_from_slice(v);
        spans.push((start, v.len() as u32));
        (spans.len() - 1) as u32
    }

    pub fn arena_get<'a>(data: &'a [f64], spans: &[(u32, u32)], h: u32) -> &'a [f64] {
        let (start, len) = spans[h as usize];
        &data[start as usize..(start + len) as usize]
    }
}

/// A mutex-guarded stack of scratches; contention is brief (pop/push).
#[derive(Debug, Default)]
pub(crate) struct GScratchPool {
    slots: Mutex<Vec<GScratch>>,
}

impl GScratchPool {
    pub fn checkout(&self) -> PooledGScratch<'_> {
        let s = self
            .slots
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledGScratch {
            pool: self,
            scratch: Some(s),
        }
    }
}

/// RAII checkout from a [`GScratchPool`]; returns the scratch on drop.
pub(crate) struct PooledGScratch<'a> {
    pool: &'a GScratchPool,
    scratch: Option<GScratch>,
}

impl std::ops::Deref for PooledGScratch<'_> {
    type Target = GScratch;
    fn deref(&self) -> &GScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledGScratch<'_> {
    fn deref_mut(&mut self) -> &mut GScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledGScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool
                .slots
                .lock()
                .expect("scratch pool poisoned")
                .push(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_map_epochs_isolate_queries() {
        let mut m = SlotMap::default();
        m.begin(4);
        m.set(2, 7);
        assert_eq!(m.get(2), Some(7));
        assert_eq!(m.get(3), None);
        m.begin(4);
        assert_eq!(m.get(2), None, "previous epoch's entries are gone");
    }

    /// The regression the cached bound must not reintroduce: a candidate
    /// tightened downward leaves a stale larger value nowhere (unlike a
    /// lazy-deletion heap), so the k-th bound is always the true one.
    #[test]
    fn cached_kth_bound_is_exact_under_tightening() {
        let mut c = Candidates::default();
        c.begin();
        c.tighten(0, 1.2);
        c.tighten(1, 5.0);
        assert_eq!(c.kth_bound(3), f64::INFINITY);
        assert_eq!(c.kth_bound(2), 5.0);
        // Tighten object 0: 1.2 → 1.0. Bound stays 5.0 (true k-th), not
        // 1.2 as a stale-copy heap would claim.
        c.tighten(0, 1.0);
        assert_eq!(c.kth_bound(2), 5.0);
        // A genuinely smaller second value moves the bound.
        c.tighten(2, 0.5);
        assert_eq!(c.kth_bound(2), 1.0);
        // Loosening attempts are ignored.
        c.tighten(2, 9.0);
        assert_eq!(c.kth_bound(2), 1.0);
    }

    #[test]
    fn pool_reuses_scratches() {
        let pool = GScratchPool::default();
        {
            let mut s = pool.checkout();
            s.cvec.resize(64, 0.0);
        }
        let s = pool.checkout();
        assert!(s.cvec.capacity() >= 64, "buffer came back");
    }
}
