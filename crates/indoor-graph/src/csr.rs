/// An immutable undirected weighted graph in compressed-sparse-row form.
///
/// Vertices are dense `u32` identifiers `0..num_vertices()`. Each undirected
/// edge is stored twice (once per direction), which matches the edge-count
/// convention of the VIP-Tree paper's Table 2 (the D2D graph sizes there
/// count directed arcs).
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrGraph {
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs (twice the number of undirected edges).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Outgoing neighbours of `v` as parallel `(target, weight)` slices.
    #[inline]
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Weight of the arc `u -> v` if present (the minimum if parallel arcs
    /// were merged at build time there is exactly one).
    pub fn arc_weight(&self, u: u32, v: u32) -> Option<f64> {
        self.neighbors(u)
            .find_map(|(t, w)| if t == v { Some(w) } else { None })
    }

    /// Heap memory consumed by the graph structure itself.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.targets.len() * 4 + self.weights.len() * 8
    }

    /// Maximum out-degree over all vertices (the paper highlights that
    /// indoor D2D graphs reach out-degrees of ~400 versus 2-4 for roads).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Vertex ids of one connected component per entry, using BFS; used by
    /// venue validation to detect unreachable areas.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut comps = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n as u32 {
            if seen[start as usize] {
                continue;
            }
            seen[start as usize] = true;
            queue.push_back(start);
            let mut comp = vec![start];
            while let Some(v) = queue.pop_front() {
                for (t, _) in self.neighbors(v) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        comp.push(t);
                        queue.push_back(t);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }
}

/// Incremental builder accumulating undirected edges, deduplicating
/// parallel edges by keeping the minimum weight.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    /// (source, target, weight) triples; both directions inserted.
    arcs: Vec<(u32, u32, f64)>,
}

impl GraphBuilder {
    pub fn new(num_vertices: usize) -> Self {
        GraphBuilder {
            num_vertices,
            arcs: Vec::new(),
        }
    }

    /// Pre-size the arc buffer (`hint` is in undirected edges).
    pub fn with_edge_capacity(num_vertices: usize, hint: usize) -> Self {
        GraphBuilder {
            num_vertices,
            arcs: Vec::with_capacity(hint * 2),
        }
    }

    /// Add an undirected edge. Self-loops are ignored (they can never be on
    /// a shortest path with non-negative weights).
    pub fn add_edge(&mut self, u: u32, v: u32, w: f64) {
        debug_assert!(w >= 0.0, "negative edge weight {w}");
        debug_assert!((u as usize) < self.num_vertices && (v as usize) < self.num_vertices);
        if u == v {
            return;
        }
        self.arcs.push((u, v, w));
        self.arcs.push((v, u, w));
    }

    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Finalise into CSR form: counting sort by source, then per-vertex sort
    /// by target with parallel-edge deduplication (min weight wins).
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        let mut counts = vec![0u32; n + 1];
        for &(u, _, _) in &self.arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut offsets = counts.clone();
        let mut targets = vec![0u32; self.arcs.len()];
        let mut weights = vec![0f64; self.arcs.len()];
        for &(u, v, w) in &self.arcs {
            let slot = offsets[u as usize] as usize;
            targets[slot] = v;
            weights[slot] = w;
            offsets[u as usize] += 1;
        }
        self.arcs.clear();
        self.arcs.shrink_to_fit();

        // Deduplicate parallel arcs per vertex, keeping the minimum weight.
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(targets.len());
        let mut out_weights = Vec::with_capacity(weights.len());
        out_offsets.push(0u32);
        let mut scratch: Vec<(u32, f64)> = Vec::new();
        for v in 0..n {
            let start = if v == 0 { 0 } else { offsets[v - 1] as usize };
            let end = offsets[v] as usize;
            scratch.clear();
            scratch.extend(
                targets[start..end]
                    .iter()
                    .copied()
                    .zip(weights[start..end].iter().copied()),
            );
            scratch.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
            scratch.dedup_by(|next, kept| {
                // `kept` precedes `next`; equal targets keep the first
                // (smallest-weight) entry because of the sort order.
                next.0 == kept.0
            });
            out_targets.extend(scratch.iter().map(|e| e.0));
            out_weights.extend(scratch.iter().map(|e| e.1));
            out_offsets.push(out_targets.len() as u32);
        }

        CsrGraph {
            offsets: out_offsets,
            targets: out_targets,
            weights: out_weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(0, 2, 4.0);
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1.0), (2, 4.0)]);
        assert_eq!(g.arc_weight(2, 1), Some(2.0));
        assert_eq!(g.arc_weight(2, 2), None);
    }

    #[test]
    fn parallel_edges_keep_minimum() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5.0);
        b.add_edge(0, 1, 3.0);
        b.add_edge(1, 0, 7.0);
        let g = b.build();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.arc_weight(0, 1), Some(3.0));
        assert_eq!(g.arc_weight(1, 0), Some(3.0));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn isolated_vertices_allowed() {
        let b = GraphBuilder::new(4);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.connected_components().len(), 4);
    }

    #[test]
    fn components_found() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![2, 2, 1]);
    }

    #[test]
    fn max_degree() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
    }
}
