use crate::CsrGraph;
use geometry::TotalF64;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel parent/vertex value meaning "none".
pub const NO_VERTEX: u32 = u32::MAX;

/// How a Dijkstra run decides it is finished.
#[derive(Debug, Clone)]
pub enum Termination<'a> {
    /// Settle every reachable vertex.
    Exhaust,
    /// Stop once all listed vertices have been settled (or the frontier is
    /// empty). Duplicates in the slice are permitted.
    SettleAll(&'a [u32]),
    /// Stop once the tentative frontier minimum exceeds the bound: every
    /// vertex with distance <= bound is then settled.
    Bound(f64),
}

/// Result summary of a search; distances/parents live in the engine and are
/// read through [`DijkstraEngine::distance`] / [`DijkstraEngine::parent`].
#[derive(Debug, Clone, Copy)]
pub struct SearchOutcome {
    /// Vertices settled (popped with final distance).
    pub settled: usize,
    /// For `SettleAll`: how many of the requested targets were reached.
    pub targets_reached: usize,
}

/// A reusable Dijkstra workspace over graphs of a fixed vertex count.
///
/// Index construction runs thousands of searches over the same D2D graph;
/// allocating and zeroing `O(V)` state per search would dominate. The
/// engine keeps distance/parent arrays across runs and invalidates them
/// with a generation counter, so starting a new search is `O(1)`.
#[derive(Debug)]
pub struct DijkstraEngine {
    dist: Vec<f64>,
    parent: Vec<u32>,
    /// Generation stamp per vertex; an entry is valid iff stamp == current.
    stamp: Vec<u32>,
    settled: Vec<bool>,
    generation: u32,
    heap: BinaryHeap<Reverse<(TotalF64, u32)>>,
}

impl DijkstraEngine {
    pub fn new(num_vertices: usize) -> Self {
        DijkstraEngine {
            dist: vec![f64::INFINITY; num_vertices],
            parent: vec![NO_VERTEX; num_vertices],
            stamp: vec![0; num_vertices],
            settled: vec![false; num_vertices],
            generation: 0,
            heap: BinaryHeap::new(),
        }
    }

    #[inline]
    fn valid(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.generation
    }

    /// Distance of `v` from the source set in the most recent run, if it
    /// was labelled (settled or still on the frontier when the run ended;
    /// frontier labels are upper bounds, settled labels are exact).
    #[inline]
    pub fn distance(&self, v: u32) -> Option<f64> {
        if self.valid(v) {
            Some(self.dist[v as usize])
        } else {
            None
        }
    }

    /// Exact distance of `v` if it was settled in the most recent run.
    #[inline]
    pub fn settled_distance(&self, v: u32) -> Option<f64> {
        if self.valid(v) && self.settled[v as usize] {
            Some(self.dist[v as usize])
        } else {
            None
        }
    }

    /// Predecessor of `v` on its shortest path from the source set
    /// (`NO_VERTEX` for sources).
    #[inline]
    pub fn parent(&self, v: u32) -> Option<u32> {
        if self.valid(v) {
            Some(self.parent[v as usize])
        } else {
            None
        }
    }

    /// The vertex sequence from a source to `v` (inclusive), following
    /// parent pointers; `None` if `v` was not reached.
    pub fn path_to(&self, v: u32) -> Option<Vec<u32>> {
        if !self.valid(v) {
            return None;
        }
        let mut seq = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            if p == NO_VERTEX {
                break;
            }
            seq.push(p);
            cur = p;
        }
        seq.reverse();
        Some(seq)
    }

    /// Run Dijkstra from a set of `(vertex, initial_distance)` seeds.
    ///
    /// Multiple seeds implement "virtual source" searches: a query point is
    /// seeded as its partition's doors with the point-to-door distances as
    /// initial labels.
    pub fn run(
        &mut self,
        graph: &CsrGraph,
        seeds: &[(u32, f64)],
        termination: Termination<'_>,
    ) -> SearchOutcome {
        debug_assert_eq!(graph.num_vertices(), self.dist.len());
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Extremely rare wrap: force-invalidate everything.
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        self.heap.clear();

        for &(v, d) in seeds {
            if !self.valid(v) || d < self.dist[v as usize] {
                self.label(v, d, NO_VERTEX);
                self.heap.push(Reverse((TotalF64(d), v)));
            }
        }

        let mut remaining: usize = 0;
        let mut pending: Vec<u32> = Vec::new();
        if let Termination::SettleAll(targets) = &termination {
            // Deduplicate target list via a temporary stamp-free scan.
            pending = targets.to_vec();
            pending.sort_unstable();
            pending.dedup();
            remaining = pending.len();
        }

        let mut settled_count = 0usize;
        let mut targets_reached = 0usize;

        while let Some(Reverse((TotalF64(d), v))) = self.heap.pop() {
            if self.settled[v as usize] && self.valid(v) {
                continue; // stale heap entry
            }
            if let Termination::Bound(bound) = termination {
                if d > bound {
                    break;
                }
            }
            self.settled[v as usize] = true;
            settled_count += 1;

            if remaining > 0 && pending.binary_search(&v).is_ok() {
                targets_reached += 1;
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }

            for (t, w) in graph.neighbors(v) {
                let nd = d + w;
                if !self.valid(t) || nd < self.dist[t as usize] {
                    self.label(t, nd, v);
                    self.heap.push(Reverse((TotalF64(nd), t)));
                }
            }
        }

        SearchOutcome {
            settled: settled_count,
            targets_reached,
        }
    }

    /// Dijkstra over an *implicit* graph: `neighbors(v, out)` fills `out`
    /// with the `(target, weight)` arcs of `v` on demand. Used by ROAD,
    /// whose search space (route-overlay shortcuts vs. original edges) is
    /// decided per query. Vertex ids must stay below the engine's size.
    pub fn run_dynamic(
        &mut self,
        seeds: &[(u32, f64)],
        mut neighbors: impl FnMut(u32, &mut Vec<(u32, f64)>),
        mut visit: impl FnMut(u32, f64) -> std::ops::ControlFlow<()>,
    ) -> SearchOutcome {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        self.heap.clear();
        for &(v, d) in seeds {
            if !self.valid(v) || d < self.dist[v as usize] {
                self.label(v, d, NO_VERTEX);
                self.heap.push(Reverse((TotalF64(d), v)));
            }
        }
        let mut settled_count = 0usize;
        let mut arcs: Vec<(u32, f64)> = Vec::new();
        while let Some(Reverse((TotalF64(d), v))) = self.heap.pop() {
            if self.settled[v as usize] && self.valid(v) {
                continue;
            }
            self.settled[v as usize] = true;
            settled_count += 1;
            if visit(v, d).is_break() {
                break;
            }
            arcs.clear();
            neighbors(v, &mut arcs);
            for &(t, w) in &arcs {
                debug_assert!(w >= 0.0);
                let nd = d + w;
                if !self.valid(t) || nd < self.dist[t as usize] {
                    self.label(t, nd, v);
                    self.heap.push(Reverse((TotalF64(nd), t)));
                }
            }
        }
        SearchOutcome {
            settled: settled_count,
            targets_reached: 0,
        }
    }

    /// Run Dijkstra invoking `visit(vertex, distance)` on every settle, in
    /// ascending distance order; the search stops when the visitor returns
    /// `ControlFlow::Break` (or the frontier empties). Used by
    /// expansion-based competitors (the distance-aware model) whose
    /// termination conditions depend on query state.
    pub fn run_visit(
        &mut self,
        graph: &CsrGraph,
        seeds: &[(u32, f64)],
        mut visit: impl FnMut(u32, f64) -> std::ops::ControlFlow<()>,
    ) -> SearchOutcome {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        self.heap.clear();
        for &(v, d) in seeds {
            if !self.valid(v) || d < self.dist[v as usize] {
                self.label(v, d, NO_VERTEX);
                self.heap.push(Reverse((TotalF64(d), v)));
            }
        }
        let mut settled_count = 0usize;
        while let Some(Reverse((TotalF64(d), v))) = self.heap.pop() {
            if self.settled[v as usize] && self.valid(v) {
                continue;
            }
            self.settled[v as usize] = true;
            settled_count += 1;
            if visit(v, d).is_break() {
                break;
            }
            for (t, w) in graph.neighbors(v) {
                let nd = d + w;
                if !self.valid(t) || nd < self.dist[t as usize] {
                    self.label(t, nd, v);
                    self.heap.push(Reverse((TotalF64(nd), t)));
                }
            }
        }
        SearchOutcome {
            settled: settled_count,
            targets_reached: 0,
        }
    }

    /// Point-to-point search with early exit: returns the best
    /// `dist(seed_s) + dist(seed_t)` combination, i.e. the shortest distance
    /// between two virtual endpoints, and the meeting pattern
    /// `(entry door of t side)` for path recovery.
    ///
    /// `t_seeds` are `(vertex, exit_cost)` pairs: reaching vertex `v` with
    /// label `d` yields a candidate route of length `d + exit_cost`.
    pub fn point_to_point(
        &mut self,
        graph: &CsrGraph,
        s_seeds: &[(u32, f64)],
        t_seeds: &[(u32, f64)],
    ) -> Option<(f64, u32)> {
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            self.stamp.fill(u32::MAX);
            self.generation = 1;
        }
        self.heap.clear();
        for &(v, d) in s_seeds {
            if !self.valid(v) || d < self.dist[v as usize] {
                self.label(v, d, NO_VERTEX);
                self.heap.push(Reverse((TotalF64(d), v)));
            }
        }

        let mut best: Option<(f64, u32)> = None;
        while let Some(Reverse((TotalF64(d), v))) = self.heap.pop() {
            if self.settled[v as usize] && self.valid(v) {
                continue;
            }
            if let Some((b, _)) = best {
                if d >= b {
                    break; // no frontier label can improve the answer
                }
            }
            self.settled[v as usize] = true;
            for &(tv, exit) in t_seeds {
                if tv == v {
                    let cand = d + exit;
                    if best.is_none_or(|(b, _)| cand < b) {
                        best = Some((cand, v));
                    }
                }
            }
            for (t, w) in graph.neighbors(v) {
                let nd = d + w;
                if !self.valid(t) || nd < self.dist[t as usize] {
                    self.label(t, nd, v);
                    self.heap.push(Reverse((TotalF64(nd), t)));
                }
            }
        }
        best
    }

    #[inline]
    fn label(&mut self, v: u32, d: f64, parent: u32) {
        self.dist[v as usize] = d;
        self.parent[v as usize] = parent;
        self.stamp[v as usize] = self.generation;
        self.settled[v as usize] = false;
    }

    /// Number of vertices this engine was sized for.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.dist.len()
    }
}

/// A checkout pool of [`DijkstraEngine`]s for parallel build phases.
///
/// Allocating and zeroing the `O(V)` engine state once per *worker* rather
/// than once per *task* is what keeps the parallel fan-out allocation-lean:
/// a worker checks an engine out, runs any number of searches (the
/// generation stamp isolates them), and returns it on drop for the next
/// parallel phase over the same graph.
#[derive(Debug)]
pub struct EnginePool {
    num_vertices: usize,
    free: std::sync::Mutex<Vec<DijkstraEngine>>,
}

impl EnginePool {
    /// An empty pool producing engines for graphs of `num_vertices`.
    pub fn new(num_vertices: usize) -> EnginePool {
        EnginePool {
            num_vertices,
            free: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Check an engine out, creating one if none is free.
    pub fn checkout(&self) -> PooledEngine<'_> {
        let engine = self
            .free
            .lock()
            .expect("engine pool poisoned")
            .pop()
            .unwrap_or_else(|| DijkstraEngine::new(self.num_vertices));
        PooledEngine {
            pool: self,
            engine: Some(engine),
        }
    }

    /// Pre-populate the pool with engines up to `n` free entries, so the
    /// first wave of concurrent checkouts does not pay the `O(V)`
    /// allocation inside a timed or latency-sensitive region.
    pub fn warm(&self, n: usize) {
        let mut free = self.free.lock().expect("engine pool poisoned");
        while free.len() < n {
            free.push(DijkstraEngine::new(self.num_vertices));
        }
    }
}

/// RAII checkout from an [`EnginePool`]; derefs to [`DijkstraEngine`].
#[derive(Debug)]
pub struct PooledEngine<'a> {
    pool: &'a EnginePool,
    engine: Option<DijkstraEngine>,
}

impl std::ops::Deref for PooledEngine<'_> {
    type Target = DijkstraEngine;
    fn deref(&self) -> &DijkstraEngine {
        self.engine.as_ref().expect("engine present until drop")
    }
}

impl std::ops::DerefMut for PooledEngine<'_> {
    fn deref_mut(&mut self) -> &mut DijkstraEngine {
        self.engine.as_mut().expect("engine present until drop")
    }
}

impl Drop for PooledEngine<'_> {
    fn drop(&mut self) {
        if let Some(engine) = self.engine.take() {
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(engine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// 0 -1- 1 -1- 2 -1- 3, plus a 10.0 shortcut 0-3.
    fn line_with_shortcut() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(0, 3, 10.0);
        b.build()
    }

    #[test]
    fn exhaustive_distances_and_paths() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        let out = e.run(&g, &[(0, 0.0)], Termination::Exhaust);
        assert_eq!(out.settled, 4);
        assert_eq!(e.settled_distance(3), Some(3.0));
        assert_eq!(e.path_to(3).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn settle_all_terminates_early() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        let out = e.run(&g, &[(0, 0.0)], Termination::SettleAll(&[1]));
        assert_eq!(out.targets_reached, 1);
        assert!(out.settled <= 2);
        assert_eq!(e.settled_distance(1), Some(1.0));
    }

    #[test]
    fn bound_cuts_off() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        e.run(&g, &[(0, 0.0)], Termination::Bound(1.5));
        assert_eq!(e.settled_distance(1), Some(1.0));
        assert_eq!(e.settled_distance(3), None);
    }

    #[test]
    fn multi_seed_virtual_source() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        e.run(&g, &[(0, 5.0), (2, 0.5)], Termination::Exhaust);
        // Vertex 1 best reached from seed 2 (0.5 + 1.0) not seed 0 (5 + 1).
        assert_eq!(e.settled_distance(1), Some(1.5));
        assert_eq!(e.parent(1), Some(2));
    }

    #[test]
    fn generation_reset_isolates_runs() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        e.run(&g, &[(0, 0.0)], Termination::Exhaust);
        e.run(&g, &[(3, 0.0)], Termination::SettleAll(&[3]));
        // Distances from the first run must not leak.
        assert_eq!(e.settled_distance(0), None);
        assert_eq!(e.settled_distance(3), Some(0.0));
    }

    #[test]
    fn point_to_point_early_exit() {
        let g = line_with_shortcut();
        let mut e = DijkstraEngine::new(4);
        let (d, via) = e
            .point_to_point(&g, &[(0, 0.2)], &[(3, 0.3), (2, 5.0)])
            .unwrap();
        assert!((d - 3.5).abs() < 1e-12, "got {d}");
        assert_eq!(via, 3);
    }

    #[test]
    fn pool_reuses_engines_and_isolates_runs() {
        let g = line_with_shortcut();
        let pool = EnginePool::new(4);
        {
            let mut e = pool.checkout();
            e.run(&g, &[(0, 0.0)], Termination::Exhaust);
            assert_eq!(e.settled_distance(3), Some(3.0));
        }
        // The returned engine is reused; generation stamps isolate the runs.
        let mut e = pool.checkout();
        e.run(&g, &[(3, 0.0)], Termination::SettleAll(&[3]));
        assert_eq!(e.settled_distance(0), None);
        drop(e);
        // Warming tops the free list up without discarding returned engines.
        pool.warm(3);
        assert_eq!(pool.free.lock().unwrap().len(), 3);
        pool.warm(1);
        assert_eq!(pool.free.lock().unwrap().len(), 3, "warm never shrinks");
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let mut e = DijkstraEngine::new(3);
        let out = e.run(&g, &[(0, 0.0)], Termination::SettleAll(&[2]));
        assert_eq!(out.targets_reached, 0);
        assert_eq!(e.distance(2), None);
        assert!(e.point_to_point(&g, &[(0, 0.0)], &[(2, 0.0)]).is_none());
    }
}
