//! Weighted-graph substrate shared by every index in this workspace.
//!
//! The indoor door-to-door (D2D) graph, the level-`l` graphs used to build
//! IP/VIP-tree distance matrices, the border graphs of G-tree, and the
//! hybrid overlay graph of ROAD are all instances of [`CsrGraph`]: a
//! compact, immutable, undirected weighted graph in compressed-sparse-row
//! form.
//!
//! Query processing is dominated by repeated Dijkstra searches, so the
//! crate provides a reusable [`DijkstraEngine`] with epoch-based state
//! reset (no `O(V)` clearing between runs) and several termination modes:
//! exhaustive, settle-a-target-set, and distance-bounded.

mod csr;
mod dijkstra;
mod oracle;
pub mod parallel;

pub use csr::{CsrGraph, GraphBuilder};
pub use dijkstra::{
    DijkstraEngine, EnginePool, PooledEngine, SearchOutcome, Termination, NO_VERTEX,
};
pub use oracle::floyd_warshall;
