use crate::CsrGraph;

/// All-pairs shortest distances by Floyd–Warshall.
///
/// `O(V^3)` — strictly a test oracle for cross-validating Dijkstra, the
/// tree distance matrices, and the baselines on small graphs.
#[allow(clippy::needless_range_loop)] // index triples are the clearest form of F-W
pub fn floyd_warshall(graph: &CsrGraph) -> Vec<Vec<f64>> {
    let n = graph.num_vertices();
    let mut dist = vec![vec![f64::INFINITY; n]; n];
    for v in 0..n {
        dist[v][v] = 0.0;
    }
    for u in 0..n as u32 {
        for (v, w) in graph.neighbors(u) {
            let entry = &mut dist[u as usize][v as usize];
            if w < *entry {
                *entry = w;
            }
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i][k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let alt = dik + dist[k][j];
                if alt < dist[i][j] {
                    dist[i][j] = alt;
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DijkstraEngine, GraphBuilder, Termination};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_hand_computed() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(0, 3, 10.0);
        let d = floyd_warshall(&b.build());
        assert_eq!(d[0][3], 4.0);
        assert_eq!(d[3][0], 4.0);
        assert_eq!(d[1][1], 0.0);
    }

    /// Random graph: Dijkstra from every source must equal Floyd–Warshall.
    fn random_graph(seed: u64, n: usize, extra_edges: usize) -> crate::CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        // Random spanning tree to keep it connected.
        for v in 1..n as u32 {
            let u = rng.gen_range(0..v);
            b.add_edge(u, v, rng.gen_range(0.1..10.0));
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            b.add_edge(u, v, rng.gen_range(0.1..10.0));
        }
        b.build()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn dijkstra_equals_floyd_warshall(seed in 0u64..5_000, n in 2usize..24, extra in 0usize..40) {
            let g = random_graph(seed, n, extra);
            let oracle = floyd_warshall(&g);
            let mut e = DijkstraEngine::new(n);
            for s in 0..n as u32 {
                e.run(&g, &[(s, 0.0)], Termination::Exhaust);
                for t in 0..n as u32 {
                    let got = e.settled_distance(t).unwrap_or(f64::INFINITY);
                    let want = oracle[s as usize][t as usize];
                    prop_assert!((got - want).abs() < 1e-9,
                        "s={s} t={t} got={got} want={want}");
                }
            }
        }

        #[test]
        fn path_lengths_match_distances(seed in 0u64..5_000, n in 2usize..20, extra in 0usize..30) {
            let g = random_graph(seed, n, extra);
            let mut e = DijkstraEngine::new(n);
            e.run(&g, &[(0, 0.0)], Termination::Exhaust);
            for t in 0..n as u32 {
                if let Some(d) = e.settled_distance(t) {
                    let path = e.path_to(t).unwrap();
                    prop_assert_eq!(path[0], 0);
                    prop_assert_eq!(*path.last().unwrap(), t);
                    let len: f64 = path.windows(2)
                        .map(|w| g.arc_weight(w[0], w[1]).unwrap())
                        .sum();
                    prop_assert!((len - d).abs() < 1e-9);
                }
            }
        }
    }
}
