//! Deterministic parallel-map helpers for index construction.
//!
//! The registry-less build environment has no rayon, so this module
//! provides the one primitive the builders need: map a slice through a
//! function on `T` worker threads, each owning thread-local scratch state
//! (typically a [`crate::DijkstraEngine`]), with results written into
//! their input slots. Work is distributed by an atomic cursor (dynamic
//! load balancing — leaf Dijkstra costs vary by orders of magnitude
//! between a two-door room cluster and a 400-door hallway), while output
//! placement is by index, so the result is **bit-identical regardless of
//! thread count or scheduling** as long as `f` itself is a pure function
//! of `(index, item)`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested thread count: `0` means "all available cores".
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Map `items` through `f` on up to `threads` workers (`0` = all cores).
///
/// `init` runs once per worker to create its scratch state; `f` receives
/// `(&mut state, index, item)`. The output vector is ordered by input
/// index. A panic in any worker propagates to the caller.
pub fn par_map_init<I, O, S, FInit, F>(items: &[I], threads: usize, init: FInit, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    FInit: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &I) -> O + Sync,
{
    let threads = effective_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, O)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, O)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&mut state, i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel build worker panicked"))
            .collect()
    });

    // Deterministic merge: every output lands in its input slot, whatever
    // worker produced it.
    let mut slots: Vec<Option<O>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for outputs in worker_outputs {
        for (i, o) in outputs {
            debug_assert!(slots[i].is_none(), "index {i} produced twice");
            slots[i] = Some(o);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every index produced exactly once"))
        .collect()
}

/// As [`par_map_init`] for stateless maps.
pub fn par_map<I, O, F>(items: &[I], threads: usize, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(usize, &I) -> O + Sync,
{
    par_map_init(items, threads, || (), |(), i, item| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1_000).collect();
        for threads in [1, 2, 4, 8] {
            let out = par_map(&items, threads, |i, &x| x * 2 + i as u64);
            assert_eq!(out.len(), items.len());
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, items[i] * 2 + i as u64);
            }
        }
    }

    #[test]
    fn matches_serial_bitwise() {
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let serial = par_map(&items, 1, |i, &x| (x.sin() + i as f64).to_bits());
        let parallel = par_map(&items, 7, |i, &x| (x.sin() + i as f64).to_bits());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_state_initialised_per_worker() {
        // Each worker counts its own items; the total must cover the input.
        let items: Vec<u32> = (0..257).collect();
        let out = par_map_init(
            &items,
            4,
            || 0usize,
            |count, _, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.len(), 257);
        let total_seen: usize = out.iter().filter(|(_, c)| *c == 1).count();
        assert!((1..=4).contains(&total_seen), "workers {total_seen}");
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallel build worker panicked")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = par_map(&items, 2, |_, &x| {
            assert!(x < 60, "boom");
            x
        });
    }
}
