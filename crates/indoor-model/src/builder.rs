use crate::venue::{Door, Partition, PartitionClass, PartitionKind, Venue};
use crate::{DoorId, PartitionId, BETA};
use geometry::{Point, Rect};
use indoor_graph::GraphBuilder;
use std::fmt;

/// Errors detected while assembling a venue.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A door referenced a partition id that was never registered.
    UnknownPartition {
        door: DoorId,
        partition: PartitionId,
    },
    /// A door listed the same partition on both sides.
    DoorSelfLoop { door: DoorId },
    /// A partition ended up with no doors, which would make it unreachable.
    PartitionWithoutDoors { partition: PartitionId },
    /// The venue has no partitions at all.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownPartition { door, partition } => {
                write!(f, "door {door} references unknown partition {partition}")
            }
            ModelError::DoorSelfLoop { door } => {
                write!(f, "door {door} connects a partition to itself")
            }
            ModelError::PartitionWithoutDoors { partition } => {
                write!(f, "partition {partition} has no doors")
            }
            ModelError::Empty => write!(f, "venue has no partitions"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Incremental venue construction.
///
/// ```
/// use indoor_model::{VenueBuilder, PartitionKind};
/// use geometry::{Point, Rect};
///
/// let mut b = VenueBuilder::new();
/// let room = b.add_partition(PartitionKind::Room, Rect::new(0.0, 0.0, 5.0, 5.0, 0));
/// let hall = b.add_partition(PartitionKind::Hallway, Rect::new(5.0, 0.0, 8.0, 20.0, 0));
/// b.add_door(Point::new(5.0, 2.5, 0), room, Some(hall));
/// b.add_exterior_door(Point::new(8.0, 10.0, 0), hall);
/// let venue = b.build().unwrap();
/// assert_eq!(venue.num_doors(), 2);
/// ```
#[derive(Debug)]
pub struct VenueBuilder {
    doors: Vec<Door>,
    partitions: Vec<Partition>,
    beta: usize,
}

impl Default for VenueBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl VenueBuilder {
    pub fn new() -> Self {
        VenueBuilder {
            doors: Vec::new(),
            partitions: Vec::new(),
            beta: BETA,
        }
    }

    /// Override the hallway-classification threshold β (default 4).
    pub fn with_beta(mut self, beta: usize) -> Self {
        self.beta = beta;
        self
    }

    pub fn add_partition(&mut self, kind: PartitionKind, extent: Rect) -> PartitionId {
        let id = PartitionId(self.partitions.len() as u32);
        self.partitions.push(Partition {
            id,
            kind,
            level: extent.level,
            extent,
            doors: Vec::new(),
            fixed_traversal_weight: None,
        });
        id
    }

    /// Set a fixed traversal weight for a partition (e.g. 0 for a lift when
    /// edge weights model walking distance; see §2 of the paper).
    pub fn set_fixed_traversal_weight(&mut self, p: PartitionId, weight: f64) {
        self.partitions[p.index()].fixed_traversal_weight = Some(weight);
    }

    /// Add a door between `a` and (optionally) `b`; `None` makes it an
    /// exterior door.
    pub fn add_door(&mut self, position: Point, a: PartitionId, b: Option<PartitionId>) -> DoorId {
        let id = DoorId(self.doors.len() as u32);
        self.doors.push(Door {
            id,
            position,
            partitions: [Some(a), b],
        });
        id
    }

    pub fn add_exterior_door(&mut self, position: Point, a: PartitionId) -> DoorId {
        self.add_door(position, a, None)
    }

    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    /// Validate, classify partitions, build the D2D graph, and freeze.
    pub fn build(mut self) -> Result<Venue, ModelError> {
        if self.partitions.is_empty() {
            return Err(ModelError::Empty);
        }

        // Wire doors into partitions (validating references).
        for door in &self.doors {
            for pid in door.partition_ids() {
                if pid.index() >= self.partitions.len() {
                    return Err(ModelError::UnknownPartition {
                        door: door.id,
                        partition: pid,
                    });
                }
            }
            if let [Some(a), Some(b)] = door.partitions {
                if a == b {
                    return Err(ModelError::DoorSelfLoop { door: door.id });
                }
            }
        }
        for door in &self.doors {
            let id = door.id;
            for pid in door.partitions.iter().flatten() {
                self.partitions[pid.index()].doors.push(id);
            }
        }
        for p in &mut self.partitions {
            p.doors.sort_unstable();
            p.doors.dedup();
            if p.doors.is_empty() {
                return Err(ModelError::PartitionWithoutDoors { partition: p.id });
            }
        }

        // Classification (§2): 1 door => no-through; > β doors => hallway.
        let beta = self.beta;
        let classes: Vec<PartitionClass> = self
            .partitions
            .iter()
            .map(|p| match p.doors.len() {
                1 => PartitionClass::NoThrough,
                n if n > beta => PartitionClass::Hallway,
                _ => PartitionClass::General,
            })
            .collect();

        // D2D graph: clique over the doors of each partition.
        let edge_hint: usize = self
            .partitions
            .iter()
            .map(|p| p.doors.len() * (p.doors.len().saturating_sub(1)) / 2)
            .sum();
        let mut gb = GraphBuilder::with_edge_capacity(self.doors.len(), edge_hint);
        for p in &self.partitions {
            for (i, &da) in p.doors.iter().enumerate() {
                for &db in &p.doors[i + 1..] {
                    let w = p.traversal_distance(
                        &self.doors[da.index()].position,
                        &self.doors[db.index()].position,
                    );
                    gb.add_edge(da.0, db.0, w);
                }
            }
        }

        Ok(Venue {
            doors: self.doors,
            partitions: self.partitions,
            classes,
            d2d: gb.build(),
            beta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn room(level: i32, i: usize) -> Rect {
        let x = i as f64 * 6.0;
        Rect::new(x, 0.0, x + 5.0, 5.0, level)
    }

    #[test]
    fn simple_venue_builds() {
        let mut b = VenueBuilder::new();
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
        let mut rooms = Vec::new();
        for i in 0..5 {
            let r = b.add_partition(PartitionKind::Room, room(0, i));
            b.add_door(Point::new(i as f64 * 6.0 + 2.5, 5.0, 0), r, Some(hall));
            rooms.push(r);
        }
        b.add_exterior_door(Point::new(0.0, 6.5, 0), hall);
        let v = b.build().unwrap();

        assert_eq!(v.num_partitions(), 6);
        assert_eq!(v.num_doors(), 6);
        // Hallway has 6 doors (> β = 4) => Hallway class; rooms => NoThrough.
        assert_eq!(v.class(hall), PartitionClass::Hallway);
        for r in rooms {
            assert_eq!(v.class(r), PartitionClass::NoThrough);
        }
        // D2D: clique over 6 hallway doors = 15 undirected = 30 arcs.
        assert_eq!(v.d2d().num_arcs(), 30);
        let stats = v.stats();
        assert_eq!(stats.hallways, 1);
        assert_eq!(stats.no_through, 5);
        assert_eq!(stats.max_out_degree, 5);
    }

    #[test]
    fn fixed_traversal_weight_applies() {
        let mut b = VenueBuilder::new();
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(0.0, 0.0, 2.0, 2.0, 0));
        let h0 = b.add_partition(PartitionKind::Hallway, Rect::new(2.0, 0.0, 10.0, 2.0, 0));
        let h1 = b.add_partition(PartitionKind::Hallway, Rect::new(2.0, 0.0, 10.0, 2.0, 1));
        b.set_fixed_traversal_weight(lift, 0.0);
        let d0 = b.add_door(Point::new(2.0, 1.0, 0), lift, Some(h0));
        let d1 = b.add_door(Point::new(2.0, 1.0, 1), lift, Some(h1));
        b.add_exterior_door(Point::new(10.0, 1.0, 0), h0);
        b.add_exterior_door(Point::new(10.0, 1.0, 1), h1);
        let v = b.build().unwrap();
        assert_eq!(v.d2d().arc_weight(d0.0, d1.0), Some(0.0));
    }

    #[test]
    fn ab_graph_matches_interior_doors() {
        let mut b = VenueBuilder::new();
        let a = b.add_partition(PartitionKind::Room, room(0, 0));
        let c = b.add_partition(PartitionKind::Room, room(0, 1));
        b.add_door(Point::new(5.5, 2.5, 0), a, Some(c));
        b.add_door(Point::new(5.5, 4.0, 0), a, Some(c));
        b.add_exterior_door(Point::new(0.0, 2.5, 0), a);
        let v = b.build().unwrap();
        let ab = v.ab_edges();
        assert_eq!(ab.len(), 2); // one AB edge per interior door (Fig 2b)
        assert!(ab.iter().all(|e| e.from == a && e.to == c));
        let adj = v.adjacent_partitions(a);
        assert_eq!(adj, vec![(c, 2)]);
    }

    #[test]
    fn errors_detected() {
        assert_eq!(VenueBuilder::new().build().unwrap_err(), ModelError::Empty);

        let mut b = VenueBuilder::new();
        let p = b.add_partition(PartitionKind::Room, room(0, 0));
        b.add_door(Point::new(0.0, 0.0, 0), p, Some(p));
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::DoorSelfLoop { .. }
        ));

        let mut b = VenueBuilder::new();
        let _empty = b.add_partition(PartitionKind::Room, room(0, 0));
        assert!(matches!(
            b.build().unwrap_err(),
            ModelError::PartitionWithoutDoors { .. }
        ));
    }

    #[test]
    fn no_through_door_detection() {
        let mut b = VenueBuilder::new();
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
        let dead = b.add_partition(PartitionKind::Room, room(0, 0));
        let thru = b.add_partition(PartitionKind::Room, room(0, 1));
        let hall2 = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 8.0, 30.0, 11.0, 0));
        let d_dead = b.add_door(Point::new(2.5, 5.0, 0), dead, Some(hall));
        let _d_thru1 = b.add_door(Point::new(8.5, 5.0, 0), thru, Some(hall));
        b.add_door(Point::new(8.5, 8.0, 0), thru, Some(hall2));
        b.add_exterior_door(Point::new(0.0, 9.0, 0), hall2);
        let v = b.build().unwrap();

        assert!(v.leads_to_no_through(d_dead, hall));
        let through: Vec<_> = v.through_doors(hall).collect();
        assert!(!through.contains(&d_dead));
        assert_eq!(through.len(), 1);
    }
}
