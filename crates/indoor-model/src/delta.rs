//! Object churn vocabulary: typed deltas against a venue's object set.
//!
//! The VIP-tree targets venues whose *tree* is static — walls do not move —
//! but whose *objects* (shops, people, tagged assets) churn constantly; the
//! indoor-query experimental study treats cheap object updates as the
//! defining workload of indoor serving. [`ObjectDelta`] captures that
//! workload as data: insert/remove/move against stable [`ObjectId`]s, so
//! an update stream is a `&[ObjectDelta]` batch the same way a query
//! stream is a `&[QueryRequest]` batch ([`crate::QueryRequest`]).
//!
//! # Identity
//!
//! Ids are **caller-assigned and stable**: an object keeps its id across
//! moves, and a removed id may be re-inserted later (a tag that went out
//! of range and came back). Indexes treat the id as a dense slot — ids
//! should stay reasonably compact, like the positional ids `build`
//! assigns.
//!
//! [`ObjectUpdate`] pairs a delta with the labels a keyword index needs on
//! insert; plain distance indexes ignore the labels.

use crate::{IndoorPoint, ObjectId, PartitionId};
use std::fmt;

/// One mutation of a venue's object set, keyed by stable [`ObjectId`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectDelta {
    /// Place a new object at `at` under id `id` (the id must not be live;
    /// re-using the id of a previously removed object is allowed).
    Insert { id: ObjectId, at: IndoorPoint },
    /// Remove the live object `id`.
    Remove { id: ObjectId },
    /// Relocate the live object `id` to `to` (same id, new position —
    /// the tracked-asset update of moving-object workloads).
    Move { id: ObjectId, to: IndoorPoint },
}

impl ObjectDelta {
    /// The id the delta is keyed by.
    #[inline]
    pub fn id(&self) -> ObjectId {
        match self {
            ObjectDelta::Insert { id, .. }
            | ObjectDelta::Remove { id }
            | ObjectDelta::Move { id, .. } => *id,
        }
    }

    /// The new position the delta establishes (`None` for removals).
    #[inline]
    pub fn position(&self) -> Option<IndoorPoint> {
        match self {
            ObjectDelta::Insert { at, .. } => Some(*at),
            ObjectDelta::Move { to, .. } => Some(*to),
            ObjectDelta::Remove { .. } => None,
        }
    }
}

/// A delta plus the labels a keyword (inverted-list) index needs.
///
/// `labels` are consumed by `Insert` (the new object's terms); `Move`
/// keeps the object's existing labels and `Remove` needs none, so both
/// ignore the field. Plain distance indexes ignore it entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectUpdate {
    pub delta: ObjectDelta,
    pub labels: Vec<String>,
}

impl ObjectUpdate {
    /// An update with no labels (sufficient for remove/move, and for
    /// inserts into label-free indexes).
    pub fn unlabelled(delta: ObjectDelta) -> ObjectUpdate {
        ObjectUpdate {
            delta,
            labels: Vec::new(),
        }
    }
}

impl From<ObjectDelta> for ObjectUpdate {
    fn from(delta: ObjectDelta) -> ObjectUpdate {
        ObjectUpdate::unlabelled(delta)
    }
}

/// Why a delta batch was rejected. Validation is atomic: a batch
/// containing any invalid delta is rejected wholesale and the index is
/// left untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaError {
    /// `Insert` named an id that is currently live.
    DuplicateId(ObjectId),
    /// `Remove`/`Move` named an id that is not currently live.
    UnknownId(ObjectId),
    /// The delta's position names a partition the venue does not have.
    BadPartition(ObjectId, PartitionId),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::DuplicateId(id) => write!(f, "insert of already-live object {id}"),
            DeltaError::UnknownId(id) => write!(f, "remove/move of unknown object {id}"),
            DeltaError::BadPartition(id, p) => {
                write!(f, "object {id} placed in nonexistent partition {p}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Point;

    fn pt() -> IndoorPoint {
        IndoorPoint::new(PartitionId(2), Point::new(1.0, 2.0, 0))
    }

    #[test]
    fn accessors() {
        let ins = ObjectDelta::Insert {
            id: ObjectId(4),
            at: pt(),
        };
        assert_eq!(ins.id(), ObjectId(4));
        assert_eq!(ins.position(), Some(pt()));
        let rem = ObjectDelta::Remove { id: ObjectId(9) };
        assert_eq!(rem.id(), ObjectId(9));
        assert_eq!(rem.position(), None);
        let mv = ObjectDelta::Move {
            id: ObjectId(1),
            to: pt(),
        };
        assert_eq!(mv.position(), Some(pt()));
    }

    #[test]
    fn update_from_delta_is_unlabelled() {
        let u: ObjectUpdate = ObjectDelta::Remove { id: ObjectId(0) }.into();
        assert!(u.labels.is_empty());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DeltaError::DuplicateId(ObjectId(3)).to_string(),
            "insert of already-live object o3"
        );
        assert!(DeltaError::BadPartition(ObjectId(1), PartitionId(7))
            .to_string()
            .contains("P7"));
    }
}
