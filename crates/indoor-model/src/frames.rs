//! Network frame vocabulary — the typed messages the TCP front-end
//! (`crates/net`) exchanges, and the length-prefixed CRC framing that
//! carries them.
//!
//! The vocabulary lives here, next to the request/response types it
//! encodes, for the same reason the WAL vocabulary does ([`crate::wire`]):
//! every crate that speaks the protocol — server, client, follower,
//! scenario replay — shares one byte layout that cannot drift from the
//! definition of a request. Frames reference only model types and plain
//! scalars; service-side structures (shard configs, service errors) cross
//! the wire as scalar mirrors ([`WireError`], [`WireShardStats`]) or as
//! opaque payloads encoded by the layer that owns them (venue admin
//! carries the core crate's own config encoding).
//!
//! # Outer framing
//!
//! A connection starts with an 8-byte magic ([`NET_MAGIC`]) in each
//! direction, then carries a stream of frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! `crc32` covers the payload. `len` above [`MAX_FRAME_LEN`] is a framing
//! error before any allocation happens — a corrupt length prefix cannot
//! OOM the peer. The payload's first byte is the frame tag; the rest is
//! the tag-specific body, decoded with [`crate::wire::WireReader`] and
//! required to consume the payload exactly.
//!
//! [`FrameDecoder`] is the incremental decoder over that stream: feed it
//! bytes as they arrive, pull complete frames out. Any framing or decode
//! failure is a typed [`LoadError`] — never a panic — and poisons the
//! decoder: framing is not self-synchronising (a bad length prefix makes
//! every later boundary a guess), so the contract after an error is a
//! clean connection close, not a resync heuristic.
//!
//! # Request ids
//!
//! Every request frame carries a caller-chosen `id` echoed by its reply,
//! which is what makes pipelining safe: a client may have any number of
//! requests in flight and match replies by id regardless of coalescing
//! on the server side. Replication frames carry no id — a `Replicate`
//! subscription turns the connection into a one-way ordered stream.

use crate::serialize::LoadError;
use crate::wire::{crc32, WireReader, WireWriter};
use crate::{IndoorPoint, ObjectDelta, ObjectUpdate, QueryRequest, QueryResponse};

/// Connection handshake magic: protocol name + version byte. Bump the
/// version byte on any incompatible vocabulary change.
pub const NET_MAGIC: [u8; 8] = *b"VIPNET\x01\0";

/// Hard ceiling on one frame's payload, checked before allocation.
/// Generous enough for a venue JSON or a multi-thousand-slot batch,
/// small enough that a corrupt length prefix cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Bytes of outer framing per frame (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;

/// Service-side failures as they cross the wire — a scalar mirror of the
/// core crate's `ServiceError` plus the replication-specific refusals.
/// Carried inside [`Frame::Answer`] / [`Frame::Error`] / [`Frame::ReplEnd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// No shard registered under the venue id.
    UnknownVenue { venue: u32 },
    /// Shed at admission: in-flight budget full under a shed policy.
    /// Retryable — the work was never started.
    Overloaded {
        venue: u32,
        in_flight: u64,
        limit: u64,
    },
    /// Admission wait exhausted its blocking timeout. Retryable.
    Timeout {
        venue: u32,
        in_flight: u64,
        limit: u64,
    },
    /// Mutation batch failed validation; the venue is unchanged.
    Delta { venue: u32, detail: String },
    /// Venue index construction failed.
    Build { detail: String },
    /// A durable mutation could not be journalled (not applied).
    Persist { venue: u32, detail: String },
    /// The venue is read-only pending restart recovery.
    Degraded { venue: u32, detail: String },
    /// Replication refused: the leader is volatile (no WAL to ship).
    NotDurable,
    /// Replication refused: the requested WAL suffix is gone (rotated
    /// away) or unreadable; the follower must bootstrap from a snapshot.
    LogUnavailable { venue: u32, detail: String },
    /// The peer sent a frame the server could not act on (unknown venue
    /// kind aside — a semantically invalid payload).
    Malformed { detail: String },
}

impl WireError {
    /// Whether a retry (with backoff) can succeed without operator
    /// intervention: true exactly for the admission-layer rejections.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            WireError::Overloaded { .. } | WireError::Timeout { .. }
        )
    }

    fn encode(&self, w: &mut WireWriter) {
        match self {
            WireError::UnknownVenue { venue } => {
                w.put_u8(0);
                w.put_u32(*venue);
            }
            WireError::Overloaded {
                venue,
                in_flight,
                limit,
            } => {
                w.put_u8(1);
                w.put_u32(*venue);
                w.put_u64(*in_flight);
                w.put_u64(*limit);
            }
            WireError::Timeout {
                venue,
                in_flight,
                limit,
            } => {
                w.put_u8(2);
                w.put_u32(*venue);
                w.put_u64(*in_flight);
                w.put_u64(*limit);
            }
            WireError::Delta { venue, detail } => {
                w.put_u8(3);
                w.put_u32(*venue);
                w.put_str(detail);
            }
            WireError::Build { detail } => {
                w.put_u8(4);
                w.put_str(detail);
            }
            WireError::Persist { venue, detail } => {
                w.put_u8(5);
                w.put_u32(*venue);
                w.put_str(detail);
            }
            WireError::Degraded { venue, detail } => {
                w.put_u8(6);
                w.put_u32(*venue);
                w.put_str(detail);
            }
            WireError::NotDurable => w.put_u8(7),
            WireError::LogUnavailable { venue, detail } => {
                w.put_u8(8);
                w.put_u32(*venue);
                w.put_str(detail);
            }
            WireError::Malformed { detail } => {
                w.put_u8(9);
                w.put_str(detail);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<WireError, LoadError> {
        let tag = r.get_u8("wire error tag")?;
        Ok(match tag {
            0 => WireError::UnknownVenue {
                venue: r.get_u32("error venue")?,
            },
            1 => WireError::Overloaded {
                venue: r.get_u32("error venue")?,
                in_flight: r.get_u64("error in_flight")?,
                limit: r.get_u64("error limit")?,
            },
            2 => WireError::Timeout {
                venue: r.get_u32("error venue")?,
                in_flight: r.get_u64("error in_flight")?,
                limit: r.get_u64("error limit")?,
            },
            3 => WireError::Delta {
                venue: r.get_u32("error venue")?,
                detail: r.get_str("error detail")?.to_string(),
            },
            4 => WireError::Build {
                detail: r.get_str("error detail")?.to_string(),
            },
            5 => WireError::Persist {
                venue: r.get_u32("error venue")?,
                detail: r.get_str("error detail")?.to_string(),
            },
            6 => WireError::Degraded {
                venue: r.get_u32("error venue")?,
                detail: r.get_str("error detail")?.to_string(),
            },
            7 => WireError::NotDurable,
            8 => WireError::LogUnavailable {
                venue: r.get_u32("error venue")?,
                detail: r.get_str("error detail")?.to_string(),
            },
            9 => WireError::Malformed {
                detail: r.get_str("error detail")?.to_string(),
            },
            other => return Err(r.err("wire error tag 0..=9", format!("tag {other}"))),
        })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::UnknownVenue { venue } => write!(f, "no venue registered under id {venue}"),
            WireError::Overloaded {
                venue,
                in_flight,
                limit,
            } => write!(
                f,
                "venue {venue} overloaded: {in_flight} in flight at limit {limit}, request shed"
            ),
            WireError::Timeout {
                venue,
                in_flight,
                limit,
            } => write!(
                f,
                "venue {venue} admission timed out: {in_flight} in flight at limit {limit}"
            ),
            WireError::Delta { venue, detail } => {
                write!(f, "object delta rejected for venue {venue}: {detail}")
            }
            WireError::Build { detail } => write!(f, "cannot build venue index: {detail}"),
            WireError::Persist { venue, detail } => {
                write!(
                    f,
                    "durable mutation of venue {venue} not journalled: {detail}"
                )
            }
            WireError::Degraded { venue, detail } => {
                write!(f, "venue {venue} is degraded (read-only): {detail}")
            }
            WireError::NotDurable => write!(f, "leader is volatile: no WAL to replicate"),
            WireError::LogUnavailable { venue, detail } => {
                write!(f, "WAL suffix for venue {venue} unavailable: {detail}")
            }
            WireError::Malformed { detail } => write!(f, "malformed request: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Scalar mirror of one venue shard's stats as they cross the wire.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireShardStats {
    pub venue: u32,
    pub epoch: u64,
    pub version: u64,
    pub cached_entries: u64,
    pub cache_capacity: u64,
    pub evictions: u64,
    pub in_flight: u64,
    pub admission_capacity: u64,
    pub shed: u64,
    pub admission_timeouts: u64,
    /// Applied-LSN gap behind the replication leader (0 on a leader or a
    /// caught-up follower).
    pub replication_lag: u64,
    /// Object-index leaf pages built over the venue's lifetime.
    pub object_leaf_builds: u64,
    /// Object-index leaf pages touched by delta application.
    pub object_leaf_touches: u64,
    /// Object-index compaction passes.
    pub object_compactions: u64,
    /// Live objects in the shard's index.
    pub live_objects: u64,
    /// Allocated object slots (live + tombstoned).
    pub object_slots: u64,
    /// Leaf door-grids built so far (lazy; bounded by the leaf count).
    pub leaf_grid_builds: u64,
    pub degraded: Option<String>,
}

/// Scalar mirror of the service-wide stats snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WireServiceStats {
    pub venues: u64,
    pub queries: u64,
    pub cache_hits: u64,
    pub deltas_absorbed: u64,
    pub shed: u64,
    pub admission_timeouts: u64,
    pub in_flight: u64,
    pub admission_capacity: u64,
    pub degraded_venues: u64,
    pub shards: Vec<WireShardStats>,
}

fn encode_shard_stats(w: &mut WireWriter, s: &WireShardStats) {
    w.put_u32(s.venue);
    w.put_u64(s.epoch);
    w.put_u64(s.version);
    w.put_u64(s.cached_entries);
    w.put_u64(s.cache_capacity);
    w.put_u64(s.evictions);
    w.put_u64(s.in_flight);
    w.put_u64(s.admission_capacity);
    w.put_u64(s.shed);
    w.put_u64(s.admission_timeouts);
    w.put_u64(s.replication_lag);
    w.put_u64(s.object_leaf_builds);
    w.put_u64(s.object_leaf_touches);
    w.put_u64(s.object_compactions);
    w.put_u64(s.live_objects);
    w.put_u64(s.object_slots);
    w.put_u64(s.leaf_grid_builds);
    match &s.degraded {
        Some(reason) => {
            w.put_u8(1);
            w.put_str(reason);
        }
        None => w.put_u8(0),
    }
}

fn decode_shard_stats(r: &mut WireReader<'_>) -> Result<WireShardStats, LoadError> {
    Ok(WireShardStats {
        venue: r.get_u32("shard venue")?,
        epoch: r.get_u64("shard epoch")?,
        version: r.get_u64("shard version")?,
        cached_entries: r.get_u64("shard cached entries")?,
        cache_capacity: r.get_u64("shard cache capacity")?,
        evictions: r.get_u64("shard evictions")?,
        in_flight: r.get_u64("shard in_flight")?,
        admission_capacity: r.get_u64("shard admission capacity")?,
        shed: r.get_u64("shard shed")?,
        admission_timeouts: r.get_u64("shard admission timeouts")?,
        replication_lag: r.get_u64("shard replication lag")?,
        object_leaf_builds: r.get_u64("shard object leaf builds")?,
        object_leaf_touches: r.get_u64("shard object leaf touches")?,
        object_compactions: r.get_u64("shard object compactions")?,
        live_objects: r.get_u64("shard live objects")?,
        object_slots: r.get_u64("shard object slots")?,
        leaf_grid_builds: r.get_u64("shard leaf grid builds")?,
        degraded: match r.get_u8("shard degraded flag")? {
            0 => None,
            1 => Some(r.get_str("shard degraded reason")?.to_string()),
            other => return Err(r.err("degraded flag 0/1", format!("flag {other}"))),
        },
    })
}

// Frame tags. Client→server tags are < 0x80, server→client ≥ 0x80 — a
// peer can reject a frame sent in the wrong direction by tag range alone.
const TAG_PING: u8 = 0x01;
const TAG_QUERY: u8 = 0x02;
const TAG_QUERY_BATCH: u8 = 0x03;
const TAG_UPDATE_OBJECTS: u8 = 0x04;
const TAG_UPDATE_KEYWORDS: u8 = 0x05;
const TAG_ATTACH_OBJECTS: u8 = 0x06;
const TAG_ADD_VENUE: u8 = 0x07;
const TAG_REMOVE_VENUE: u8 = 0x08;
const TAG_STATS: u8 = 0x09;
const TAG_REPLICATE: u8 = 0x0A;
const TAG_METRICS: u8 = 0x0B;
const TAG_PONG: u8 = 0x81;
const TAG_ANSWER: u8 = 0x82;
const TAG_ANSWER_BATCH: u8 = 0x83;
const TAG_MUTATION_OK: u8 = 0x84;
const TAG_VENUE_CREATED: u8 = 0x85;
const TAG_ACK: u8 = 0x86;
const TAG_ERROR: u8 = 0x87;
const TAG_STATS_REPLY: u8 = 0x88;
const TAG_WAL: u8 = 0x89;
const TAG_REPL_HEAD: u8 = 0x8A;
const TAG_REPL_END: u8 = 0x8B;
const TAG_METRICS_TEXT: u8 = 0x8C;

/// One protocol message. Request frames (`id`-bearing, tag < 0x80) flow
/// client→server; reply and replication frames flow back.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    // ---- client → server ----
    /// Liveness probe; answered by [`Frame::Pong`] with the same id.
    Ping {
        id: u64,
    },
    /// One query for one venue; answered by [`Frame::Answer`].
    Query {
        id: u64,
        venue: u32,
        req: QueryRequest,
    },
    /// A heterogeneous multi-venue batch; slot `i` of the
    /// [`Frame::AnswerBatch`] reply answers `reqs[i]`.
    QueryBatch {
        id: u64,
        reqs: Vec<(u32, QueryRequest)>,
    },
    /// Object churn batch; answered by [`Frame::MutationOk`] carrying the
    /// venue's post-apply version, or [`Frame::Error`].
    UpdateObjects {
        id: u64,
        venue: u32,
        deltas: Vec<ObjectDelta>,
    },
    /// Labelled keyword churn batch; answered like `UpdateObjects`.
    UpdateKeywords {
        id: u64,
        venue: u32,
        updates: Vec<ObjectUpdate>,
    },
    /// Replace a venue's object set; answered like `UpdateObjects`.
    AttachObjects {
        id: u64,
        venue: u32,
        objects: Vec<IndoorPoint>,
    },
    /// Register a venue. `venue_json` is the venue's JSON serialisation;
    /// `config` is the shard config in the core crate's own WAL encoding
    /// (opaque at this layer — the crate that owns the config owns its
    /// bytes). Answered by [`Frame::VenueCreated`].
    AddVenue {
        id: u64,
        venue_json: Vec<u8>,
        config: Vec<u8>,
    },
    /// Unregister a venue; answered by [`Frame::Ack`].
    RemoveVenue {
        id: u64,
        venue: u32,
    },
    /// Service-wide stats snapshot; answered by [`Frame::StatsReply`].
    Stats {
        id: u64,
    },
    /// Telemetry exposition page; answered by [`Frame::MetricsText`]
    /// carrying the full Prometheus-style text (see
    /// [`crate::metrics::encode_text`]).
    Metrics {
        id: u64,
    },
    /// Subscribe this connection to `venue`'s WAL stream starting at
    /// `from_lsn` (0 = from the venue's birth record). The leader replies
    /// [`Frame::ReplHead`], then [`Frame::Wal`] frames in LSN order —
    /// first the suffix already on disk, then live appends as they
    /// happen — until the connection closes or [`Frame::ReplEnd`].
    Replicate {
        venue: u32,
        from_lsn: u64,
    },

    // ---- server → client ----
    Pong {
        id: u64,
    },
    /// Reply to [`Frame::Query`].
    Answer {
        id: u64,
        result: Result<QueryResponse, WireError>,
    },
    /// Reply to [`Frame::QueryBatch`], slot-aligned with its request.
    AnswerBatch {
        id: u64,
        results: Vec<Result<QueryResponse, WireError>>,
    },
    /// Mutation applied; `version` is the venue's object version after.
    MutationOk {
        id: u64,
        version: u64,
    },
    /// Venue registered under `venue`.
    VenueCreated {
        id: u64,
        venue: u32,
    },
    /// Bare success reply (venue removal).
    Ack {
        id: u64,
    },
    /// Typed failure reply to any id-bearing request.
    Error {
        id: u64,
        err: WireError,
    },
    /// Reply to [`Frame::Stats`].
    StatsReply {
        id: u64,
        stats: WireServiceStats,
    },
    /// Reply to [`Frame::Metrics`]: the encoded exposition page. Shipped
    /// as text, not typed series — scrapers diff/lint the page itself,
    /// and the format is the compatibility surface (DESIGN.md §15).
    MetricsText {
        id: u64,
        text: String,
    },
    /// One WAL record of a replication stream: `record` is the exact
    /// payload journalled at `lsn` (the core crate's record encoding,
    /// opaque here). Applying records in order reproduces the leader.
    Wal {
        venue: u32,
        lsn: u64,
        record: Vec<u8>,
    },
    /// Head of a replication stream: the leader's version at subscribe
    /// time. The follower is caught up when its applied LSN reaches
    /// this (and then keeps tailing).
    ReplHead {
        venue: u32,
        version: u64,
    },
    /// The replication stream ended: the venue was removed, the suffix
    /// was unavailable, or the leader refused (see `err`).
    ReplEnd {
        venue: u32,
        err: Option<WireError>,
    },
}

impl Frame {
    /// Encode the frame payload (tag + body, no outer framing).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            Frame::Ping { id } => {
                w.put_u8(TAG_PING);
                w.put_u64(*id);
            }
            Frame::Query { id, venue, req } => {
                w.put_u8(TAG_QUERY);
                w.put_u64(*id);
                w.put_u32(*venue);
                w.put_request(req);
            }
            Frame::QueryBatch { id, reqs } => {
                w.put_u8(TAG_QUERY_BATCH);
                w.put_u64(*id);
                w.put_u32(reqs.len() as u32);
                for (venue, req) in reqs {
                    w.put_u32(*venue);
                    w.put_request(req);
                }
            }
            Frame::UpdateObjects { id, venue, deltas } => {
                w.put_u8(TAG_UPDATE_OBJECTS);
                w.put_u64(*id);
                w.put_u32(*venue);
                w.put_u32(deltas.len() as u32);
                for d in deltas {
                    w.put_delta(d);
                }
            }
            Frame::UpdateKeywords { id, venue, updates } => {
                w.put_u8(TAG_UPDATE_KEYWORDS);
                w.put_u64(*id);
                w.put_u32(*venue);
                w.put_u32(updates.len() as u32);
                for u in updates {
                    w.put_update(u);
                }
            }
            Frame::AttachObjects { id, venue, objects } => {
                w.put_u8(TAG_ATTACH_OBJECTS);
                w.put_u64(*id);
                w.put_u32(*venue);
                w.put_points(objects);
            }
            Frame::AddVenue {
                id,
                venue_json,
                config,
            } => {
                w.put_u8(TAG_ADD_VENUE);
                w.put_u64(*id);
                w.put_bytes(venue_json);
                w.put_bytes(config);
            }
            Frame::RemoveVenue { id, venue } => {
                w.put_u8(TAG_REMOVE_VENUE);
                w.put_u64(*id);
                w.put_u32(*venue);
            }
            Frame::Stats { id } => {
                w.put_u8(TAG_STATS);
                w.put_u64(*id);
            }
            Frame::Metrics { id } => {
                w.put_u8(TAG_METRICS);
                w.put_u64(*id);
            }
            Frame::Replicate { venue, from_lsn } => {
                w.put_u8(TAG_REPLICATE);
                w.put_u32(*venue);
                w.put_u64(*from_lsn);
            }
            Frame::Pong { id } => {
                w.put_u8(TAG_PONG);
                w.put_u64(*id);
            }
            Frame::Answer { id, result } => {
                w.put_u8(TAG_ANSWER);
                w.put_u64(*id);
                encode_result(&mut w, result);
            }
            Frame::AnswerBatch { id, results } => {
                w.put_u8(TAG_ANSWER_BATCH);
                w.put_u64(*id);
                w.put_u32(results.len() as u32);
                for r in results {
                    encode_result(&mut w, r);
                }
            }
            Frame::MutationOk { id, version } => {
                w.put_u8(TAG_MUTATION_OK);
                w.put_u64(*id);
                w.put_u64(*version);
            }
            Frame::VenueCreated { id, venue } => {
                w.put_u8(TAG_VENUE_CREATED);
                w.put_u64(*id);
                w.put_u32(*venue);
            }
            Frame::Ack { id } => {
                w.put_u8(TAG_ACK);
                w.put_u64(*id);
            }
            Frame::Error { id, err } => {
                w.put_u8(TAG_ERROR);
                w.put_u64(*id);
                err.encode(&mut w);
            }
            Frame::StatsReply { id, stats } => {
                w.put_u8(TAG_STATS_REPLY);
                w.put_u64(*id);
                w.put_u64(stats.venues);
                w.put_u64(stats.queries);
                w.put_u64(stats.cache_hits);
                w.put_u64(stats.deltas_absorbed);
                w.put_u64(stats.shed);
                w.put_u64(stats.admission_timeouts);
                w.put_u64(stats.in_flight);
                w.put_u64(stats.admission_capacity);
                w.put_u64(stats.degraded_venues);
                w.put_u32(stats.shards.len() as u32);
                for s in &stats.shards {
                    encode_shard_stats(&mut w, s);
                }
            }
            Frame::MetricsText { id, text } => {
                w.put_u8(TAG_METRICS_TEXT);
                w.put_u64(*id);
                w.put_str(text);
            }
            Frame::Wal { venue, lsn, record } => {
                w.put_u8(TAG_WAL);
                w.put_u32(*venue);
                w.put_u64(*lsn);
                w.put_bytes(record);
            }
            Frame::ReplHead { venue, version } => {
                w.put_u8(TAG_REPL_HEAD);
                w.put_u32(*venue);
                w.put_u64(*version);
            }
            Frame::ReplEnd { venue, err } => {
                w.put_u8(TAG_REPL_END);
                w.put_u32(*venue);
                match err {
                    Some(e) => {
                        w.put_u8(1);
                        e.encode(&mut w);
                    }
                    None => w.put_u8(0),
                }
            }
        }
        w.into_bytes()
    }

    /// Decode a frame payload (tag + body); the payload must be consumed
    /// exactly.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, LoadError> {
        let mut r = WireReader::new(payload);
        let tag = r.get_u8("frame tag")?;
        let frame = match tag {
            TAG_PING => Frame::Ping {
                id: r.get_u64("ping id")?,
            },
            TAG_QUERY => Frame::Query {
                id: r.get_u64("query id")?,
                venue: r.get_u32("query venue")?,
                req: r.get_request()?,
            },
            TAG_QUERY_BATCH => {
                let id = r.get_u64("batch id")?;
                let n = r.get_u32("batch request count")? as usize;
                let mut reqs = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    let venue = r.get_u32("batch slot venue")?;
                    reqs.push((venue, r.get_request()?));
                }
                Frame::QueryBatch { id, reqs }
            }
            TAG_UPDATE_OBJECTS => {
                let id = r.get_u64("update id")?;
                let venue = r.get_u32("update venue")?;
                let n = r.get_u32("delta count")? as usize;
                let mut deltas = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    deltas.push(r.get_delta()?);
                }
                Frame::UpdateObjects { id, venue, deltas }
            }
            TAG_UPDATE_KEYWORDS => {
                let id = r.get_u64("update id")?;
                let venue = r.get_u32("update venue")?;
                let n = r.get_u32("update count")? as usize;
                let mut updates = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    updates.push(r.get_update()?);
                }
                Frame::UpdateKeywords { id, venue, updates }
            }
            TAG_ATTACH_OBJECTS => Frame::AttachObjects {
                id: r.get_u64("attach id")?,
                venue: r.get_u32("attach venue")?,
                objects: r.get_points()?,
            },
            TAG_ADD_VENUE => Frame::AddVenue {
                id: r.get_u64("add-venue id")?,
                venue_json: r.get_bytes("venue json")?.to_vec(),
                config: r.get_bytes("shard config")?.to_vec(),
            },
            TAG_REMOVE_VENUE => Frame::RemoveVenue {
                id: r.get_u64("remove id")?,
                venue: r.get_u32("remove venue")?,
            },
            TAG_STATS => Frame::Stats {
                id: r.get_u64("stats id")?,
            },
            TAG_METRICS => Frame::Metrics {
                id: r.get_u64("metrics id")?,
            },
            TAG_REPLICATE => Frame::Replicate {
                venue: r.get_u32("replicate venue")?,
                from_lsn: r.get_u64("replicate from_lsn")?,
            },
            TAG_PONG => Frame::Pong {
                id: r.get_u64("pong id")?,
            },
            TAG_ANSWER => Frame::Answer {
                id: r.get_u64("answer id")?,
                result: decode_result(&mut r)?,
            },
            TAG_ANSWER_BATCH => {
                let id = r.get_u64("batch answer id")?;
                let n = r.get_u32("batch answer count")? as usize;
                let mut results = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    results.push(decode_result(&mut r)?);
                }
                Frame::AnswerBatch { id, results }
            }
            TAG_MUTATION_OK => Frame::MutationOk {
                id: r.get_u64("mutation id")?,
                version: r.get_u64("mutation version")?,
            },
            TAG_VENUE_CREATED => Frame::VenueCreated {
                id: r.get_u64("created id")?,
                venue: r.get_u32("created venue")?,
            },
            TAG_ACK => Frame::Ack {
                id: r.get_u64("ack id")?,
            },
            TAG_ERROR => Frame::Error {
                id: r.get_u64("error id")?,
                err: WireError::decode(&mut r)?,
            },
            TAG_STATS_REPLY => {
                let id = r.get_u64("stats id")?;
                let venues = r.get_u64("stats venues")?;
                let queries = r.get_u64("stats queries")?;
                let cache_hits = r.get_u64("stats cache hits")?;
                let deltas_absorbed = r.get_u64("stats deltas")?;
                let shed = r.get_u64("stats shed")?;
                let admission_timeouts = r.get_u64("stats timeouts")?;
                let in_flight = r.get_u64("stats in_flight")?;
                let admission_capacity = r.get_u64("stats capacity")?;
                let degraded_venues = r.get_u64("stats degraded")?;
                let n = r.get_u32("stats shard count")? as usize;
                let mut shards = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    shards.push(decode_shard_stats(&mut r)?);
                }
                Frame::StatsReply {
                    id,
                    stats: WireServiceStats {
                        venues,
                        queries,
                        cache_hits,
                        deltas_absorbed,
                        shed,
                        admission_timeouts,
                        in_flight,
                        admission_capacity,
                        degraded_venues,
                        shards,
                    },
                }
            }
            TAG_METRICS_TEXT => Frame::MetricsText {
                id: r.get_u64("metrics id")?,
                text: r.get_str("metrics text")?.to_string(),
            },
            TAG_WAL => Frame::Wal {
                venue: r.get_u32("wal venue")?,
                lsn: r.get_u64("wal lsn")?,
                record: r.get_bytes("wal record")?.to_vec(),
            },
            TAG_REPL_HEAD => Frame::ReplHead {
                venue: r.get_u32("repl venue")?,
                version: r.get_u64("repl version")?,
            },
            TAG_REPL_END => Frame::ReplEnd {
                venue: r.get_u32("repl venue")?,
                err: match r.get_u8("repl error flag")? {
                    0 => None,
                    1 => Some(WireError::decode(&mut r)?),
                    other => return Err(r.err("repl error flag 0/1", format!("flag {other}"))),
                },
            },
            other => return Err(r.err("frame tag", format!("unknown tag {other:#04x}"))),
        };
        r.finish("frame end")?;
        Ok(frame)
    }

    /// Encode with outer framing: `[len][crc][payload]`, ready to write
    /// to a socket.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// The request id this frame carries, if any (replication frames and
    /// the `Replicate` subscription are id-less stream frames).
    pub fn id(&self) -> Option<u64> {
        match self {
            Frame::Ping { id }
            | Frame::Query { id, .. }
            | Frame::QueryBatch { id, .. }
            | Frame::UpdateObjects { id, .. }
            | Frame::UpdateKeywords { id, .. }
            | Frame::AttachObjects { id, .. }
            | Frame::AddVenue { id, .. }
            | Frame::RemoveVenue { id, .. }
            | Frame::Stats { id }
            | Frame::Metrics { id }
            | Frame::Pong { id }
            | Frame::Answer { id, .. }
            | Frame::AnswerBatch { id, .. }
            | Frame::MutationOk { id, .. }
            | Frame::VenueCreated { id, .. }
            | Frame::Ack { id }
            | Frame::Error { id, .. }
            | Frame::StatsReply { id, .. }
            | Frame::MetricsText { id, .. } => Some(*id),
            Frame::Replicate { .. }
            | Frame::Wal { .. }
            | Frame::ReplHead { .. }
            | Frame::ReplEnd { .. } => None,
        }
    }
}

fn encode_result(w: &mut WireWriter, r: &Result<QueryResponse, WireError>) {
    match r {
        Ok(resp) => {
            w.put_u8(0);
            w.put_response(resp);
        }
        Err(e) => {
            w.put_u8(1);
            e.encode(w);
        }
    }
}

fn decode_result(r: &mut WireReader<'_>) -> Result<Result<QueryResponse, WireError>, LoadError> {
    match r.get_u8("result tag")? {
        0 => Ok(Ok(r.get_response()?)),
        1 => Ok(Err(WireError::decode(r)?)),
        other => Err(r.err("result tag 0/1", format!("tag {other}"))),
    }
}

/// Incremental decoder over the outer framing: feed bytes as the socket
/// yields them, pull complete frames out. Not self-synchronising: any
/// error poisons the decoder (every subsequent [`FrameDecoder::next`]
/// repeats it) and the connection must be closed.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by decoded frames; compacted
    /// opportunistically instead of per-frame so a burst of small frames
    /// costs one memmove, not one per frame.
    consumed: usize,
    /// The first error, kept as `(offset, expected, found)` so it can be
    /// re-raised on every later call (`LoadError` itself is not `Clone` —
    /// it can wrap an `io::Error` — but every decode failure here is the
    /// `Wire` variant, which is plain data).
    poisoned: Option<(u64, &'static str, String)>,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes received from the peer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decode the next complete frame: `Ok(Some(frame))`, `Ok(None)` when
    /// more bytes are needed, or the framing/decode error that poisons
    /// this decoder.
    // Not `Iterator`: `Ok(None)` means "need more bytes", not "done", and
    // errors must surface per call so poisoning stays observable.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, LoadError> {
        if let Some((offset, expected, found)) = &self.poisoned {
            return Err(LoadError::Wire {
                offset: *offset,
                expected,
                found: found.clone(),
            });
        }
        match self.try_next() {
            Ok(frame) => Ok(frame),
            Err(err) => {
                if let LoadError::Wire {
                    offset,
                    expected,
                    found,
                } = &err
                {
                    self.poisoned = Some((*offset, expected, found.clone()));
                } else {
                    // Unreachable today (frame decoding only produces
                    // `Wire` errors), but fail closed if that changes.
                    self.poisoned = Some((0, "frame", err.to_string()));
                }
                Err(err)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<Frame>, LoadError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < FRAME_HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[0..4].try_into().unwrap());
        let want_crc = u32::from_le_bytes(avail[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(LoadError::Wire {
                offset: self.consumed as u64,
                expected: "frame length within MAX_FRAME_LEN",
                found: format!("length prefix {len} exceeds cap {MAX_FRAME_LEN}"),
            });
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if avail.len() < total {
            self.compact();
            return Ok(None);
        }
        let payload = &avail[FRAME_HEADER_LEN..total];
        let got_crc = crc32(payload);
        if got_crc != want_crc {
            return Err(LoadError::Wire {
                offset: (self.consumed + 4) as u64,
                expected: "frame payload CRC",
                found: format!("crc {got_crc:#010x}, header says {want_crc:#010x}"),
            });
        }
        let frame = Frame::decode_payload(payload)?;
        self.consumed += total;
        Ok(Some(frame))
    }

    /// Drop consumed bytes once they dominate the buffer.
    fn compact(&mut self) {
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, PartitionId};
    use geometry::Point;
    use std::sync::Arc;

    fn pt(x: f64, y: f64) -> IndoorPoint {
        IndoorPoint::new(PartitionId(2), Point::new(x, y, 0))
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Ping { id: 1 },
            Frame::Query {
                id: 2,
                venue: 0,
                req: QueryRequest::Knn {
                    q: pt(1.0, 2.0),
                    k: 4,
                },
            },
            Frame::QueryBatch {
                id: 3,
                reqs: vec![
                    (
                        0,
                        QueryRequest::Range {
                            q: pt(0.5, 0.5),
                            radius: 9.0,
                        },
                    ),
                    (
                        1,
                        QueryRequest::KnnKeyword {
                            q: pt(3.0, 3.0),
                            k: 2,
                            keyword: Arc::from("atm"),
                        },
                    ),
                ],
            },
            Frame::UpdateObjects {
                id: 4,
                venue: 1,
                deltas: vec![ObjectDelta::Insert {
                    id: ObjectId(7),
                    at: pt(4.0, 4.0),
                }],
            },
            Frame::UpdateKeywords {
                id: 5,
                venue: 1,
                updates: vec![ObjectUpdate {
                    delta: ObjectDelta::Remove { id: ObjectId(7) },
                    labels: vec!["atm".into()],
                }],
            },
            Frame::AttachObjects {
                id: 6,
                venue: 0,
                objects: vec![pt(1.0, 1.0), pt(2.0, 2.0)],
            },
            Frame::AddVenue {
                id: 7,
                venue_json: b"{\"venue\":1}".to_vec(),
                config: vec![9, 8, 7],
            },
            Frame::RemoveVenue { id: 8, venue: 3 },
            Frame::Stats { id: 9 },
            Frame::Metrics { id: 12 },
            Frame::Replicate {
                venue: 2,
                from_lsn: 17,
            },
            Frame::Pong { id: 1 },
            Frame::Answer {
                id: 2,
                result: Ok(QueryResponse::Knn(vec![(ObjectId(1), 2.5)])),
            },
            Frame::AnswerBatch {
                id: 3,
                results: vec![
                    Ok(QueryResponse::Range(Vec::new())),
                    Err(WireError::Overloaded {
                        venue: 1,
                        in_flight: 64,
                        limit: 64,
                    }),
                ],
            },
            Frame::MutationOk { id: 4, version: 12 },
            Frame::VenueCreated { id: 7, venue: 4 },
            Frame::Ack { id: 8 },
            Frame::Error {
                id: 9,
                err: WireError::Degraded {
                    venue: 0,
                    detail: "rollback failed".into(),
                },
            },
            Frame::StatsReply {
                id: 9,
                stats: WireServiceStats {
                    venues: 2,
                    queries: 100,
                    shed: 3,
                    shards: vec![
                        WireShardStats {
                            venue: 0,
                            version: 5,
                            replication_lag: 2,
                            object_leaf_builds: 7,
                            live_objects: 40,
                            leaf_grid_builds: 11,
                            ..Default::default()
                        },
                        WireShardStats {
                            venue: 1,
                            degraded: Some("x".into()),
                            object_slots: 64,
                            object_compactions: 1,
                            ..Default::default()
                        },
                    ],
                    ..Default::default()
                },
            },
            Frame::MetricsText {
                id: 12,
                text: "# TYPE indoor_venues gauge\nindoor_venues 2\n".into(),
            },
            Frame::Wal {
                venue: 2,
                lsn: 18,
                record: vec![1, 2, 3, 4],
            },
            Frame::ReplHead {
                venue: 2,
                version: 30,
            },
            Frame::ReplEnd {
                venue: 2,
                err: Some(WireError::NotDurable),
            },
            Frame::ReplEnd {
                venue: 2,
                err: None,
            },
        ]
    }

    #[test]
    fn every_frame_kind_round_trips() {
        for frame in sample_frames() {
            let payload = frame.encode_payload();
            let back = Frame::decode_payload(&payload).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn decoder_reassembles_byte_by_byte() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        // Worst-case delivery: one byte per read.
        for b in stream {
            dec.extend(&[b]);
            while let Some(f) = dec.next().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, frames);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn corrupt_crc_poisons_the_decoder() {
        let mut bytes = Frame::Ping { id: 5 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let err = dec.next().unwrap_err().to_string();
        assert!(err.contains("CRC") || err.contains("crc"), "{err}");
        // Poisoned: even valid bytes afterwards repeat the error.
        dec.extend(&Frame::Ping { id: 6 }.encode());
        dec.next().unwrap_err();
    }

    #[test]
    fn oversized_length_prefix_fails_before_buffering() {
        let mut dec = FrameDecoder::new();
        let mut header = Vec::new();
        header.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        dec.extend(&header);
        let err = dec.next().unwrap_err().to_string();
        assert!(err.contains("exceeds cap"), "{err}");
    }

    #[test]
    fn truncated_payload_is_not_an_error_yet() {
        let bytes = Frame::Stats { id: 1 }.encode();
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes[..bytes.len() - 1]);
        assert_eq!(dec.next().unwrap(), None);
        dec.extend(&bytes[bytes.len() - 1..]);
        assert_eq!(dec.next().unwrap(), Some(Frame::Stats { id: 1 }));
    }

    #[test]
    fn trailing_bytes_inside_a_payload_are_rejected() {
        let mut payload = Frame::Ping { id: 1 }.encode_payload();
        payload.push(0);
        let err = Frame::decode_payload(&payload).unwrap_err().to_string();
        assert!(err.contains("trailing"), "{err}");
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let err = Frame::decode_payload(&[0x7F]).unwrap_err().to_string();
        assert!(err.contains("unknown tag"), "{err}");
    }

    #[test]
    fn retryability_matches_admission_errors() {
        assert!(WireError::Overloaded {
            venue: 0,
            in_flight: 1,
            limit: 1
        }
        .is_retryable());
        assert!(WireError::Timeout {
            venue: 0,
            in_flight: 1,
            limit: 1
        }
        .is_retryable());
        assert!(!WireError::UnknownVenue { venue: 0 }.is_retryable());
        assert!(!WireError::NotDurable.is_retryable());
    }
}
