use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            #[inline]
            fn from(v: usize) -> Self {
                debug_assert!(v <= u32::MAX as usize);
                $name(v as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a door; doubles as the vertex id in the D2D graph.
    DoorId,
    "d"
);
id_type!(
    /// Identifier of an indoor partition (room, hallway, stair segment, ...).
    PartitionId,
    "P"
);
id_type!(
    /// Identifier of a queryable object (e.g. a washroom) placed in a venue.
    ObjectId,
    "o"
);
id_type!(
    /// Identifier of a venue served by a multi-venue service front-end;
    /// routes typed query requests to the venue's index shard.
    VenueId,
    "V"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(DoorId(3).to_string(), "d3");
        assert_eq!(PartitionId(17).to_string(), "P17");
        assert_eq!(ObjectId(0).to_string(), "o0");
    }

    #[test]
    fn conversions() {
        let d: DoorId = 5u32.into();
        assert_eq!(d.index(), 5);
        let p: PartitionId = 7usize.into();
        assert_eq!(p, PartitionId(7));
    }
}
