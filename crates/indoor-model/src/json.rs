//! A small self-contained JSON reader/writer used by venue persistence.
//!
//! The workspace builds without registry access, so serde/serde_json are
//! unavailable; venue files only need numbers, strings, arrays, objects
//! and null, which this module covers. Numbers are written with Rust's
//! shortest round-trip `f64` formatting, so saved venues reload
//! bit-identically.

use std::fmt::Write as _;

/// A JSON syntax error: the byte offset it was detected at plus a short
/// description. Carried (not stringified) so loaders can attach the
/// position to their own error types — see
/// `indoor_model::serialize::LoadError::Json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    pub message: String,
}

impl ParseError {
    fn new(offset: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u32(&self) -> Option<u32> {
        self.as_f64().and_then(|n| {
            if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
                Some(n as u32)
            } else {
                None
            }
        })
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().and_then(|n| {
            if n.fract() == 0.0 && n >= 0.0 {
                Some(n as usize)
            } else {
                None
            }
        })
    }

    pub fn as_i32(&self) -> Option<i32> {
        self.as_f64().and_then(|n| {
            if n.fract() == 0.0 && (f64::from(i32::MIN)..=f64::from(i32::MAX)).contains(&n) {
                Some(n as i32)
            } else {
                None
            }
        })
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Short description of the value's shape, for "expected X, found Y"
    /// error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "a boolean",
            Json::Num(_) => "a number",
            Json::Str(_) => "a string",
            Json::Arr(_) => "an array",
            Json::Obj(_) => "an object",
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError::new(pos, "trailing garbage"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::new(*pos, format!("expected {:?}", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(ParseError::new(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::new(*pos, "invalid literal"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&b[start..*pos]).map_err(|e| ParseError::new(start, e.to_string()))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| ParseError::new(start, format!("invalid number {text:?}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(ParseError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| ParseError::new(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|e| ParseError::new(*pos, e.to_string()))?,
                            16,
                        )
                        .map_err(|e| ParseError::new(*pos, e.to_string()))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| ParseError::new(*pos, "invalid \\u escape"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(ParseError::new(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|e| ParseError::new(*pos, e.to_string()))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(ParseError::new(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(ParseError::new(*pos, "expected ',' or '}'")),
        }
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` with shortest round-trip formatting. JSON has no
/// non-finite numbers; like serde_json, non-finite values are written as
/// `null` (they reload as an absent/None field rather than corrupting
/// the document).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let j = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#).unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            j.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(j.get("d"), Some(&Json::Null));
        assert_eq!(j.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn f64_round_trips_through_text() {
        for v in [0.0, 1.5, -2.25, 1.0 / 3.0, 1e-300, 123456.789012345] {
            let mut s = String::new();
            write_f64(&mut s, v);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} via {s}");
        }
    }

    #[test]
    fn non_finite_f64_written_as_null() {
        for v in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            let mut s = String::new();
            write_f64(&mut s, v);
            assert_eq!(s, "null");
            assert_eq!(parse(&s).unwrap(), Json::Null);
        }
    }

    #[test]
    fn string_escaping_round_trips() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}é");
        assert_eq!(parse(&s).unwrap().as_str(), Some("a\"b\\c\nd\u{1}é"));
    }
}
