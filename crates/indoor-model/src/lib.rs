//! The indoor space data model used throughout the workspace.
//!
//! Following §2 of the VIP-Tree paper, an indoor venue is a set of
//! *partitions* (rooms, hallways, staircases, lifts, and — for campus
//! datasets — the outdoor space between buildings) connected by *doors*.
//! Each door belongs to one partition (an exterior door) or two partitions.
//!
//! From a venue two derived structures are built:
//!
//! * the **door-to-door (D2D) graph** \[Yang, Lu, Jensen 2010\]: one vertex
//!   per door, an edge between every pair of doors sharing a partition,
//!   weighted by the indoor distance between the doors;
//! * the **accessibility-base (AB) graph** \[Lu, Cao, Jensen 2012\]: one
//!   vertex per partition, one labelled edge per door connecting two
//!   partitions.
//!
//! Partitions are classified (Definition in §2) by door count: a partition
//! with one door is *no-through*, with more than `beta` doors a *hallway*,
//! otherwise *general*.
//!
//! The crate also defines the query-facing vocabulary shared by every
//! index: [`IndoorPoint`], [`IndoorPath`], the [`IndoorIndex`] /
//! [`ObjectQueries`] traits implemented by VIP/IP-tree, the baselines,
//! G-tree and ROAD, the typed [`QueryRequest`] / [`QueryResponse`]
//! enums (hashable by f64 bit pattern — the canonical key of result
//! caches and multi-venue routers) that every index answers through the
//! blanket [`AnswerRequest`] impl, and the object-churn vocabulary
//! ([`ObjectDelta`] / [`ObjectUpdate`]) live services ingest.

mod builder;
mod delta;
pub mod frames;
mod ids;
pub mod json;
pub mod metrics;
mod path;
mod point;
mod query;
mod request;
pub mod scenario;
pub mod serialize;
mod venue;
pub mod wire;

pub use builder::{ModelError, VenueBuilder};
pub use delta::{DeltaError, ObjectDelta, ObjectUpdate};
pub use ids::{DoorId, ObjectId, PartitionId, VenueId};
pub use path::IndoorPath;
pub use point::IndoorPoint;
pub use query::{IndoorIndex, ObjectQueries, QueryStats};
pub use request::{AnswerRequest, QueryKind, QueryRequest, QueryResponse};
pub use scenario::{
    fingerprint_stream, AdmissionSpec, ArrivalCurve, ChurnSpec, KeywordSkew, OverloadSpec,
    QueryMix, ScenarioEvent, ScenarioStreamError, StreamFingerprint, TickEvents, VenueAction,
    VenueEvent, WorkloadProfile,
};
pub use serialize::LoadError;
pub use venue::{AbEdge, Door, Partition, PartitionClass, PartitionKind, Venue, VenueStats};

/// Default hallway-classification threshold: a partition with more than
/// `BETA` doors is a hallway (the paper uses β = 4).
pub const BETA: usize = 4;
