//! Wire-facing metrics vocabulary: the typed snapshot the service's
//! telemetry registry exports, its Prometheus-style text encoder, and an
//! exposition linter.
//!
//! The serving core (`vip-tree`) gathers its registry into a
//! [`MetricsSnapshot`]; `NetServer` answers a `MetricsRequest` frame with
//! the [`encode_text`] page; scrapers (and the CI `metrics-smoke` step)
//! run [`lint_text`] over the fetched page to catch duplicate series,
//! unparseable samples, and non-monotone histogram buckets before anything
//! downstream trusts them.
//!
//! Encoding rules (DESIGN.md §15): families sorted by name; one
//! `# HELP` / `# TYPE` pair per family; label values escaped (`\\`, `\"`,
//! `\n`); histograms emit cumulative `_bucket{le="..."}` samples over
//! occupied buckets plus `le="+Inf"`, then `_sum` and `_count`, with the
//! exact observed maximum as a companion `<name>_max` gauge family —
//! quantization never loses the tail.

use std::collections::HashSet;
use std::fmt::Write as _;

/// One exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time value.
    Gauge(f64),
    /// Log-linear histogram: cumulative `(le, count)` pairs over occupied
    /// buckets (upper bounds inclusive, strictly increasing), plus total
    /// count, sum of recorded values, and the exact maximum.
    Histogram {
        buckets: Vec<(u64, u64)>,
        count: u64,
        sum: u64,
        max: u64,
    },
}

/// One named, labelled series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    pub name: String,
    pub help: String,
    /// Sorted `(key, value)` pairs.
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// Everything the service exports at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Sorted by `(name, labels)` — the encoder relies on families being
    /// contiguous.
    pub series: Vec<Series>,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a snapshot as a Prometheus-style text page. Output is a pure
/// function of the snapshot (stable ordering, no timestamps), so golden
/// tests and diff-based scrape monitors both work.
pub fn encode_text(snap: &MetricsSnapshot) -> String {
    let mut series: Vec<&Series> = snap.series.iter().collect();
    series.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for s in series {
        if last_family != Some(s.name.as_str()) {
            let kind = match s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
            let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
            last_family = Some(s.name.as_str());
        }
        match &s.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
            }
            MetricValue::Histogram {
                buckets,
                count,
                sum,
                max,
            } => {
                for (le, cum) in buckets {
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        label_block(&s.labels, Some(("le", &le.to_string()))),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    s.name,
                    label_block(&s.labels, Some(("le", "+Inf"))),
                    count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    count
                );
                let _ = writeln!(
                    out,
                    "{}_max{} {}",
                    s.name,
                    label_block(&s.labels, None),
                    max
                );
            }
        }
    }
    out
}

/// Check an exposition page for structural defects. Returns every
/// violation found (empty = clean): duplicate `(name, labels)` series,
/// samples with unparseable values, samples appearing before any
/// `# TYPE`, and non-monotone cumulative histogram buckets.
pub fn lint_text(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    let mut typed: HashSet<String> = HashSet::new();
    // (series key without le, last cumulative count) for bucket monotony.
    let mut last_bucket: Option<(String, f64)> = None;
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some("counter" | "gauge" | "histogram")) => {
                    if !typed.insert(name.to_string()) {
                        errors.push(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => errors.push(format!("line {n}: malformed TYPE line")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and comments
        }
        // Sample: name[{labels}] value
        let Some(value_at) = line.rfind(' ') else {
            errors.push(format!("line {n}: no value on sample line"));
            continue;
        };
        let (key, value) = line.split_at(value_at);
        let value = value.trim();
        let parsed: Option<f64> = if value == "+Inf" || value == "NaN" {
            None
        } else {
            value.parse().ok()
        };
        let Some(parsed) = parsed else {
            errors.push(format!("line {n}: unparseable value {value:?}"));
            continue;
        };
        if !seen.insert(key.to_string()) {
            errors.push(format!("line {n}: duplicate series {key}"));
        }
        let family = key
            .split('{')
            .next()
            .unwrap_or(key)
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count")
            .trim_end_matches("_max");
        if !typed.contains(key.split('{').next().unwrap_or(key)) && !typed.contains(family) {
            errors.push(format!("line {n}: sample {key} precedes its TYPE"));
        }
        // Histogram bucket monotony: strip le from the key so one series'
        // buckets share a tracking slot; a new series resets it.
        if key.contains("_bucket") {
            let base = key
                .split("le=\"")
                .next()
                .unwrap_or(key)
                .trim_end_matches([',', '{'])
                .to_string();
            match &last_bucket {
                Some((prev, cum)) if *prev == base => {
                    if parsed < *cum {
                        errors.push(format!("line {n}: bucket counts decreased in {base}"));
                    }
                    last_bucket = Some((base, parsed));
                }
                _ => last_bucket = Some((base, parsed)),
            }
        } else {
            last_bucket = None;
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            series: vec![
                Series {
                    name: "indoor_queries_total".into(),
                    help: "Queries served".into(),
                    labels: vec![("kind".into(), "knn".into()), ("venue".into(), "0".into())],
                    value: MetricValue::Counter(42),
                },
                Series {
                    name: "indoor_queries_total".into(),
                    help: "Queries served".into(),
                    labels: vec![
                        ("kind".into(), "range".into()),
                        ("venue".into(), "0".into()),
                    ],
                    value: MetricValue::Counter(7),
                },
                Series {
                    name: "indoor_cached_entries".into(),
                    help: "Result cache residency".into(),
                    labels: vec![("venue".into(), "0".into())],
                    value: MetricValue::Gauge(31.0),
                },
                Series {
                    name: "indoor_query_latency_us".into(),
                    help: "End-to-end query latency".into(),
                    labels: vec![("venue".into(), "0".into())],
                    value: MetricValue::Histogram {
                        buckets: vec![(7, 3), (95, 10), (1023, 12)],
                        count: 12,
                        sum: 1234,
                        max: 811,
                    },
                },
            ],
        }
    }

    /// Golden exposition: byte-for-byte stable so scrape diffs are
    /// meaningful. Update deliberately if the format changes (and bump
    /// DESIGN.md §15).
    #[test]
    fn encode_text_matches_golden() {
        let got = encode_text(&sample_snapshot());
        let want = "\
# HELP indoor_cached_entries Result cache residency
# TYPE indoor_cached_entries gauge
indoor_cached_entries{venue=\"0\"} 31
# HELP indoor_queries_total Queries served
# TYPE indoor_queries_total counter
indoor_queries_total{kind=\"knn\",venue=\"0\"} 42
indoor_queries_total{kind=\"range\",venue=\"0\"} 7
# HELP indoor_query_latency_us End-to-end query latency
# TYPE indoor_query_latency_us histogram
indoor_query_latency_us_bucket{venue=\"0\",le=\"7\"} 3
indoor_query_latency_us_bucket{venue=\"0\",le=\"95\"} 10
indoor_query_latency_us_bucket{venue=\"0\",le=\"1023\"} 12
indoor_query_latency_us_bucket{venue=\"0\",le=\"+Inf\"} 12
indoor_query_latency_us_sum{venue=\"0\"} 1234
indoor_query_latency_us_count{venue=\"0\"} 12
indoor_query_latency_us_max{venue=\"0\"} 811
";
        assert_eq!(got, want);
    }

    #[test]
    fn lint_accepts_encoder_output() {
        let text = encode_text(&sample_snapshot());
        let errors = lint_text(&text);
        assert!(errors.is_empty(), "clean page flagged: {errors:?}");
    }

    #[test]
    fn lint_catches_duplicates_and_garbage() {
        let bad = "\
# TYPE a_total counter
a_total{v=\"1\"} 3
a_total{v=\"1\"} 4
b_total 5
a_total{v=\"2\"} oops
";
        let errors = lint_text(bad);
        assert!(
            errors.iter().any(|e| e.contains("duplicate series")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("precedes its TYPE")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("unparseable value")),
            "{errors:?}"
        );
    }

    #[test]
    fn lint_catches_nonmonotone_buckets() {
        let bad = "\
# TYPE h_us histogram
h_us_bucket{le=\"10\"} 5
h_us_bucket{le=\"20\"} 3
h_us_sum 100
h_us_count 5
";
        let errors = lint_text(bad);
        assert!(
            errors.iter().any(|e| e.contains("bucket counts decreased")),
            "{errors:?}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = MetricsSnapshot {
            series: vec![Series {
                name: "x".into(),
                help: "h".into(),
                labels: vec![("venue".into(), "a\"b\\c\nd".into())],
                value: MetricValue::Counter(1),
            }],
        };
        let text = encode_text(&snap);
        assert!(text.contains("venue=\"a\\\"b\\\\c\\nd\""), "{text}");
        assert!(lint_text(&text).is_empty());
    }
}
