use crate::venue::Venue;
use crate::{DoorId, IndoorPoint};

/// A fully-expanded indoor route: the complete sequence of doors crossed
/// between a source and a target point, plus its total length.
///
/// Every consecutive pair of doors in `doors` shares a partition (the path
/// segment walks through that partition); the first door is a door of the
/// source's partition, the last of the target's. For same-partition routes
/// `doors` may be empty.
#[derive(Debug, Clone, PartialEq)]
pub struct IndoorPath {
    pub source: IndoorPoint,
    pub target: IndoorPoint,
    pub doors: Vec<DoorId>,
    pub length: f64,
}

impl IndoorPath {
    /// Number of doors crossed (`w` in the paper's complexity analysis).
    pub fn num_doors(&self) -> usize {
        self.doors.len()
    }

    /// Validate the structural invariants of the path against a venue and
    /// recompute its length from segment distances; returns the recomputed
    /// length. Used pervasively by tests: an index may only report a path
    /// whose door sequence is walkable and whose segment sum matches the
    /// reported length.
    pub fn validate(&self, venue: &Venue) -> Result<f64, PathError> {
        if self.doors.is_empty() {
            if self.source.partition != self.target.partition {
                return Err(PathError::DisconnectedEndpoints);
            }
            return Ok(self
                .source
                .direct_distance(venue, &self.target)
                .expect("same partition"));
        }

        let first = self.doors[0];
        if !venue
            .partition(self.source.partition)
            .doors
            .contains(&first)
        {
            return Err(PathError::BadFirstDoor(first));
        }
        let last = *self.doors.last().unwrap();
        if !venue.partition(self.target.partition).doors.contains(&last) {
            return Err(PathError::BadLastDoor(last));
        }

        let mut length = self.source.distance_to_door(venue, first);
        for w in self.doors.windows(2) {
            let (a, b) = (w[0], w[1]);
            match venue.d2d().arc_weight(a.0, b.0) {
                Some(wt) => length += wt,
                None => return Err(PathError::NonAdjacentDoors(a, b)),
            }
        }
        length += self.target.distance_to_door(venue, last);
        Ok(length)
    }
}

/// Structural violations detected by [`IndoorPath::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum PathError {
    /// Empty door list but endpoints in different partitions.
    DisconnectedEndpoints,
    /// First door does not belong to the source partition.
    BadFirstDoor(DoorId),
    /// Last door does not belong to the target partition.
    BadLastDoor(DoorId),
    /// Two consecutive doors share no partition (no D2D edge).
    NonAdjacentDoors(DoorId, DoorId),
}

impl std::fmt::Display for PathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathError::DisconnectedEndpoints => {
                write!(f, "empty path between different partitions")
            }
            PathError::BadFirstDoor(d) => write!(f, "first door {d} not in source partition"),
            PathError::BadLastDoor(d) => write!(f, "last door {d} not in target partition"),
            PathError::NonAdjacentDoors(a, b) => {
                write!(f, "doors {a} and {b} share no partition")
            }
        }
    }
}

impl std::error::Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionKind, VenueBuilder};
    use geometry::{Point, Rect};

    #[test]
    fn validates_and_measures_simple_route() {
        let mut b = VenueBuilder::new();
        let r1 = b.add_partition(PartitionKind::Room, Rect::new(0.0, 0.0, 5.0, 5.0, 0));
        let r2 = b.add_partition(PartitionKind::Room, Rect::new(5.0, 0.0, 10.0, 5.0, 0));
        let d = b.add_door(Point::new(5.0, 2.5, 0), r1, Some(r2));
        let v = b.build().unwrap();

        let s = IndoorPoint::new(r1, Point::new(2.0, 2.5, 0));
        let t = IndoorPoint::new(r2, Point::new(8.0, 2.5, 0));
        let path = IndoorPath {
            source: s,
            target: t,
            doors: vec![d],
            length: 6.0,
        };
        let len = path.validate(&v).unwrap();
        assert!((len - 6.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_paths() {
        let mut b = VenueBuilder::new();
        let r1 = b.add_partition(PartitionKind::Room, Rect::new(0.0, 0.0, 5.0, 5.0, 0));
        let r2 = b.add_partition(PartitionKind::Room, Rect::new(5.0, 0.0, 10.0, 5.0, 0));
        let r3 = b.add_partition(PartitionKind::Room, Rect::new(10.0, 0.0, 15.0, 5.0, 0));
        let d12 = b.add_door(Point::new(5.0, 2.5, 0), r1, Some(r2));
        let d23 = b.add_door(Point::new(10.0, 2.5, 0), r2, Some(r3));
        let ext = b.add_exterior_door(Point::new(0.0, 2.5, 0), r1);
        let v = b.build().unwrap();

        let s = IndoorPoint::new(r1, Point::new(2.0, 2.5, 0));
        let t = IndoorPoint::new(r3, Point::new(12.0, 2.5, 0));

        // Non-adjacent doors: ext and d23 share no partition.
        let bad = IndoorPath {
            source: s,
            target: t,
            doors: vec![ext, d23],
            length: 0.0,
        };
        assert!(matches!(
            bad.validate(&v),
            Err(PathError::NonAdjacentDoors(_, _))
        ));

        // Wrong last door.
        let bad2 = IndoorPath {
            source: s,
            target: t,
            doors: vec![d12],
            length: 0.0,
        };
        assert_eq!(bad2.validate(&v), Err(PathError::BadLastDoor(d12)));

        // Empty doors across partitions.
        let bad3 = IndoorPath {
            source: s,
            target: t,
            doors: vec![],
            length: 0.0,
        };
        assert_eq!(bad3.validate(&v), Err(PathError::DisconnectedEndpoints));
    }
}
