use crate::venue::Venue;
use crate::{DoorId, PartitionId};
use geometry::Point;
use std::hash::{Hash, Hasher};

/// A queryable indoor location: a position inside a known partition.
///
/// All query algorithms take source/target/query locations in this form;
/// the partition is what links the metric position to the topology (its
/// doors are the only exits). Resolving a raw coordinate to its partition
/// is a (trivial) point-location step outside the scope of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndoorPoint {
    pub partition: PartitionId,
    pub position: Point,
}

impl IndoorPoint {
    pub fn new(partition: PartitionId, position: Point) -> Self {
        IndoorPoint {
            partition,
            position,
        }
    }

    /// Distance from this point to a door of its own partition, under the
    /// partition's weight policy (§3.1: "If d is a local access door of
    /// Partition(s) then dist(s, d) can be trivially computed").
    pub fn distance_to_door(&self, venue: &Venue, door: DoorId) -> f64 {
        let p = venue.partition(self.partition);
        debug_assert!(
            p.doors.contains(&door),
            "door {door} is not a door of partition {}",
            self.partition
        );
        p.traversal_distance(&self.position, &venue.door(door).position)
    }

    /// `(door, distance)` seeds for virtual-source Dijkstra runs over the
    /// D2D graph: each door of the containing partition, labelled with the
    /// point-to-door distance.
    pub fn door_seeds(&self, venue: &Venue) -> Vec<(u32, f64)> {
        venue
            .partition(self.partition)
            .doors
            .iter()
            .map(|&d| (d.0, self.distance_to_door(venue, d)))
            .collect()
    }

    /// Canonical bit-pattern identity `(partition, x_bits, y_bits, level)`
    /// used to hash and compare typed query requests.
    ///
    /// Key equality is bitwise coordinate equality: stricter than `==`
    /// for signed zeros (`-0.0` ≠ `0.0`) and reflexive for NaN, so a
    /// request containing a NaN coordinate still equals itself as a
    /// result-cache key. See DESIGN.md, "Request hashing rules".
    #[inline]
    pub fn key_bits(&self) -> (u32, u64, u64, i32) {
        let (x, y, level) = self.position.key_bits();
        (self.partition.0, x, y, level)
    }

    /// Direct (same-partition) distance between two points, defined only
    /// when both lie in the same partition.
    pub fn direct_distance(&self, venue: &Venue, other: &IndoorPoint) -> Option<f64> {
        if self.partition == other.partition {
            let p = venue.partition(self.partition);
            Some(p.traversal_distance(&self.position, &other.position))
        } else {
            None
        }
    }
}

/// Hashes the bit-pattern identity ([`IndoorPoint::key_bits`]).
///
/// `IndoorPoint` is deliberately **not** `Eq` (its `PartialEq` is plain
/// `f64` equality); hash-consistent equality for hash-map keys is provided
/// by the request types (`QueryRequest`), whose manual `PartialEq`/`Eq`
/// compare `key_bits` and therefore agree with this hash.
impl Hash for IndoorPoint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let (p, x, y, level) = self.key_bits();
        state.write_u32(p);
        state.write_u64(x);
        state.write_u64(y);
        state.write_i32(level);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartitionKind, VenueBuilder};
    use geometry::Rect;

    fn one_room_venue() -> (Venue, PartitionId, DoorId, DoorId) {
        let mut b = VenueBuilder::new();
        let room = b.add_partition(PartitionKind::Room, Rect::new(0.0, 0.0, 10.0, 10.0, 0));
        let other = b.add_partition(PartitionKind::Room, Rect::new(10.0, 0.0, 20.0, 10.0, 0));
        let d1 = b.add_door(Point::new(10.0, 5.0, 0), room, Some(other));
        let d2 = b.add_exterior_door(Point::new(0.0, 5.0, 0), room);
        let v = b.build().unwrap();
        (v, room, d1, d2)
    }

    #[test]
    fn door_distances_are_euclidean() {
        let (v, room, d1, d2) = one_room_venue();
        let p = IndoorPoint::new(room, Point::new(4.0, 5.0, 0));
        assert!((p.distance_to_door(&v, d1) - 6.0).abs() < 1e-12);
        assert!((p.distance_to_door(&v, d2) - 4.0).abs() < 1e-12);
        let seeds = p.door_seeds(&v);
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn direct_distance_same_partition_only() {
        let (v, room, _, _) = one_room_venue();
        let a = IndoorPoint::new(room, Point::new(0.0, 0.0, 0));
        let b2 = IndoorPoint::new(room, Point::new(3.0, 4.0, 0));
        assert_eq!(a.direct_distance(&v, &b2), Some(5.0));
        let c = IndoorPoint::new(PartitionId(1), Point::new(12.0, 5.0, 0));
        assert_eq!(a.direct_distance(&v, &c), None);
    }
}
