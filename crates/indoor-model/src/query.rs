use crate::{IndoorPath, IndoorPoint, ObjectId};

/// Counters describing the work performed by recent queries; §4.3.1 of the
/// paper reports "#pairs of doors" considered by DistMx variants and
/// VIP-Tree (Fig. 9(a)) — implementations accumulate the equivalent
/// quantity here when stats collection is enabled.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct QueryStats {
    /// Door pairs combined to produce the final answer (Fig. 9(a)).
    pub door_pairs: u64,
    /// Vertices settled by graph expansions (Dijkstra-style baselines).
    pub settled_vertices: u64,
    /// Tree nodes visited (branch-and-bound algorithms).
    pub nodes_visited: u64,
    /// Children considered by a branch-and-bound lower-bound test.
    pub bound_candidates: u64,
    /// Children rejected by the lower bound alone — no distance-matrix
    /// row was touched for them.
    pub bound_pruned: u64,
    /// Number of queries accumulated into this struct.
    pub queries: u64,
}

impl QueryStats {
    pub fn merge(&mut self, other: &QueryStats) {
        self.door_pairs += other.door_pairs;
        self.settled_vertices += other.settled_vertices;
        self.nodes_visited += other.nodes_visited;
        self.bound_candidates += other.bound_candidates;
        self.bound_pruned += other.bound_pruned;
        self.queries += other.queries;
    }

    /// Fraction of bound-tested children rejected without touching a
    /// matrix row; 0 when nothing was tested.
    pub fn prune_rate(&self) -> f64 {
        if self.bound_candidates == 0 {
            0.0
        } else {
            self.bound_pruned as f64 / self.bound_candidates as f64
        }
    }

    pub fn mean_door_pairs(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.door_pairs as f64 / self.queries as f64
        }
    }
}

/// The two queries every competitor supports (§3.1–§3.3): shortest
/// distance and shortest path between two indoor points.
///
/// Implementations: `VipTree`, `IpTree` (crate `vip-tree`), `DistMx`,
/// `DistAw` (crate `indoor-baselines`), `GTree` (crate `gtree`), `Road`
/// (crate `road`).
pub trait IndoorIndex {
    /// Human-readable name used by the benchmark harness tables.
    fn name(&self) -> &'static str;

    /// Indoor shortest distance, or `None` when `t` is unreachable from `s`.
    fn shortest_distance(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<f64>;

    /// Full door-sequence shortest path (§3.2/§3.3), or `None` when
    /// unreachable. The returned path must satisfy
    /// [`IndoorPath::validate`] and its length must equal
    /// `shortest_distance(s, t)`.
    fn shortest_path(&self, s: &IndoorPoint, t: &IndoorPoint) -> Option<IndoorPath>;

    /// Bytes of index structure (excluding the venue model itself);
    /// Fig. 8(b).
    fn index_size_bytes(&self) -> usize;
}

/// Object queries (§3.4): k nearest neighbours and range search over a set
/// of objects embedded in the index.
pub trait ObjectQueries {
    /// The `k` objects nearest to `q` as `(object, distance)` sorted by
    /// ascending distance (fewer if the venue holds fewer reachable
    /// objects).
    fn knn(&self, q: &IndoorPoint, k: usize) -> Vec<(ObjectId, f64)>;

    /// Every object within indoor distance `radius` of `q`, sorted by
    /// ascending distance.
    fn range(&self, q: &IndoorPoint, radius: f64) -> Vec<(ObjectId, f64)>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_and_mean() {
        let mut a = QueryStats {
            door_pairs: 10,
            settled_vertices: 5,
            nodes_visited: 2,
            bound_candidates: 4,
            bound_pruned: 1,
            queries: 2,
        };
        let b = QueryStats {
            door_pairs: 20,
            settled_vertices: 1,
            nodes_visited: 0,
            bound_candidates: 4,
            bound_pruned: 3,
            queries: 3,
        };
        a.merge(&b);
        assert_eq!(a.door_pairs, 30);
        assert_eq!(a.queries, 5);
        assert!((a.mean_door_pairs() - 6.0).abs() < 1e-12);
        assert!((a.prune_rate() - 0.5).abs() < 1e-12);
        assert_eq!(QueryStats::default().mean_door_pairs(), 0.0);
        assert_eq!(QueryStats::default().prune_rate(), 0.0);
    }
}
