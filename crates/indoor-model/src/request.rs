//! Typed query requests and responses — the canonical vocabulary of the
//! serving layer.
//!
//! The paper's experiments (and the indoor-query survey, arXiv:2010.03910)
//! evaluate a fixed menu of query kinds: shortest distance, shortest path,
//! kNN, range, and keyword-constrained kNN. [`QueryRequest`] captures that
//! menu as one hashable enum so a realistic *mixed* workload — a mall
//! directory serving kNN lookups interleaved with evacuation-route path
//! queries — is a single `&[QueryRequest]` batch, and so caches, queues
//! and multi-venue routers all key on the same type. [`QueryResponse`]
//! mirrors it variant for variant, each carrying exactly what the
//! corresponding per-kind API returns.
//!
//! # Identity
//!
//! Requests are `Eq + Hash` by **f64 bit pattern**: two requests are equal
//! iff their coordinates, radii and parameters are bitwise identical.
//! This is stricter than numeric equality (`-0.0` and `0.0` are distinct
//! keys) and reflexive where `==` on floats is not (a NaN coordinate
//! equals itself), which is exactly the contract a result cache needs —
//! bit-identical input is guaranteed bit-identical output, nothing more.
//! See DESIGN.md, "Request hashing rules".

use crate::{IndoorIndex, IndoorPath, IndoorPoint, ObjectId, ObjectQueries};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The query kind of a request or response; indexes per-kind counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    Knn,
    Range,
    KnnKeyword,
    ShortestDistance,
    ShortestPath,
}

impl QueryKind {
    /// Every kind, in [`QueryKind::index`] order.
    pub const ALL: [QueryKind; Self::COUNT] = [
        QueryKind::Knn,
        QueryKind::Range,
        QueryKind::KnnKeyword,
        QueryKind::ShortestDistance,
        QueryKind::ShortestPath,
    ];

    /// Number of query kinds (length of per-kind counter arrays).
    pub const COUNT: usize = 5;

    /// Dense index into per-kind arrays; inverse of `ALL[i]`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used by benchmark tables and stats output.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Knn => "knn",
            QueryKind::Range => "range",
            QueryKind::KnnKeyword => "keyword",
            QueryKind::ShortestDistance => "shortest_distance",
            QueryKind::ShortestPath => "shortest_path",
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One query of any supported kind, with its full parameters.
///
/// Hashable and comparable by bit pattern (see the module docs), so it can
/// key result caches, dedup maps and request routers directly.
#[derive(Debug, Clone)]
pub enum QueryRequest {
    /// `k` nearest objects to `q` (§3.4, Algorithm 5).
    Knn { q: IndoorPoint, k: usize },
    /// All objects within indoor distance `radius` of `q` (§3.4).
    Range { q: IndoorPoint, radius: f64 },
    /// `k` nearest objects to `q` carrying `keyword` (§1.3 adaptability).
    ///
    /// The keyword is an `Arc<str>` (hashing/comparing by content) so
    /// cloning a request — batch wrappers fanning one label over many
    /// queries, caches storing keys — never re-allocates the string.
    KnnKeyword {
        q: IndoorPoint,
        k: usize,
        keyword: Arc<str>,
    },
    /// Indoor shortest distance from `s` to `t` (§3.1).
    ShortestDistance { s: IndoorPoint, t: IndoorPoint },
    /// Full door-sequence shortest path from `s` to `t` (§3.2–3.3).
    ShortestPath { s: IndoorPoint, t: IndoorPoint },
}

impl QueryRequest {
    /// The request's kind (for per-kind dispatch and counters).
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryRequest::Knn { .. } => QueryKind::Knn,
            QueryRequest::Range { .. } => QueryKind::Range,
            QueryRequest::KnnKeyword { .. } => QueryKind::KnnKeyword,
            QueryRequest::ShortestDistance { .. } => QueryKind::ShortestDistance,
            QueryRequest::ShortestPath { .. } => QueryKind::ShortestPath,
        }
    }
}

impl PartialEq for QueryRequest {
    fn eq(&self, other: &QueryRequest) -> bool {
        use QueryRequest::*;
        match (self, other) {
            (Knn { q: a, k: ka }, Knn { q: b, k: kb }) => ka == kb && a.key_bits() == b.key_bits(),
            (Range { q: a, radius: ra }, Range { q: b, radius: rb }) => {
                ra.to_bits() == rb.to_bits() && a.key_bits() == b.key_bits()
            }
            (
                KnnKeyword {
                    q: a,
                    k: ka,
                    keyword: wa,
                },
                KnnKeyword {
                    q: b,
                    k: kb,
                    keyword: wb,
                },
            ) => ka == kb && wa == wb && a.key_bits() == b.key_bits(),
            (ShortestDistance { s: sa, t: ta }, ShortestDistance { s: sb, t: tb })
            | (ShortestPath { s: sa, t: ta }, ShortestPath { s: sb, t: tb }) => {
                sa.key_bits() == sb.key_bits() && ta.key_bits() == tb.key_bits()
            }
            _ => false,
        }
    }
}

/// Reflexive by construction: equality is over bit patterns (`to_bits` /
/// [`IndoorPoint::key_bits`]), never raw float comparison, so NaN-bearing
/// requests still equal themselves.
impl Eq for QueryRequest {}

/// Consistent with [`PartialEq`]: hashes the variant discriminant plus the
/// same bit patterns the equality compares.
impl Hash for QueryRequest {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.kind().index() as u8);
        match self {
            QueryRequest::Knn { q, k } => {
                q.hash(state);
                state.write_usize(*k);
            }
            QueryRequest::Range { q, radius } => {
                q.hash(state);
                state.write_u64(radius.to_bits());
            }
            QueryRequest::KnnKeyword { q, k, keyword } => {
                q.hash(state);
                state.write_usize(*k);
                keyword.hash(state);
            }
            QueryRequest::ShortestDistance { s, t } | QueryRequest::ShortestPath { s, t } => {
                s.hash(state);
                t.hash(state);
            }
        }
    }
}

/// The answer to a [`QueryRequest`], variant-matched to the request kind.
///
/// Each variant carries exactly the type the corresponding per-kind API
/// returns, so unwrapping a response is lossless — heterogeneous batch
/// results are bit-identical to the per-kind batch calls.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    Knn(Vec<(ObjectId, f64)>),
    Range(Vec<(ObjectId, f64)>),
    KnnKeyword(Vec<(ObjectId, f64)>),
    ShortestDistance(Option<f64>),
    ShortestPath(Option<IndoorPath>),
}

impl QueryResponse {
    /// The response's kind (matches the request it answers).
    pub fn kind(&self) -> QueryKind {
        match self {
            QueryResponse::Knn(_) => QueryKind::Knn,
            QueryResponse::Range(_) => QueryKind::Range,
            QueryResponse::KnnKeyword(_) => QueryKind::KnnKeyword,
            QueryResponse::ShortestDistance(_) => QueryKind::ShortestDistance,
            QueryResponse::ShortestPath(_) => QueryKind::ShortestPath,
        }
    }

    /// The `(object, distance)` list of a kNN/range/keyword response.
    pub fn objects(&self) -> Option<&[(ObjectId, f64)]> {
        match self {
            QueryResponse::Knn(v) | QueryResponse::Range(v) | QueryResponse::KnnKeyword(v) => {
                Some(v)
            }
            _ => None,
        }
    }

    /// The distance of a shortest-distance response (`Some(None)` means
    /// answered-but-unreachable).
    pub fn distance(&self) -> Option<Option<f64>> {
        match self {
            QueryResponse::ShortestDistance(d) => Some(*d),
            _ => None,
        }
    }

    /// The path of a shortest-path response.
    pub fn path(&self) -> Option<Option<&IndoorPath>> {
        match self {
            QueryResponse::ShortestPath(p) => Some(p.as_ref()),
            _ => None,
        }
    }

    /// Consume into the object list (kNN/range/keyword responses).
    pub fn into_objects(self) -> Option<Vec<(ObjectId, f64)>> {
        match self {
            QueryResponse::Knn(v) | QueryResponse::Range(v) | QueryResponse::KnnKeyword(v) => {
                Some(v)
            }
            _ => None,
        }
    }

    /// Consume into the path (shortest-path responses).
    pub fn into_path(self) -> Option<Option<IndoorPath>> {
        match self {
            QueryResponse::ShortestPath(p) => Some(p),
            _ => None,
        }
    }
}

/// Answering typed requests through the classic two-trait query surface.
///
/// Blanket-implemented for every index that is both [`IndoorIndex`] and
/// [`ObjectQueries`] (VIP/IP-tree, DistMx, DistAw, G-tree, ROAD), so the
/// whole competitor suite answers the same typed request stream — the
/// cross-index agreement tests run over this API. Keyword requests answer
/// empty here: keyword search needs an inverted-list index (`vip-tree`'s
/// `KeywordObjects`), which the plain trait surface does not expose; this
/// mirrors a `QueryEngine` with no keyword index attached.
pub trait AnswerRequest {
    /// Answer one typed request.
    fn answer(&self, req: &QueryRequest) -> QueryResponse;

    /// Answer a heterogeneous batch serially; slot `i` answers `reqs[i]`.
    fn answer_batch(&self, reqs: &[QueryRequest]) -> Vec<QueryResponse> {
        reqs.iter().map(|r| self.answer(r)).collect()
    }
}

impl<T: IndoorIndex + ObjectQueries> AnswerRequest for T {
    fn answer(&self, req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::Knn { q, k } => QueryResponse::Knn(self.knn(q, *k)),
            QueryRequest::Range { q, radius } => QueryResponse::Range(self.range(q, *radius)),
            QueryRequest::KnnKeyword { .. } => QueryResponse::KnnKeyword(Vec::new()),
            QueryRequest::ShortestDistance { s, t } => {
                QueryResponse::ShortestDistance(self.shortest_distance(s, t))
            }
            QueryRequest::ShortestPath { s, t } => {
                QueryResponse::ShortestPath(self.shortest_path(s, t))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionId;
    use geometry::Point;
    use std::collections::hash_map::DefaultHasher;

    fn pt(x: f64, y: f64) -> IndoorPoint {
        IndoorPoint::new(PartitionId(3), Point::new(x, y, 0))
    }

    fn hash_of(r: &QueryRequest) -> u64 {
        let mut h = DefaultHasher::new();
        r.hash(&mut h);
        h.finish()
    }

    #[test]
    fn kind_roundtrip_and_labels() {
        for (i, k) in QueryKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert!(!k.label().is_empty());
        }
        let req = QueryRequest::Range {
            q: pt(1.0, 2.0),
            radius: 50.0,
        };
        assert_eq!(req.kind(), QueryKind::Range);
        assert_eq!(QueryResponse::Range(Vec::new()).kind(), QueryKind::Range);
    }

    #[test]
    fn equal_requests_hash_equal() {
        let a = QueryRequest::Knn {
            q: pt(4.0, 5.0),
            k: 3,
        };
        let b = QueryRequest::Knn {
            q: pt(4.0, 5.0),
            k: 3,
        };
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        let c = QueryRequest::Knn {
            q: pt(4.0, 5.0),
            k: 4,
        };
        assert_ne!(a, c);
    }

    #[test]
    fn same_fields_different_kind_are_distinct() {
        let sd = QueryRequest::ShortestDistance {
            s: pt(0.0, 0.0),
            t: pt(1.0, 1.0),
        };
        let sp = QueryRequest::ShortestPath {
            s: pt(0.0, 0.0),
            t: pt(1.0, 1.0),
        };
        assert_ne!(sd, sp);
        assert_ne!(hash_of(&sd), hash_of(&sp));
    }

    #[test]
    fn nan_requests_are_reflexive_cache_keys() {
        let a = QueryRequest::Range {
            q: pt(f64::NAN, 2.0),
            radius: f64::NAN,
        };
        assert_eq!(a, a.clone(), "bitwise identity must be reflexive");
        assert_eq!(hash_of(&a), hash_of(&a.clone()));
        // Signed zero: numerically equal, bitwise distinct.
        let z = QueryRequest::Range {
            q: pt(0.0, 2.0),
            radius: 1.0,
        };
        let nz = QueryRequest::Range {
            q: pt(-0.0, 2.0),
            radius: 1.0,
        };
        assert_ne!(z, nz, "-0.0 and 0.0 are distinct keys");
    }

    #[test]
    fn response_accessors_match_variants() {
        let objs = vec![(ObjectId(1), 2.0)];
        assert_eq!(QueryResponse::Knn(objs.clone()).objects(), Some(&objs[..]));
        assert_eq!(QueryResponse::ShortestDistance(Some(1.0)).objects(), None);
        assert_eq!(QueryResponse::ShortestDistance(None).distance(), Some(None));
        assert_eq!(QueryResponse::ShortestPath(None).path(), Some(None));
        assert_eq!(
            QueryResponse::KnnKeyword(objs.clone()).into_objects(),
            Some(objs)
        );
        assert_eq!(QueryResponse::ShortestPath(None).into_path(), Some(None));
        assert_eq!(QueryResponse::Knn(Vec::new()).into_path(), None);
    }
}
