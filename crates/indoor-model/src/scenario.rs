//! Workload-profile vocabulary for the scenario lab.
//!
//! The indoor-query experimental study evaluates indexes under a *matrix*
//! of workloads, not a single request mix: load that swells and ebbs over
//! a day, flash crowds that pile onto one venue, keyword popularity that
//! follows a heavy-tailed (Zipf) distribution, churn storms, and venues
//! appearing or disappearing while traffic is live. This module captures
//! that matrix as **data**: a [`WorkloadProfile`] describes a workload
//! declaratively, and a compiler (the `indoor-scenarios` crate) lowers it
//! into a timestamped [`TickEvents`] stream of typed requests and object
//! updates that any runner can replay.
//!
//! The vocabulary is deliberately free of generators and indexes — it is
//! the *contract* between profile authors, the compiler, and runners, the
//! same way [`QueryRequest`] is the contract between
//! clients and indexes.
//!
//! # Determinism
//!
//! Everything here is reproducible bit-for-bit from a seed, on any host.
//! That rules out transcendental math (libm results vary across
//! platforms), so the diurnal curve is a triangle wave, not a sinusoid,
//! and the Zipf skew uses an **integer** exponent (`weight = 1/rank^s`
//! computed by repeated multiplication). [`StreamFingerprint`] hashes a
//! compiled stream into one `u64` over the same bit-pattern identity the
//! request cache keys on, so "identical seeds produce identical streams"
//! is checkable across machines by comparing a single number.

use crate::{ObjectDelta, ObjectUpdate, QueryKind, QueryRequest};

/// Per-tick arrival-rate multiplier: how many requests tick `t` carries
/// relative to the profile's base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalCurve {
    /// Flat load: level 1.0 at every tick.
    Constant,
    /// A diurnal day modelled as a triangle wave (deterministic across
    /// platforms, unlike a sinusoid): level ramps linearly from
    /// `trough_pct/100` up to 1.0 at each cycle's midpoint and back.
    /// `cycles` is the number of "days" over the whole run.
    Diurnal { trough_pct: u32, cycles: u32 },
    /// Constant background (level 1.0) with a `magnify`× spike during
    /// ticks `[start, start + len)` — the flash-crowd shape.
    Spike { start: u32, len: u32, magnify: u32 },
}

impl ArrivalCurve {
    /// The multiplier at `tick` of a `ticks`-long run.
    pub fn level(&self, tick: u32, ticks: u32) -> f64 {
        match *self {
            ArrivalCurve::Constant => 1.0,
            ArrivalCurve::Diurnal { trough_pct, cycles } => {
                let trough = f64::from(trough_pct.min(100)) / 100.0;
                let cycle_len = (ticks / cycles.max(1)).max(1);
                let phase = tick % cycle_len;
                // Triangle: 0 → 1 over the first half, 1 → 0 over the
                // second. All arithmetic is exact-rounded IEEE — no libm.
                let half = f64::from(cycle_len) / 2.0;
                let up = f64::from(phase.min(cycle_len - phase));
                trough + (1.0 - trough) * (up / half).min(1.0)
            }
            ArrivalCurve::Spike {
                start,
                len,
                magnify,
            } => {
                if tick >= start && tick < start.saturating_add(len) {
                    f64::from(magnify.max(1))
                } else {
                    1.0
                }
            }
        }
    }
}

/// Relative weights of the five query kinds in a profile's request mix,
/// indexed by [`QueryKind::index`]. All-zero mixes are invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryMix {
    pub weights: [u32; QueryKind::COUNT],
}

impl QueryMix {
    /// An even split over all five kinds.
    pub fn uniform() -> QueryMix {
        QueryMix {
            weights: [1; QueryKind::COUNT],
        }
    }

    /// A kNN/range/distance mix with no keyword traffic — answerable by
    /// every index in the competitor suite, including the plain
    /// [`AnswerRequest`](crate::AnswerRequest) surface.
    pub fn read_heavy() -> QueryMix {
        let mut weights = [0; QueryKind::COUNT];
        weights[QueryKind::Knn.index()] = 4;
        weights[QueryKind::Range.index()] = 2;
        weights[QueryKind::ShortestDistance.index()] = 2;
        weights[QueryKind::ShortestPath.index()] = 1;
        QueryMix { weights }
    }

    /// Total weight (the modulus query rolls are drawn under).
    pub fn total(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// The kind a roll in `0..self.total()` lands on, walking the
    /// cumulative weights in [`QueryKind::ALL`] order.
    pub fn kind_for(&self, roll: u32) -> QueryKind {
        debug_assert!(self.total() > 0, "all-zero query mix");
        let mut acc = 0u32;
        for kind in QueryKind::ALL {
            acc += self.weights[kind.index()];
            if roll < acc {
                return kind;
            }
        }
        // roll >= total: callers draw `roll % total()`, so this is
        // unreachable for valid rolls; clamp to the last weighted kind.
        QueryKind::ALL
            .into_iter()
            .rev()
            .find(|k| self.weights[k.index()] > 0)
            .unwrap_or(QueryKind::Knn)
    }
}

/// Zipf-skewed keyword popularity: keyword `kw<r>` (rank `r` in
/// `0..vocabulary`) is drawn with weight `1 / (r + 1)^exponent`.
///
/// The exponent is an integer so the weights are computable by repeated
/// multiplication — bit-deterministic on every host (`powf` is not).
/// `exponent = 1` is the classic Zipf law.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeywordSkew {
    /// Distinct keywords (`kw0` .. `kw{vocabulary-1}`).
    pub vocabulary: u32,
    /// Integer skew exponent (≥ 1; larger = more skewed).
    pub exponent: u32,
}

impl KeywordSkew {
    /// The canonical label of rank `rank`.
    pub fn label(rank: u32) -> String {
        format!("kw{rank}")
    }
}

/// Object-churn intensity: how many [`ObjectDelta`]s per tick, shaped by
/// an arrival curve (a `Spike` curve makes a churn *storm*), and the
/// insert/remove split (the remainder are moves — the cheap,
/// velocity-skewed bulk of a tracking workload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnSpec {
    /// Deltas per tick at curve level 1.0.
    pub base_per_tick: u32,
    /// Intensity multiplier over time.
    pub curve: ArrivalCurve,
    /// Percent of deltas that insert fresh objects.
    pub insert_pct: u32,
    /// Percent of deltas that remove live objects.
    pub remove_pct: u32,
}

/// Overload policy vocabulary, mirrored (without the `std::time`
/// dependency on the index side) by the service's `OverloadPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadSpec {
    /// Fail fast beyond the in-flight budget.
    Shed,
    /// Park arrivals up to `timeout_micros`, then fail.
    Block { timeout_micros: u64 },
}

/// Admission control applied to one venue slot when a service runner
/// replays the profile (ignored by raw per-index replays).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionSpec {
    /// The venue slot the gate applies to.
    pub slot: u32,
    /// In-flight budget (0 = unbounded).
    pub max_in_flight: u32,
    pub policy: OverloadSpec,
}

/// A venue joining or leaving the world mid-traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VenueAction {
    /// Register venue slot `slot` (its venue comes from the world's slot
    /// list; queries route to it from this tick on).
    Add { slot: u32 },
    /// Unregister venue slot `slot` (no queries route to it afterwards).
    Remove { slot: u32 },
}

/// A timestamped [`VenueAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VenueEvent {
    pub tick: u32,
    pub action: VenueAction,
}

/// One adversarial workload, described declaratively. The
/// `indoor-scenarios` compiler lowers a profile into a [`TickEvents`]
/// stream; runners replay the stream against a service or a bare index.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Stable cell name in `BENCH_scenarios.json`.
    pub name: String,
    /// Logical duration (streams are replayed as fast as possible; ticks
    /// order events and shape the curves, they are not wall-clock).
    pub ticks: u32,
    /// Requests per venue slot per tick at curve level 1.0.
    pub queries_per_tick: u32,
    /// Arrival shape. When `hot_slot` is set the curve applies to that
    /// slot only (the flash-crowd venue) and every other slot sees
    /// constant base load; otherwise it applies to all slots.
    pub arrival: ArrivalCurve,
    pub hot_slot: Option<u32>,
    /// Venue slots alive at tick 0 (`0..initial_slots`).
    pub initial_slots: u32,
    /// Objects attached to every venue slot before traffic starts; churn
    /// liveness starts from ids `0..objects_per_venue`.
    pub objects_per_venue: u32,
    pub mix: QueryMix,
    pub knn_k: u32,
    pub range_radius: f64,
    /// Keyword popularity skew; required when `mix` weights
    /// [`QueryKind::KnnKeyword`] above zero.
    pub keywords: Option<KeywordSkew>,
    /// Object churn against `churn_slot` (None = read-only stream).
    pub churn: Option<ChurnSpec>,
    /// The slot churn deltas land on (must be an initial slot).
    pub churn_slot: u32,
    /// Percent of queries drawn from a small fixed hot set instead of
    /// fresh random points — the kiosk-repeat traffic a result cache
    /// exists for (0 = every request unique).
    pub repeat_pct: u32,
    /// Hot-set size per slot when `repeat_pct > 0`.
    pub hot_set: u32,
    /// Venues added/removed mid-run.
    pub venue_events: Vec<VenueEvent>,
    /// Admission gates a service runner installs per slot.
    pub admission: Vec<AdmissionSpec>,
}

impl WorkloadProfile {
    /// A small constant-load read-only profile; the usual starting point
    /// for custom profiles (`WorkloadProfile { name, ..WorkloadProfile::base(..) }`).
    pub fn base(name: &str) -> WorkloadProfile {
        WorkloadProfile {
            name: name.to_string(),
            ticks: 32,
            queries_per_tick: 64,
            arrival: ArrivalCurve::Constant,
            hot_slot: None,
            initial_slots: 1,
            objects_per_venue: 96,
            mix: QueryMix::read_heavy(),
            knn_k: 5,
            range_radius: 150.0,
            keywords: None,
            churn: None,
            churn_slot: 0,
            repeat_pct: 0,
            hot_set: 64,
            venue_events: Vec::new(),
            admission: Vec::new(),
        }
    }

    /// Whether the compiled stream contains no object updates and no
    /// venue lifecycle events — replayable against a bare (immutable)
    /// index, not just a service.
    pub fn is_read_only(&self) -> bool {
        self.churn.is_none() && self.venue_events.is_empty()
    }

    /// The highest venue slot the profile can reference (initial slots
    /// plus every slot named by a venue event).
    pub fn max_slot(&self) -> u32 {
        let mut max = self.initial_slots.saturating_sub(1);
        for e in &self.venue_events {
            let (VenueAction::Add { slot } | VenueAction::Remove { slot }) = e.action;
            max = max.max(slot);
        }
        max
    }
}

/// One event of a compiled stream. Within a tick, events are ordered:
/// venue changes first, then queries (slot-major), then update batches —
/// runners replay queries and updates of one tick concurrently.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// One typed request routed to venue slot `slot`.
    Query { slot: u32, req: QueryRequest },
    /// One labelled delta batch against slot `slot`'s object set
    /// (applied atomically, like `IndoorService::update_objects`).
    Updates {
        slot: u32,
        updates: Vec<ObjectUpdate>,
    },
    /// Venue slot `slot` joins the world.
    AddVenue { slot: u32 },
    /// Venue slot `slot` leaves the world.
    RemoveVenue { slot: u32 },
}

/// All events of one logical tick, in replay order.
#[derive(Debug, Clone, PartialEq)]
pub struct TickEvents {
    pub tick: u32,
    pub events: Vec<ScenarioEvent>,
}

impl TickEvents {
    /// Count of query events in this tick.
    pub fn queries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, ScenarioEvent::Query { .. }))
            .count()
    }

    /// Count of individual deltas across this tick's update batches.
    pub fn deltas(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e {
                ScenarioEvent::Updates { updates, .. } => updates.len(),
                _ => 0,
            })
            .sum()
    }
}

/// Order-sensitive 64-bit FNV-1a fingerprint of a compiled stream.
///
/// Absorbs every event over the same bit-pattern identity the request
/// cache keys on ([`crate::IndoorPoint::key_bits`]), so two streams
/// fingerprint equal iff they would behave identically as cache keys and
/// delta batches. Used by the `scenario_check` CI gate: identical seeds
/// must reproduce identical fingerprints on any machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamFingerprint(u64);

impl StreamFingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> StreamFingerprint {
        StreamFingerprint(Self::OFFSET)
    }

    pub fn absorb_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 = (self.0 ^ u64::from(byte)).wrapping_mul(Self::PRIME);
        }
    }

    fn absorb_bytes(&mut self, bytes: &[u8]) {
        self.absorb_u64(bytes.len() as u64);
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    fn absorb_point(&mut self, p: &crate::IndoorPoint) {
        let (partition, x, y, level) = p.key_bits();
        self.absorb_u64(u64::from(partition));
        self.absorb_u64(x);
        self.absorb_u64(y);
        self.absorb_u64(level as u64);
    }

    fn absorb_request(&mut self, req: &QueryRequest) {
        self.absorb_u64(req.kind().index() as u64);
        match req {
            QueryRequest::Knn { q, k } => {
                self.absorb_point(q);
                self.absorb_u64(*k as u64);
            }
            QueryRequest::Range { q, radius } => {
                self.absorb_point(q);
                self.absorb_u64(radius.to_bits());
            }
            QueryRequest::KnnKeyword { q, k, keyword } => {
                self.absorb_point(q);
                self.absorb_u64(*k as u64);
                self.absorb_bytes(keyword.as_bytes());
            }
            QueryRequest::ShortestDistance { s, t } | QueryRequest::ShortestPath { s, t } => {
                self.absorb_point(s);
                self.absorb_point(t);
            }
        }
    }

    fn absorb_update(&mut self, u: &ObjectUpdate) {
        match u.delta {
            ObjectDelta::Insert { id, at } => {
                self.absorb_u64(0);
                self.absorb_u64(u64::from(id.0));
                self.absorb_point(&at);
            }
            ObjectDelta::Remove { id } => {
                self.absorb_u64(1);
                self.absorb_u64(u64::from(id.0));
            }
            ObjectDelta::Move { id, to } => {
                self.absorb_u64(2);
                self.absorb_u64(u64::from(id.0));
                self.absorb_point(&to);
            }
        }
        self.absorb_u64(u.labels.len() as u64);
        for label in &u.labels {
            self.absorb_bytes(label.as_bytes());
        }
    }

    pub fn absorb_event(&mut self, tick: u32, event: &ScenarioEvent) {
        self.absorb_u64(u64::from(tick));
        match event {
            ScenarioEvent::Query { slot, req } => {
                self.absorb_u64(0x51);
                self.absorb_u64(u64::from(*slot));
                self.absorb_request(req);
            }
            ScenarioEvent::Updates { slot, updates } => {
                self.absorb_u64(0x52);
                self.absorb_u64(u64::from(*slot));
                self.absorb_u64(updates.len() as u64);
                for u in updates {
                    self.absorb_update(u);
                }
            }
            ScenarioEvent::AddVenue { slot } => {
                self.absorb_u64(0x53);
                self.absorb_u64(u64::from(*slot));
            }
            ScenarioEvent::RemoveVenue { slot } => {
                self.absorb_u64(0x54);
                self.absorb_u64(u64::from(*slot));
            }
        }
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for StreamFingerprint {
    fn default() -> StreamFingerprint {
        StreamFingerprint::new()
    }
}

/// Fingerprint a whole compiled stream (see [`StreamFingerprint`]).
pub fn fingerprint_stream(stream: &[TickEvents]) -> u64 {
    let mut fp = StreamFingerprint::new();
    for tick in stream {
        for event in &tick.events {
            fp.absorb_event(tick.tick, event);
        }
    }
    fp.finish()
}

mod error {
    use std::fmt;

    /// Why a compiled stream failed structural validation (see the
    /// `indoor-scenarios` validator, which also checks deltas against a
    /// simulated live set).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TickEventsError {
        /// An event referenced a venue slot outside the world.
        SlotOutOfRange { tick: u32, slot: u32, slots: u32 },
        /// A query or update targeted a slot not alive at that tick.
        SlotNotAlive { tick: u32, slot: u32 },
        /// A point referenced a partition the slot's venue lacks.
        BadPartition { tick: u32, slot: u32 },
        /// A delta batch failed live-set validation.
        InvalidDelta {
            tick: u32,
            slot: u32,
            detail: String,
        },
        /// Ticks were not strictly increasing.
        UnorderedTicks { tick: u32 },
    }

    impl fmt::Display for TickEventsError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TickEventsError::SlotOutOfRange { tick, slot, slots } => {
                    write!(
                        f,
                        "tick {tick}: slot {slot} out of range (world has {slots})"
                    )
                }
                TickEventsError::SlotNotAlive { tick, slot } => {
                    write!(f, "tick {tick}: slot {slot} not alive")
                }
                TickEventsError::BadPartition { tick, slot } => {
                    write!(f, "tick {tick}: point outside slot {slot}'s venue")
                }
                TickEventsError::InvalidDelta { tick, slot, detail } => {
                    write!(f, "tick {tick}: invalid delta for slot {slot}: {detail}")
                }
                TickEventsError::UnorderedTicks { tick } => {
                    write!(f, "tick {tick}: stream ticks not strictly increasing")
                }
            }
        }
    }

    impl std::error::Error for TickEventsError {}
}

pub use error::TickEventsError as ScenarioStreamError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndoorPoint, ObjectId, PartitionId};
    use geometry::Point;

    fn pt(x: f64, y: f64) -> IndoorPoint {
        IndoorPoint::new(PartitionId(1), Point { x, y, level: 0 })
    }

    #[test]
    fn arrival_curves_shape_as_documented() {
        let c = ArrivalCurve::Constant;
        assert_eq!(c.level(0, 10), 1.0);
        let d = ArrivalCurve::Diurnal {
            trough_pct: 20,
            cycles: 1,
        };
        assert!(
            (d.level(0, 24) - 0.2).abs() < 1e-12,
            "trough at cycle start"
        );
        assert!((d.level(12, 24) - 1.0).abs() < 1e-12, "peak at midpoint");
        assert!(d.level(6, 24) > d.level(2, 24), "ramp rises");
        let s = ArrivalCurve::Spike {
            start: 4,
            len: 2,
            magnify: 10,
        };
        assert_eq!(s.level(3, 10), 1.0);
        assert_eq!(s.level(4, 10), 10.0);
        assert_eq!(s.level(5, 10), 10.0);
        assert_eq!(s.level(6, 10), 1.0);
    }

    #[test]
    fn mix_rolls_cover_kinds_by_weight() {
        let mix = QueryMix::read_heavy();
        let total = mix.total();
        assert_eq!(total, 9);
        let mut counts = [0usize; QueryKind::COUNT];
        for roll in 0..total {
            counts[mix.kind_for(roll).index()] += 1;
        }
        assert_eq!(counts[QueryKind::Knn.index()], 4);
        assert_eq!(counts[QueryKind::KnnKeyword.index()], 0);
        assert_eq!(counts[QueryKind::ShortestPath.index()], 1);
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = TickEvents {
            tick: 0,
            events: vec![ScenarioEvent::Query {
                slot: 0,
                req: QueryRequest::Knn {
                    q: pt(1.0, 2.0),
                    k: 3,
                },
            }],
        };
        let b = TickEvents {
            tick: 0,
            events: vec![ScenarioEvent::Query {
                slot: 0,
                req: QueryRequest::Knn {
                    q: pt(1.0, 2.5),
                    k: 3,
                },
            }],
        };
        assert_eq!(
            fingerprint_stream(std::slice::from_ref(&a)),
            fingerprint_stream(std::slice::from_ref(&a))
        );
        assert_ne!(
            fingerprint_stream(std::slice::from_ref(&a)),
            fingerprint_stream(std::slice::from_ref(&b))
        );
        assert_ne!(
            fingerprint_stream(&[a.clone(), b.clone()]),
            fingerprint_stream(&[b, a])
        );
    }

    #[test]
    fn fingerprint_distinguishes_update_shapes() {
        let ins = TickEvents {
            tick: 1,
            events: vec![ScenarioEvent::Updates {
                slot: 0,
                updates: vec![ObjectUpdate {
                    delta: ObjectDelta::Insert {
                        id: ObjectId(7),
                        at: pt(0.0, 0.0),
                    },
                    labels: vec!["kw1".into()],
                }],
            }],
        };
        let mv = TickEvents {
            tick: 1,
            events: vec![ScenarioEvent::Updates {
                slot: 0,
                updates: vec![ObjectUpdate {
                    delta: ObjectDelta::Move {
                        id: ObjectId(7),
                        to: pt(0.0, 0.0),
                    },
                    labels: vec!["kw1".into()],
                }],
            }],
        };
        assert_ne!(fingerprint_stream(&[ins]), fingerprint_stream(&[mv]));
    }

    #[test]
    fn profile_base_is_read_only_and_slots_extend() {
        let mut p = WorkloadProfile::base("x");
        assert!(p.is_read_only());
        assert_eq!(p.max_slot(), 0);
        p.venue_events.push(VenueEvent {
            tick: 3,
            action: VenueAction::Add { slot: 2 },
        });
        assert!(!p.is_read_only());
        assert_eq!(p.max_slot(), 2);
    }
}
