//! Venue persistence as JSON.
//!
//! Only the declarative parts (partitions, doors, β) are serialised; the
//! D2D graph is deterministic from those and is rebuilt on load. This keeps
//! files small (the CL-2 D2D graph alone holds 13M arcs) and guarantees the
//! loaded venue is internally consistent.

use crate::builder::{ModelError, VenueBuilder};
use crate::venue::{Door, Partition, Venue};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Schema wrapper for serialised venues.
#[derive(Serialize, Deserialize)]
struct VenueFile {
    format: String,
    beta: usize,
    partitions: Vec<Partition>,
    doors: Vec<Door>,
}

const FORMAT: &str = "indoor-venue/1";

/// Failures while loading a serialised venue.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    Json(serde_json::Error),
    BadFormat(String),
    Model(ModelError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Json(e) => write!(f, "json error: {e}"),
            LoadError::BadFormat(s) => write!(f, "unsupported venue format {s:?}"),
            LoadError::Model(e) => write!(f, "invalid venue: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl Venue {
    /// Serialise to JSON.
    pub fn save_json<W: Write>(&self, mut w: W) -> Result<(), LoadError> {
        let file = VenueFile {
            format: FORMAT.to_string(),
            beta: self.beta,
            partitions: self.partitions.clone(),
            doors: self.doors.clone(),
        };
        serde_json::to_writer(&mut w, &file).map_err(LoadError::Json)
    }

    /// Load from JSON produced by [`Venue::save_json`], re-running full
    /// validation and graph construction.
    pub fn load_json<R: Read>(r: R) -> Result<Venue, LoadError> {
        let file: VenueFile = serde_json::from_reader(r).map_err(LoadError::Json)?;
        if file.format != FORMAT {
            return Err(LoadError::BadFormat(file.format));
        }
        let mut b = VenueBuilder::new().with_beta(file.beta);
        for p in &file.partitions {
            let id = b.add_partition(p.kind, p.extent);
            debug_assert_eq!(id, p.id, "partition ids must be dense and ordered");
            if let Some(w) = p.fixed_traversal_weight {
                b.set_fixed_traversal_weight(id, w);
            }
        }
        for d in &file.doors {
            match d.partitions {
                [Some(a), second] => {
                    let id = b.add_door(d.position, a, second);
                    debug_assert_eq!(id, d.id, "door ids must be dense and ordered");
                }
                _ => {
                    return Err(LoadError::BadFormat(
                        "door without a first partition".to_string(),
                    ))
                }
            }
        }
        b.build().map_err(LoadError::Model)
    }
}

#[cfg(test)]
mod tests {
    use crate::{PartitionKind, Venue, VenueBuilder};
    use geometry::{Point, Rect};

    #[test]
    fn roundtrip_preserves_structure() {
        let mut b = VenueBuilder::new().with_beta(3);
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
        for i in 0..4 {
            let x = i as f64 * 6.0;
            let r = b.add_partition(PartitionKind::Room, Rect::new(x, 0.0, x + 5.0, 5.0, 0));
            b.add_door(Point::new(x + 2.5, 5.0, 0), r, Some(hall));
        }
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(30.0, 5.0, 32.0, 8.0, 0));
        b.set_fixed_traversal_weight(lift, 1.5);
        b.add_door(Point::new(30.0, 6.5, 0), hall, Some(lift));
        b.add_exterior_door(Point::new(31.0, 8.0, 1), lift);
        let v = b.build().unwrap();

        let mut buf = Vec::new();
        v.save_json(&mut buf).unwrap();
        let v2 = Venue::load_json(buf.as_slice()).unwrap();

        assert_eq!(v.num_doors(), v2.num_doors());
        assert_eq!(v.num_partitions(), v2.num_partitions());
        assert_eq!(v.stats(), v2.stats());
        assert_eq!(v.beta(), v2.beta());
        // Edge weights survive (including the fixed lift weight).
        for u in 0..v.num_doors() as u32 {
            let a: Vec<_> = v.d2d().neighbors(u).collect();
            let b2: Vec<_> = v2.d2d().neighbors(u).collect();
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn rejects_unknown_format() {
        let json = r#"{"format":"bogus/9","beta":4,"partitions":[],"doors":[]}"#;
        assert!(Venue::load_json(json.as_bytes()).is_err());
    }
}
