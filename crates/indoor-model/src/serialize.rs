//! Venue persistence as JSON.
//!
//! Only the declarative parts (partitions, doors, β) are serialised; the
//! D2D graph is deterministic from those and is rebuilt on load. This keeps
//! files small (the CL-2 D2D graph alone holds 13M arcs) and guarantees the
//! loaded venue is internally consistent.
//!
//! The document is read and written with the in-crate [`crate::json`]
//! module (no external serialisation dependency); `f64` fields use
//! shortest round-trip formatting, so save/load preserves every weight
//! bit-for-bit. The format tag is `indoor-venue/2`: version 1 (serde)
//! encoded extents/positions as field objects, version 2 as positional
//! arrays, so v1 files are rejected by the format check rather than by
//! an opaque parse error.

use crate::builder::{ModelError, VenueBuilder};
use crate::json::{self, Json};
use crate::venue::{PartitionKind, Venue};
use crate::{DoorId, PartitionId};
use geometry::{Point, Rect};
use std::fmt::Write as _;
use std::io::{Read, Write};

const FORMAT: &str = "indoor-venue/2";

/// Failures while loading a serialised venue.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    Json(String),
    BadFormat(String),
    Model(ModelError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Json(e) => write!(f, "json error: {e}"),
            LoadError::BadFormat(s) => write!(f, "unsupported venue format {s:?}"),
            LoadError::Model(e) => write!(f, "invalid venue: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn kind_name(kind: PartitionKind) -> &'static str {
    match kind {
        PartitionKind::Room => "Room",
        PartitionKind::Hallway => "Hallway",
        PartitionKind::Staircase => "Staircase",
        PartitionKind::Lift => "Lift",
        PartitionKind::Escalator => "Escalator",
        PartitionKind::Outdoor => "Outdoor",
    }
}

fn kind_from_name(name: &str) -> Option<PartitionKind> {
    Some(match name {
        "Room" => PartitionKind::Room,
        "Hallway" => PartitionKind::Hallway,
        "Staircase" => PartitionKind::Staircase,
        "Lift" => PartitionKind::Lift,
        "Escalator" => PartitionKind::Escalator,
        "Outdoor" => PartitionKind::Outdoor,
        _ => return None,
    })
}

fn bad(msg: impl Into<String>) -> LoadError {
    LoadError::Json(msg.into())
}

impl Venue {
    /// Serialise to JSON.
    pub fn save_json<W: Write>(&self, mut w: W) -> Result<(), LoadError> {
        let mut out = String::new();
        out.push_str("{\"format\":");
        json::write_str(&mut out, FORMAT);
        let _ = write!(out, ",\"beta\":{}", self.beta);

        out.push_str(",\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"kind\":", p.id.0);
            json::write_str(&mut out, kind_name(p.kind));
            out.push_str(",\"extent\":[");
            for (j, v) in [
                p.extent.min_x,
                p.extent.min_y,
                p.extent.max_x,
                p.extent.max_y,
            ]
            .into_iter()
            .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                json::write_f64(&mut out, v);
            }
            let _ = write!(out, ",{}]", p.extent.level);
            match p.fixed_traversal_weight {
                Some(wt) => {
                    out.push_str(",\"fixed_traversal_weight\":");
                    json::write_f64(&mut out, wt);
                }
                None => out.push_str(",\"fixed_traversal_weight\":null"),
            }
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"doors\":[");
        for (i, d) in self.doors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"position\":[", d.id.0);
            json::write_f64(&mut out, d.position.x);
            out.push(',');
            json::write_f64(&mut out, d.position.y);
            let _ = write!(out, ",{}]", d.position.level);
            out.push_str(",\"partitions\":[");
            match d.partitions {
                [Some(a), Some(b)] => {
                    let _ = write!(out, "{},{}", a.0, b.0);
                }
                [Some(a), None] => {
                    let _ = write!(out, "{},null", a.0);
                }
                _ => return Err(bad("door without a first partition")),
            }
            out.push_str("]}");
        }
        out.push_str("]}");

        w.write_all(out.as_bytes()).map_err(LoadError::Io)
    }

    /// Load from JSON produced by [`Venue::save_json`], re-running full
    /// validation and graph construction.
    pub fn load_json<R: Read>(mut r: R) -> Result<Venue, LoadError> {
        let mut text = String::new();
        r.read_to_string(&mut text).map_err(LoadError::Io)?;
        let doc = json::parse(&text).map_err(LoadError::Json)?;

        let format = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing format"))?;
        if format != FORMAT {
            return Err(LoadError::BadFormat(format.to_string()));
        }
        let beta = doc
            .get("beta")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad("missing beta"))?;

        let mut b = VenueBuilder::new().with_beta(beta);
        for p in doc
            .get("partitions")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing partitions"))?
        {
            let kind = p
                .get("kind")
                .and_then(Json::as_str)
                .and_then(kind_from_name)
                .ok_or_else(|| bad("bad partition kind"))?;
            let e = p
                .get("extent")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 5)
                .ok_or_else(|| bad("bad partition extent"))?;
            let coords: Vec<f64> = e[..4]
                .iter()
                .map(|v| v.as_f64().ok_or_else(|| bad("bad extent coordinate")))
                .collect::<Result<_, _>>()?;
            let level = e[4].as_i32().ok_or_else(|| bad("bad extent level"))?;
            let extent = Rect::new(coords[0], coords[1], coords[2], coords[3], level);
            let id = b.add_partition(kind, extent);
            let declared = p
                .get("id")
                .and_then(Json::as_u32)
                .ok_or_else(|| bad("missing partition id"))?;
            debug_assert_eq!(id, PartitionId(declared), "partition ids dense and ordered");
            match p.get("fixed_traversal_weight") {
                Some(Json::Null) | None => {}
                Some(v) => {
                    let wt = v.as_f64().ok_or_else(|| bad("bad traversal weight"))?;
                    b.set_fixed_traversal_weight(id, wt);
                }
            }
        }

        for d in doc
            .get("doors")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing doors"))?
        {
            let pos = d
                .get("position")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 3)
                .ok_or_else(|| bad("bad door position"))?;
            let position = Point::new(
                pos[0].as_f64().ok_or_else(|| bad("bad door x"))?,
                pos[1].as_f64().ok_or_else(|| bad("bad door y"))?,
                pos[2].as_i32().ok_or_else(|| bad("bad door level"))?,
            );
            let parts = d
                .get("partitions")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 2)
                .ok_or_else(|| bad("bad door partitions"))?;
            let first = parts[0]
                .as_u32()
                .map(PartitionId)
                .ok_or(LoadError::BadFormat(
                    "door without a first partition".to_string(),
                ))?;
            let second = match &parts[1] {
                Json::Null => None,
                v => Some(PartitionId(
                    v.as_u32().ok_or_else(|| bad("bad door partition"))?,
                )),
            };
            let id = b.add_door(position, first, second);
            let declared = d
                .get("id")
                .and_then(Json::as_u32)
                .ok_or_else(|| bad("missing door id"))?;
            debug_assert_eq!(id, DoorId(declared), "door ids dense and ordered");
        }

        b.build().map_err(LoadError::Model)
    }
}

#[cfg(test)]
mod tests {
    use crate::{PartitionKind, Venue, VenueBuilder};
    use geometry::{Point, Rect};

    #[test]
    fn roundtrip_preserves_structure() {
        let mut b = VenueBuilder::new().with_beta(3);
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
        for i in 0..4 {
            let x = i as f64 * 6.0;
            let r = b.add_partition(PartitionKind::Room, Rect::new(x, 0.0, x + 5.0, 5.0, 0));
            b.add_door(Point::new(x + 2.5, 5.0, 0), r, Some(hall));
        }
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(30.0, 5.0, 32.0, 8.0, 0));
        b.set_fixed_traversal_weight(lift, 1.5);
        b.add_door(Point::new(30.0, 6.5, 0), hall, Some(lift));
        b.add_exterior_door(Point::new(31.0, 8.0, 1), lift);
        let v = b.build().unwrap();

        let mut buf = Vec::new();
        v.save_json(&mut buf).unwrap();
        let v2 = Venue::load_json(buf.as_slice()).unwrap();

        assert_eq!(v.num_doors(), v2.num_doors());
        assert_eq!(v.num_partitions(), v2.num_partitions());
        assert_eq!(v.stats(), v2.stats());
        assert_eq!(v.beta(), v2.beta());
        // Edge weights survive (including the fixed lift weight).
        for u in 0..v.num_doors() as u32 {
            let a: Vec<_> = v.d2d().neighbors(u).collect();
            let b2: Vec<_> = v2.d2d().neighbors(u).collect();
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn rejects_unknown_format() {
        let json = r#"{"format":"bogus/9","beta":4,"partitions":[],"doors":[]}"#;
        assert!(Venue::load_json(json.as_bytes()).is_err());
        // v1 files (serde object encoding) are rejected by the format tag,
        // not by an opaque parse error.
        let v1 = r#"{"format":"indoor-venue/1","beta":4,"partitions":[],"doors":[]}"#;
        assert!(matches!(
            Venue::load_json(v1.as_bytes()),
            Err(super::LoadError::BadFormat(_))
        ));
    }

    #[test]
    fn non_finite_weight_round_trips_as_unset() {
        let mut b = VenueBuilder::new();
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(0.0, 0.0, 2.0, 2.0, 0));
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(2.0, 0.0, 10.0, 2.0, 0));
        b.set_fixed_traversal_weight(lift, f64::INFINITY);
        b.add_door(Point::new(2.0, 1.0, 0), lift, Some(hall));
        b.add_exterior_door(Point::new(10.0, 1.0, 0), hall);
        let v = b.build().unwrap();

        let mut buf = Vec::new();
        v.save_json(&mut buf).unwrap();
        // The document stays valid JSON and reloads; the unrepresentable
        // weight degrades to "unset" (metric distance) like serde_json's
        // null, rather than corrupting the file.
        let v2 = Venue::load_json(buf.as_slice()).unwrap();
        assert_eq!(v2.partition(lift).fixed_traversal_weight, None);
    }
}
