//! Venue persistence as JSON.
//!
//! Only the declarative parts (partitions, doors, β) are serialised; the
//! D2D graph is deterministic from those and is rebuilt on load. This keeps
//! files small (the CL-2 D2D graph alone holds 13M arcs) and guarantees the
//! loaded venue is internally consistent.
//!
//! The document is read and written with the in-crate [`crate::json`]
//! module (no external serialisation dependency); `f64` fields use
//! shortest round-trip formatting, so save/load preserves every weight
//! bit-for-bit. The format tag is `indoor-venue/2`: version 1 (serde)
//! encoded extents/positions as field objects, version 2 as positional
//! arrays, so v1 files are rejected by the format check rather than by
//! an opaque parse error.

use crate::builder::{ModelError, VenueBuilder};
use crate::json::{self, Json};
use crate::venue::{PartitionKind, Venue};
use crate::{DoorId, PartitionId};
use geometry::{Point, Rect};
use std::fmt::Write as _;
use std::io::{Read, Write};

const FORMAT: &str = "indoor-venue/2";

/// Failures while loading serialised indoor data (JSON venues and the
/// binary snapshot/WAL wire encoding alike).
///
/// Every variant carries position or context — the byte offset a syntax
/// or wire error was detected at, or the document path plus
/// expected/found shapes for validation failures — so a corrupt file
/// names its own broken location instead of returning a bare tag. The
/// persistence subsystem (`vip_tree::persist`) reuses this type as the
/// `source` of its own errors.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    /// JSON syntax error at a byte offset.
    Json {
        offset: usize,
        message: String,
    },
    /// A well-formed document whose content failed validation: where in
    /// the document, what shape was expected, and what was found.
    Document {
        context: String,
        expected: &'static str,
        found: String,
    },
    /// Unsupported format tag (a file from a different format version).
    BadFormat {
        expected: &'static str,
        found: String,
    },
    /// Binary wire decode error at a byte offset (see
    /// [`crate::wire::WireReader`]).
    Wire {
        offset: u64,
        expected: &'static str,
        found: String,
    },
    Model(ModelError),
}

impl From<crate::json::ParseError> for LoadError {
    fn from(e: crate::json::ParseError) -> LoadError {
        LoadError::Json {
            offset: e.offset,
            message: e.message,
        }
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Json { offset, message } => {
                write!(f, "json error at byte {offset}: {message}")
            }
            LoadError::Document {
                context,
                expected,
                found,
            } => write!(
                f,
                "invalid document at {context}: expected {expected}, found {found}"
            ),
            LoadError::BadFormat { expected, found } => {
                write!(f, "unsupported format {found:?} (expected {expected:?})")
            }
            LoadError::Wire {
                offset,
                expected,
                found,
            } => write!(
                f,
                "wire error at byte {offset}: expected {expected}, found {found}"
            ),
            LoadError::Model(e) => write!(f, "invalid venue: {e}"),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Model(e) => Some(e),
            _ => None,
        }
    }
}

fn kind_name(kind: PartitionKind) -> &'static str {
    match kind {
        PartitionKind::Room => "Room",
        PartitionKind::Hallway => "Hallway",
        PartitionKind::Staircase => "Staircase",
        PartitionKind::Lift => "Lift",
        PartitionKind::Escalator => "Escalator",
        PartitionKind::Outdoor => "Outdoor",
    }
}

fn kind_from_name(name: &str) -> Option<PartitionKind> {
    Some(match name {
        "Room" => PartitionKind::Room,
        "Hallway" => PartitionKind::Hallway,
        "Staircase" => PartitionKind::Staircase,
        "Lift" => PartitionKind::Lift,
        "Escalator" => PartitionKind::Escalator,
        "Outdoor" => PartitionKind::Outdoor,
        _ => return None,
    })
}

/// Validation failure at a named place in the document; `found` describes
/// the shape actually present (or that the field is missing).
fn doc(context: impl Into<String>, expected: &'static str, v: Option<&Json>) -> LoadError {
    LoadError::Document {
        context: context.into(),
        expected,
        found: match v {
            None => "nothing (field missing)".to_string(),
            Some(v) => v.type_name().to_string(),
        },
    }
}

impl Venue {
    /// Serialise to JSON.
    pub fn save_json<W: Write>(&self, mut w: W) -> Result<(), LoadError> {
        let mut out = String::new();
        out.push_str("{\"format\":");
        json::write_str(&mut out, FORMAT);
        let _ = write!(out, ",\"beta\":{}", self.beta);

        out.push_str(",\"partitions\":[");
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"kind\":", p.id.0);
            json::write_str(&mut out, kind_name(p.kind));
            out.push_str(",\"extent\":[");
            for (j, v) in [
                p.extent.min_x,
                p.extent.min_y,
                p.extent.max_x,
                p.extent.max_y,
            ]
            .into_iter()
            .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                json::write_f64(&mut out, v);
            }
            let _ = write!(out, ",{}]", p.extent.level);
            match p.fixed_traversal_weight {
                Some(wt) => {
                    out.push_str(",\"fixed_traversal_weight\":");
                    json::write_f64(&mut out, wt);
                }
                None => out.push_str(",\"fixed_traversal_weight\":null"),
            }
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"doors\":[");
        for (i, d) in self.doors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"id\":{},\"position\":[", d.id.0);
            json::write_f64(&mut out, d.position.x);
            out.push(',');
            json::write_f64(&mut out, d.position.y);
            let _ = write!(out, ",{}]", d.position.level);
            out.push_str(",\"partitions\":[");
            match d.partitions {
                [Some(a), Some(b)] => {
                    let _ = write!(out, "{},{}", a.0, b.0);
                }
                [Some(a), None] => {
                    let _ = write!(out, "{},null", a.0);
                }
                _ => {
                    return Err(LoadError::Document {
                        context: format!("doors[{i}].partitions"),
                        expected: "a first partition",
                        found: "none".to_string(),
                    })
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");

        w.write_all(out.as_bytes()).map_err(LoadError::Io)
    }

    /// Load from JSON produced by [`Venue::save_json`], re-running full
    /// validation and graph construction.
    pub fn load_json<R: Read>(mut r: R) -> Result<Venue, LoadError> {
        let mut text = String::new();
        r.read_to_string(&mut text).map_err(LoadError::Io)?;
        let doc_root = json::parse(&text)?;

        let format = doc_root
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| doc("format", "a format string", doc_root.get("format")))?;
        if format != FORMAT {
            return Err(LoadError::BadFormat {
                expected: FORMAT,
                found: format.to_string(),
            });
        }
        let beta = doc_root
            .get("beta")
            .and_then(Json::as_usize)
            .ok_or_else(|| doc("beta", "a non-negative integer", doc_root.get("beta")))?;

        let mut b = VenueBuilder::new().with_beta(beta);
        for (i, p) in doc_root
            .get("partitions")
            .and_then(Json::as_arr)
            .ok_or_else(|| doc("partitions", "an array", doc_root.get("partitions")))?
            .iter()
            .enumerate()
        {
            let kind = p
                .get("kind")
                .and_then(Json::as_str)
                .and_then(kind_from_name)
                .ok_or_else(|| {
                    doc(
                        format!("partitions[{i}].kind"),
                        "a known partition kind name",
                        p.get("kind"),
                    )
                })?;
            let e = p
                .get("extent")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 5)
                .ok_or_else(|| {
                    doc(
                        format!("partitions[{i}].extent"),
                        "an array of 5 numbers",
                        p.get("extent"),
                    )
                })?;
            let coords: Vec<f64> = e[..4]
                .iter()
                .enumerate()
                .map(|(j, v)| {
                    v.as_f64().ok_or_else(|| {
                        doc(
                            format!("partitions[{i}].extent[{j}]"),
                            "a coordinate",
                            Some(v),
                        )
                    })
                })
                .collect::<Result<_, _>>()?;
            let level = e[4].as_i32().ok_or_else(|| {
                doc(
                    format!("partitions[{i}].extent[4]"),
                    "an integer level",
                    Some(&e[4]),
                )
            })?;
            let extent = Rect::new(coords[0], coords[1], coords[2], coords[3], level);
            let id = b.add_partition(kind, extent);
            let declared = p
                .get("id")
                .and_then(Json::as_u32)
                .ok_or_else(|| doc(format!("partitions[{i}].id"), "an integer id", p.get("id")))?;
            debug_assert_eq!(id, PartitionId(declared), "partition ids dense and ordered");
            match p.get("fixed_traversal_weight") {
                Some(Json::Null) | None => {}
                Some(v) => {
                    let wt = v.as_f64().ok_or_else(|| {
                        doc(
                            format!("partitions[{i}].fixed_traversal_weight"),
                            "a number or null",
                            Some(v),
                        )
                    })?;
                    b.set_fixed_traversal_weight(id, wt);
                }
            }
        }

        for (i, d) in doc_root
            .get("doors")
            .and_then(Json::as_arr)
            .ok_or_else(|| doc("doors", "an array", doc_root.get("doors")))?
            .iter()
            .enumerate()
        {
            let pos = d
                .get("position")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 3)
                .ok_or_else(|| {
                    doc(
                        format!("doors[{i}].position"),
                        "an array [x, y, level]",
                        d.get("position"),
                    )
                })?;
            let position = Point::new(
                pos[0].as_f64().ok_or_else(|| {
                    doc(format!("doors[{i}].position[0]"), "a number", Some(&pos[0]))
                })?,
                pos[1].as_f64().ok_or_else(|| {
                    doc(format!("doors[{i}].position[1]"), "a number", Some(&pos[1]))
                })?,
                pos[2].as_i32().ok_or_else(|| {
                    doc(
                        format!("doors[{i}].position[2]"),
                        "an integer level",
                        Some(&pos[2]),
                    )
                })?,
            );
            let parts = d
                .get("partitions")
                .and_then(Json::as_arr)
                .filter(|a| a.len() == 2)
                .ok_or_else(|| {
                    doc(
                        format!("doors[{i}].partitions"),
                        "an array of 2 entries",
                        d.get("partitions"),
                    )
                })?;
            let first = parts[0].as_u32().map(PartitionId).ok_or_else(|| {
                doc(
                    format!("doors[{i}].partitions[0]"),
                    "a partition id (first partition is mandatory)",
                    Some(&parts[0]),
                )
            })?;
            let second = match &parts[1] {
                Json::Null => None,
                v => Some(PartitionId(v.as_u32().ok_or_else(|| {
                    doc(
                        format!("doors[{i}].partitions[1]"),
                        "a partition id or null",
                        Some(v),
                    )
                })?)),
            };
            let id = b.add_door(position, first, second);
            let declared = d
                .get("id")
                .and_then(Json::as_u32)
                .ok_or_else(|| doc(format!("doors[{i}].id"), "an integer id", d.get("id")))?;
            debug_assert_eq!(id, DoorId(declared), "door ids dense and ordered");
        }

        b.build().map_err(LoadError::Model)
    }
}

#[cfg(test)]
mod tests {
    use crate::{PartitionKind, Venue, VenueBuilder};
    use geometry::{Point, Rect};

    #[test]
    fn roundtrip_preserves_structure() {
        let mut b = VenueBuilder::new().with_beta(3);
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(0.0, 5.0, 30.0, 8.0, 0));
        for i in 0..4 {
            let x = i as f64 * 6.0;
            let r = b.add_partition(PartitionKind::Room, Rect::new(x, 0.0, x + 5.0, 5.0, 0));
            b.add_door(Point::new(x + 2.5, 5.0, 0), r, Some(hall));
        }
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(30.0, 5.0, 32.0, 8.0, 0));
        b.set_fixed_traversal_weight(lift, 1.5);
        b.add_door(Point::new(30.0, 6.5, 0), hall, Some(lift));
        b.add_exterior_door(Point::new(31.0, 8.0, 1), lift);
        let v = b.build().unwrap();

        let mut buf = Vec::new();
        v.save_json(&mut buf).unwrap();
        let v2 = Venue::load_json(buf.as_slice()).unwrap();

        assert_eq!(v.num_doors(), v2.num_doors());
        assert_eq!(v.num_partitions(), v2.num_partitions());
        assert_eq!(v.stats(), v2.stats());
        assert_eq!(v.beta(), v2.beta());
        // Edge weights survive (including the fixed lift weight).
        for u in 0..v.num_doors() as u32 {
            let a: Vec<_> = v.d2d().neighbors(u).collect();
            let b2: Vec<_> = v2.d2d().neighbors(u).collect();
            assert_eq!(a, b2);
        }
    }

    #[test]
    fn rejects_unknown_format() {
        let json = r#"{"format":"bogus/9","beta":4,"partitions":[],"doors":[]}"#;
        assert!(Venue::load_json(json.as_bytes()).is_err());
        // v1 files (serde object encoding) are rejected by the format tag,
        // not by an opaque parse error.
        let v1 = r#"{"format":"indoor-venue/1","beta":4,"partitions":[],"doors":[]}"#;
        match Venue::load_json(v1.as_bytes()) {
            Err(super::LoadError::BadFormat { expected, found }) => {
                assert_eq!(expected, super::FORMAT);
                assert_eq!(found, "indoor-venue/1");
            }
            other => panic!("expected BadFormat, got {other:?}"),
        }
    }

    #[test]
    fn load_errors_carry_position_and_context() {
        // Syntax error: byte offset of the broken token.
        let syntax = r#"{"format":"indoor-venue/2","beta":}"#;
        match Venue::load_json(syntax.as_bytes()) {
            Err(super::LoadError::Json { offset, .. }) => assert_eq!(offset, 34),
            other => panic!("expected Json error, got {other:?}"),
        }
        // Validation error: document path + expected/found shapes.
        let bad_kind = r#"{"format":"indoor-venue/2","beta":4,
            "partitions":[{"id":0,"kind":7,"extent":[0,0,1,1,0]}],"doors":[]}"#;
        match Venue::load_json(bad_kind.as_bytes()) {
            Err(super::LoadError::Document {
                context,
                expected,
                found,
            }) => {
                assert_eq!(context, "partitions[0].kind");
                assert_eq!(expected, "a known partition kind name");
                assert_eq!(found, "a number");
            }
            other => panic!("expected Document error, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_weight_round_trips_as_unset() {
        let mut b = VenueBuilder::new();
        let lift = b.add_partition(PartitionKind::Lift, Rect::new(0.0, 0.0, 2.0, 2.0, 0));
        let hall = b.add_partition(PartitionKind::Hallway, Rect::new(2.0, 0.0, 10.0, 2.0, 0));
        b.set_fixed_traversal_weight(lift, f64::INFINITY);
        b.add_door(Point::new(2.0, 1.0, 0), lift, Some(hall));
        b.add_exterior_door(Point::new(10.0, 1.0, 0), hall);
        let v = b.build().unwrap();

        let mut buf = Vec::new();
        v.save_json(&mut buf).unwrap();
        // The document stays valid JSON and reloads; the unrepresentable
        // weight degrades to "unset" (metric distance) like serde_json's
        // null, rather than corrupting the file.
        let v2 = Venue::load_json(buf.as_slice()).unwrap();
        assert_eq!(v2.partition(lift).fixed_traversal_weight, None);
    }
}
